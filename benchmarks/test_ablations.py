"""Benches: ablations for the design decisions documented in DESIGN.md."""

from repro.experiments import ablations


def test_ablation_join_mode(bench):
    result = bench(ablations.run_join_mode, n_nodes=600, rounds=40, seed=42)
    rows = {row["join_mode"]: row for row in result.rows}
    # The mass-conserving symmetric join converges to (near-)exact
    # fractions and the exact system size; the literal Fig. 1 rule floors
    # at percent-level bias and breaks the size estimate.
    assert rows["symmetric"]["points_err_max"] < 1e-6
    assert rows["literal"]["points_err_max"] > 1e-3
    true_size = rows["symmetric"]["true_size"]
    assert abs(rows["symmetric"]["size_estimate_median"] - true_size) < 0.01 * true_size
    assert abs(rows["literal"]["size_estimate_median"] - true_size) > 0.2 * true_size


def test_ablation_lcut_variant(bench):
    result = bench(ablations.run_lcut_variant, n_nodes=800, instances=6, seed=42)
    incremental = [r["err_max"] for r in result.filter(variant="lcut").rows]
    global_div = [r["err_max"] for r in result.filter(variant="lcut_global").rows]
    # The incremental variant converges: its final maximum error is far
    # below its starting point and is (weakly) monotone after instance 1.
    assert incremental[-1] < 0.4 * incremental[0]
    assert all(b <= a * 1.1 for a, b in zip(incremental[1:], incremental[2:]))
    # The literal global re-division oscillates on step CDFs: its maximum
    # error stays high (brackets around steps regress between instances).
    assert global_div[-1] > incremental[-1]


def test_ablation_exchange_kernel(bench):
    result = bench(ablations.run_exchange_kernel, n_nodes=800, rounds=60, seed=42)
    sequential = [r["points_err_max"] for r in result.filter(kernel="sequential").rows]
    matching = [r["points_err_max"] for r in result.filter(kernel="matching").rows]
    # Both kernels converge exponentially ...
    assert sequential[-1] < 1e-6
    assert matching[-1] < 1e-3
    # ... with sequential push–pull converging at least as fast per round.
    assert sequential[-1] <= matching[-1]
