"""Bench: Figure 9 — random-sampling error vs sample count."""

from repro.experiments import fig09_sampling


def test_fig09_sampling(bench):
    result = bench(
        fig09_sampling.run,
        population=20_000,
        sample_counts=(10, 100, 1_000, 10_000),
        repeats=3,
        seed=42,
    )

    for attr in ("cpu", "ram"):
        rows = result.filter(attribute=attr).rows
        errs = [r["err_max"] for r in rows]
        # Error shrinks steadily with the sample count (DKW: ~1/sqrt(s)).
        assert errs[-1] < errs[1] < errs[0]
        # 10^3–10^4 samples reach the few-percent accuracy band that
        # Adam2 reaches with ~150 messages (paper Fig. 9 / §VII-I).
        assert rows[-1]["err_max"] < 0.02
        assert rows[-1]["messages"] >= 10_000
