"""Bench: Figure 14 — accuracy of the dynamic confidence estimation."""

from repro.experiments import fig14_confidence


def test_fig14_confidence(bench):
    result = bench(
        fig14_confidence.run,
        n_nodes=700,
        verification_counts=(10, 40, 80),
        instances=3,
        seed=42,
        attributes=("ram",),
    )

    def err(metric, v):
        return result.filter(attribute="ram", metric=metric, verification_points=v).rows[0][
            "estimation_error"
        ]

    # The average error can be self-estimated usefully with a few dozen
    # verification points (paper: ~10 % relative error at 20 points; we
    # assert the same regime).
    assert err("average", 40) < 0.6
    assert err("average", 80) <= err("average", 10) * 1.5
    # The maximum error is intrinsically harder to estimate (single-point
    # property) — allow it to be rough, but it must be computable and
    # improve or hold with more points.
    assert err("maximum", 80) < 1.5
