"""Bench: Figure 7 — HCut vs MinMax vs LCut over consecutive instances."""

from repro.experiments import fig07_multi_instance


def test_fig07_multi_instance(bench):
    result = bench(fig07_multi_instance.run, n_nodes=800, instances=5, seed=42)

    def series(attr, heuristic, key):
        return [r[key] for r in result.filter(attribute=attr, heuristic=heuristic).rows]

    # MinMax hunts the steps: its Err_m on RAM improves by several x
    # across instances and ends best-in-class (paper §VII-C).
    ram_minmax = series("ram", "minmax", "err_max")
    assert ram_minmax[-1] < 0.4 * ram_minmax[0]
    assert ram_minmax[-1] <= min(series("ram", "hcut", "err_max")[-1], series("ram", "lcut", "err_max")[-1]) * 1.5

    # LCut wins the average error (paper: order-of-magnitude class lead;
    # we assert a clear win).
    assert series("ram", "lcut", "err_avg")[-1] < series("ram", "hcut", "err_avg")[-1]
    assert series("cpu", "lcut", "err_avg")[-1] < series("cpu", "minmax", "err_avg")[-1]

    # All heuristics do well on the smooth CPU attribute.
    for heuristic in ("hcut", "minmax", "lcut"):
        assert series("cpu", heuristic, "err_max")[-1] < 0.05
