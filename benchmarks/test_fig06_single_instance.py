"""Bench: Figure 6 — per-round convergence in one instance (Adam2 vs EquiDepth)."""

from repro.experiments import fig06_single_instance


def test_fig06_single_instance(bench):
    result = bench(
        fig06_single_instance.run, n_nodes=800, rounds=60, seed=42, track_every=5
    )
    adam2 = result.filter(system="adam2").rows
    equidepth = result.filter(system="equidepth").rows

    # Adam2's error at the interpolation points decays exponentially to
    # numerical noise (paper: below hardware rounding after ~70 rounds).
    assert adam2[-1]["max_points"] < 1e-6
    mid = adam2[len(adam2) // 2]
    assert adam2[-1]["max_points"] < mid["max_points"] * 1e-2 or mid["max_points"] < 1e-9
    # ... while the entire-CDF error floors at the interpolation error
    # (a few percent for a first instance).
    assert 1e-4 < adam2[-1]["max_entire"] < 0.5

    # EquiDepth's entire-CDF error plateaus: more rounds do not help
    # (the synopsis resolution, not the gossip, is the bottleneck).
    mid_eq = equidepth[len(equidepth) // 2]
    assert equidepth[-1]["max_entire"] > 0.25 * mid_eq["max_entire"]
    assert equidepth[-1]["max_entire"] > 0.01
    # The sample-duplication variant shows the paper's Fig. 6b claim
    # literally: the error at the selected bins does not improve either.
    rank = result.filter(system="equidepth_rank").rows
    mid_rank = rank[len(rank) // 2]
    assert rank[-1]["max_points"] > 0.25 * mid_rank["max_points"]
    assert rank[-1]["max_points"] > 0.01
