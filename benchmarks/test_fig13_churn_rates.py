"""Bench: Figure 13 — impact of the churn rate on accuracy."""

from repro.experiments import fig13_churn_rates


def test_fig13_churn_rates(bench):
    result = bench(
        fig13_churn_rates.run,
        n_nodes=500,
        instances=5,
        churn_rates=(0.0, 0.001, 0.01, 0.1),
        seed=42,
        attributes=("ram",),
    )

    def err(system, rate, key):
        return result.filter(attribute="ram", system=system, churn_rate=rate).rows[0][key]

    # High resilience: at the paper's reference churn (0.1 %/round) the
    # accuracy stays within a small factor of the churn-free run.
    assert err("minmax", 0.001, "err_max") < 3 * max(err("minmax", 0.0, "err_max"), 0.05)
    assert err("lcut", 0.001, "err_avg") < 3 * max(err("lcut", 0.0, "err_avg"), 0.01)
    # Accuracy clearly degrades only at extreme churn (paper: ~1 %/round
    # is where degradation starts; 10 %/round must be visibly worse).
    assert err("lcut", 0.1, "err_avg") > err("lcut", 0.001, "err_avg")
