"""Bench: Figure 8 — EquiDepth phases vs Adam2 instances."""

from repro.experiments import fig08_equidepth


def test_fig08_equidepth(bench):
    result = bench(fig08_equidepth.run, n_nodes=700, phases=4, seed=42)

    def series(attr, system, key):
        return [r[key] for r in result.filter(attribute=attr, system=system).rows]

    # EquiDepth does not refine across phases: its error is essentially
    # constant (paper: "generates the same error in every phase").
    for attr in ("cpu", "ram"):
        eq = series(attr, "equidepth", "err_max")
        assert max(eq) < 2.5 * min(eq)

    # After a few instances Adam2 is clearly ahead on both metrics.
    assert series("ram", "minmax", "err_max")[-1] < series("ram", "equidepth", "err_max")[-1]
    assert series("ram", "lcut", "err_avg")[-1] < series("ram", "equidepth", "err_avg")[-1]
    assert series("cpu", "lcut", "err_avg")[-1] < series("cpu", "equidepth", "err_avg")[-1]
