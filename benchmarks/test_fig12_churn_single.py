"""Bench: Figure 12 — single-instance accuracy under 0.1 %/round churn."""

from repro.experiments import fig12_churn_single


def test_fig12_churn_single(bench):
    result = bench(
        fig12_churn_single.run,
        n_nodes=800,
        rounds=60,
        churn_rate=0.001,
        seed=42,
        track_every=5,
    )
    adam2 = result.filter(system="adam2").rows
    equidepth = result.filter(system="equidepth").rows

    # Under churn the point error no longer reaches numerical zero (mass
    # leaves with departed nodes) but still falls to the ~1e-2..1e-5
    # region — far below the interpolation error, hence "clearly
    # sufficient to approximate the CDF" (paper §VII-G).
    assert adam2[-1]["max_points"] < 0.05
    assert adam2[-1]["max_points"] < adam2[1]["max_points"]
    assert adam2[-1]["avg_points"] < 0.01

    # EquiDepth is not significantly affected by churn but stays at its
    # usual plateau.
    assert equidepth[-1]["max_points"] > 0.01
