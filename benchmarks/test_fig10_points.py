"""Bench: Figure 10 — influence of the number of interpolation points."""

from repro.experiments import fig10_points


def test_fig10_points(bench):
    result = bench(
        fig10_points.run,
        n_nodes=600,
        point_counts=(10, 50, 100),
        instances=4,
        seed=42,
    )

    def err(attr, system, points, key):
        return result.filter(attribute=attr, system=system, points=points).rows[0][key]

    # More interpolation points bring better accuracy (allowing the
    # paper's noted random wiggle: compare the extremes of the sweep).
    for attr in ("cpu", "ram"):
        assert err(attr, "minmax", 100, "err_max") < err(attr, "minmax", 10, "err_max")
        assert err(attr, "lcut", 100, "err_avg") < err(attr, "lcut", 10, "err_avg")

    # Adam2 beats EquiDepth at matched point counts on the RAM attribute.
    assert err("ram", "minmax", 50, "err_max") < err("ram", "equidepth", 50, "err_max")
    assert err("ram", "lcut", 50, "err_avg") < err("ram", "equidepth", 50, "err_avg")
