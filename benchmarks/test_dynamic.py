"""Bench: §VII-F — dynamic attribute distributions."""

from repro.experiments import dynamic


def test_dynamic_distributions(bench):
    result = bench(
        dynamic.run,
        n_nodes=800,
        drift_rates=(0.0, 0.003, 0.03),
        seed=42,
    )

    def err(rate, instance):
        return result.filter(drift_per_round=rate, instance=instance).rows[0]["err_avg"]

    # The end-of-instance error grows with the drift rate ...
    assert err(0.03, "normal") > err(0.003, "normal") > err(0.0, "normal")
    # ... and shortening the instance reduces the drift contribution
    # (paper §VII-F: gossiping faster trades nothing away).
    assert err(0.03, "short") < err(0.03, "normal")
