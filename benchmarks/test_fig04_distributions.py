"""Bench: Figure 4 — true CDFs of the BOINC-like attributes."""

from repro.experiments import fig04_distributions


def test_fig04_distributions(bench):
    result = bench(fig04_distributions.run, n_samples=20_000, seed=42)
    rows = {row["attribute"]: row for row in result.rows}
    # The paper's Figure 4 signature: RAM is a step function (most of the
    # probability mass on a handful of exact values), CPU is smooth.
    assert rows["ram"]["top5_step_mass"] > 0.5
    assert rows["cpu"]["top5_step_mass"] < 0.05
    # Domains span orders of magnitude, as in the BOINC census.
    assert rows["cpu"]["max"] / rows["cpu"]["min"] > 50
    assert rows["ram"]["max"] / rows["ram"]["min"] > 10
