"""Bench: §VII-I — per-node communication cost (size-independent)."""

from repro.experiments import cost


def test_cost(bench):
    result = bench(cost.run, sizes=(300, 1_000), seed=42)
    model = result.filter(system="adam2-model").rows[0]
    measured = result.filter(system="adam2-measured").rows

    # The paper's headline accounting at λ=50, 25 rounds, 3 instances:
    # ~800-byte messages, ~150 messages and ~120 kB sent per node,
    # ~1.6 kB/s upstream over ~75 seconds.
    assert 700 <= model["message_bytes"] <= 1000
    assert model["messages_per_node"] == 150
    assert 100 <= model["kbytes_per_node"] <= 140
    assert 1.2 <= model["upstream_kbps"] <= 2.0
    assert model["seconds"] == 75

    # Measured traffic is close to the model and — crucially —
    # independent of the system size.
    for row in measured:
        assert 0.6 * model["kbytes_per_node"] <= row["kbytes_per_node"] <= 1.1 * model["kbytes_per_node"]
    small, large = measured[0], measured[1]
    assert abs(small["kbytes_per_node"] - large["kbytes_per_node"]) < 0.15 * small["kbytes_per_node"]

    # Random sampling needs an order of magnitude more messages for
    # comparable accuracy.
    sampling = result.filter(system="sampling").rows
    assert sampling[-1]["messages_per_node"] >= 10 * model["messages_per_node"]
