"""Bench: Figure 11 — accuracy vs system size."""

from repro.experiments import fig11_scalability


def test_fig11_scalability(bench):
    result = bench(
        fig11_scalability.run,
        sizes=(100, 300, 1_000, 3_000),
        instances=4,
        seed=42,
    )
    for attr in ("cpu", "ram"):
        rows = result.filter(attribute=attr).rows
        max_errs = [r["err_max"] for r in rows]
        # Err_m stays within the same order of magnitude across sizes.
        assert max(max_errs) < 20 * min(max_errs)
        # The per-node cost model is size-independent by construction;
        # the accuracy here confirms the protocol itself is too.
        assert max_errs[-1] < 0.2
