"""Bench: Figure 5 — uniform vs neighbour-based bootstrap for MinMax."""

from repro.experiments import fig05_bootstrap


def test_fig05_bootstrap(bench):
    result = bench(fig05_bootstrap.run, n_nodes=600, instances=8, seed=42)

    def final_err(attr, mode):
        rows = result.filter(attribute=attr, bootstrap=mode).rows
        return rows[-1]["err_max"]

    # Neighbour-based bootstrap converges far better on the stepped RAM
    # attribute (paper: "clearly demonstrates ... significantly improves
    # the algorithm's convergence").
    assert final_err("ram", "neighbour") < 0.5 * final_err("ram", "uniform")
    # The smooth CPU attribute converges quickly either way.
    assert final_err("cpu", "neighbour") < 0.05
    assert final_err("cpu", "uniform") < 0.1
