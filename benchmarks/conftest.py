"""Shared benchmark helpers.

Each benchmark runs its experiment exactly once (``pedantic`` mode): the
experiments are deterministic end-to-end simulations, so repeated timing
rounds would only multiply runtime without improving the measurement.
The experiment's result table is printed so ``--benchmark-only`` output
doubles as the figure reproduction record (see EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest

from repro.analysis.report import format_table


def run_once(benchmark, runner, **params):
    """Run an experiment once under the benchmark timer and print it."""
    result = benchmark.pedantic(lambda: runner(**params), rounds=1, iterations=1)
    print()
    print(format_table(result))
    return result


@pytest.fixture()
def bench(benchmark):
    """Convenience fixture: ``bench(runner, **params) -> ExperimentResult``."""

    def _run(runner, **params):
        return run_once(benchmark, runner, **params)

    return _run
