"""Bench: Adam2 under asynchrony and message loss (extension).

No figure in the paper corresponds to this — the paper's evaluation is
synchronous — but §VII-F's gossip-period discussion presumes the protocol
survives real clocks and latency.  This bench runs one instance on the
event-driven engine across latency/loss settings and asserts the headline
property (error at the interpolation points far below the interpolation
error) holds.
"""

import numpy as np

from repro.asyncsim import AsyncAdam2, AsyncEngine, LatencyModel
from repro.core import Adam2Config, EmpiricalCDF
from repro.overlay import FullMeshOverlay
from repro.rngs import make_rng
from repro.workloads import boinc_ram_mb


def _run_async(latency: LatencyModel, loss_rate: float):
    rng = make_rng(5)
    config = Adam2Config(points=20, rounds_per_instance=30)
    protocol = AsyncAdam2(config, scheduler="manual")
    engine = AsyncEngine(
        FullMeshOverlay([]), protocol, rng,
        gossip_period=1.0, period_jitter=0.1, latency=latency, loss_rate=loss_rate,
    )
    engine.populate(boinc_ram_mb().sample(400, make_rng(6)))
    engine.run_for(2.0)
    protocol.trigger_instance(engine)
    engine.run_for(45.0)
    truth = EmpiricalCDF(engine.attribute_values())
    estimates = protocol.estimates(engine)
    worst = max(
        np.abs(truth.evaluate(e.thresholds) - e.fractions).max() for e in estimates[:50]
    )
    return len(estimates), worst


def test_async_latency_and_loss(benchmark):
    def run_all():
        return {
            "ideal": _run_async(LatencyModel(0.0, 0.0), 0.0),
            "wan": _run_async(LatencyModel(0.02, 0.2), 0.0),
            "lossy": _run_async(LatencyModel(0.02, 0.2), 0.2),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    for label, (count, worst) in results.items():
        print(f"  {label:>6}: estimates={count}  worst point error={worst:.2e}")
    for label, (count, worst) in results.items():
        assert count >= 395
        assert worst < 0.05, f"{label}: async convergence broke"
    assert results["ideal"][1] < 0.01
