"""CI smoke test for durable serving: publish, SIGKILL, restart, recover.

Starts the real ``serve`` CLI with a ``--store-dir`` snapshot log and the
HTTP status surface, waits until at least ``--cycles`` snapshot versions
are published, captures the served estimate over HTTP, and SIGKILLs the
process mid-flight.  A second serve process then restarts over the same
log (with a long refresh pause, so nothing new is published during the
checks) and must:

* answer its **first TCP query from the recovered snapshot** within the
  ``--first-query-budget`` (default 1 s) of the client connecting — a
  recovered service never waits for a fresh scheduler cycle;
* serve the recovered version's polyline **bit-identically** over
  ``GET /estimate?version=N`` (same JSON floats, element for element);
* report a restart count of at least 2 and a sane version/staleness
  pair on ``GET /status``.

Usage::

    python scripts/persist_smoke.py --cycles 3 --refresh 0.2
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request


class SmokeError(Exception):
    """A phase of the smoke failed in a way that ends the run."""


def _serve_argv(args: argparse.Namespace, store_dir: str, refresh: float) -> list[str]:
    return [
        sys.executable, "-u", "-m", "repro.experiments.cli", "serve",
        "--backend", "fast",
        "--nodes", str(args.nodes),
        "--points", str(args.points),
        "--rounds", str(args.rounds),
        "--seed", str(args.seed),
        "--host", args.host,
        "--port", "0",
        "--http-port", "0",
        "--store-dir", store_dir,
        "--fsync", args.fsync,
        "--refresh", str(refresh),
    ]


def _spawn(argv: list[str], deadline_s: float) -> tuple[subprocess.Popen[str], int, int]:
    """Start a serve process; returns (process, tcp_port, http_port).

    The CLI announces ``serving on host:port`` and ``status on
    http://host:port/status`` on stdout once both surfaces are bound.
    """
    from repro.obs import wall_clock

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH", "")) if p
    )
    process = subprocess.Popen(
        argv, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env,
    )
    tcp_port: int | None = None
    http_port: int | None = None
    started = wall_clock()
    assert process.stdout is not None
    for line in process.stdout:
        line = line.strip()
        if line.startswith("serving on "):
            tcp_port = int(line.split()[2].rsplit(":", 1)[1])
        elif line.startswith("status on "):
            http_port = int(
                line.split()[2].rsplit("/", 1)[0].rsplit(":", 1)[1]
            )
        if tcp_port is not None and http_port is not None:
            return process, tcp_port, http_port
        if wall_clock() - started > deadline_s:
            break
    process.kill()
    process.wait()
    raise SmokeError(
        f"serve process never announced its ports within {deadline_s}s "
        f"(exit code {process.returncode})"
    )


def _http_json(host: str, port: int, path: str, timeout: float = 5.0) -> object:
    url = f"http://{host}:{port}{path}"
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return json.load(response)


def _wait_for_version(
    host: str, port: int, want: int, deadline_s: float
) -> dict[str, object]:
    """Poll ``/status`` until the published version reaches ``want``."""
    from repro.obs import wall_clock

    started = wall_clock()
    while wall_clock() - started < deadline_s:
        try:
            status = _http_json(host, port, "/status")
        except (urllib.error.URLError, ConnectionError, OSError):
            time.sleep(0.05)
            continue
        assert isinstance(status, dict)
        latest = status.get("latest")
        if isinstance(latest, dict) and int(latest.get("version", 0)) >= want:
            return status
        time.sleep(0.05)
    raise SmokeError(f"no version >= {want} published within {deadline_s}s")


def _first_query(host: str, port: int, deadline_s: float) -> tuple[dict[str, object], float]:
    """Connect to the restarted endpoint; returns (status, first-query seconds).

    The connection itself is retried (the listener may still be binding)
    but the query clock starts at the *connect*: a recovered service must
    answer instantly, not after its first fresh cycle.
    """
    import asyncio

    from repro.net.service_endpoint import ServiceClient
    from repro.obs import wall_clock

    async def _ask() -> tuple[dict[str, object], float]:
        client = ServiceClient(host, port)
        started = wall_clock()
        while True:
            try:
                await client.connect()
                break
            except (ConnectionError, OSError):
                if wall_clock() - started > deadline_s:
                    raise
                await asyncio.sleep(0.05)
        try:
            asked = wall_clock()
            status = await client.status()
            return status, wall_clock() - asked
        finally:
            await client.close()

    return asyncio.run(_ask())


def _kill(process: subprocess.Popen[str]) -> None:
    if process.poll() is None:
        process.kill()
    process.wait()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=400)
    parser.add_argument("--points", type=int, default=20)
    parser.add_argument("--rounds", type=int, default=20)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--cycles", type=int, default=3,
                        help="snapshot versions to publish before the kill")
    parser.add_argument("--refresh", type=float, default=0.2,
                        help="scheduler pause in phase one (fast publishing)")
    parser.add_argument("--fsync", choices=("always", "rotate", "never"),
                        default="rotate")
    parser.add_argument("--first-query-budget", type=float, default=1.0,
                        help="seconds the restarted service has to answer "
                        "its first query from the recovered snapshot")
    parser.add_argument("--timeout", type=int, default=120,
                        help="hard wall-clock budget in seconds (SIGALRM; 0 disables)")
    args = parser.parse_args(argv)

    if args.timeout > 0:
        def _expired(signum: int, frame: object) -> None:
            raise TimeoutError(f"persist smoke exceeded {args.timeout}s budget")

        signal.signal(signal.SIGALRM, _expired)
        signal.alarm(args.timeout)

    failures: list[str] = []
    report: dict[str, object] = {}
    with tempfile.TemporaryDirectory(prefix="adam2-persist-smoke-") as store_dir:
        # Phase 1: publish >= --cycles versions, capture, SIGKILL.
        process, _tcp, http = _spawn(
            _serve_argv(args, store_dir, args.refresh), deadline_s=60.0
        )
        try:
            status = _wait_for_version(args.host, http, args.cycles, 60.0)
            latest = status["latest"]
            assert isinstance(latest, dict)
            version = int(latest["version"])  # the version that must survive
            estimate = _http_json(args.host, http, f"/estimate?version={version}")
            assert isinstance(estimate, dict)
        finally:
            _kill(process)
        report["killed_at_version"] = version

        # Phase 2: restart over the same log; nothing new is published
        # during the checks (the refresh pause is far longer than them).
        process, tcp, http = _spawn(
            _serve_argv(args, store_dir, refresh=600.0), deadline_s=60.0
        )
        try:
            first_status, first_query_s = _first_query(
                args.host, tcp, deadline_s=30.0
            )
            report["first_query_s"] = first_query_s
            if first_query_s > args.first_query_budget:
                failures.append(
                    f"first post-restart query took {first_query_s:.3f}s "
                    f"(budget {args.first_query_budget}s)"
                )
            served = first_status.get("latest")
            if not (isinstance(served, dict) and int(served.get("version", 0)) == version):
                failures.append(
                    f"first query served {served!r}, wanted recovered "
                    f"version {version}"
                )

            recovered = _http_json(args.host, http, f"/estimate?version={version}")
            assert isinstance(recovered, dict)
            if recovered["polyline"] != estimate["polyline"]:
                failures.append(
                    f"recovered polyline for version {version} is not "
                    "bit-identical to the pre-kill one"
                )
            if recovered["meta"] != estimate["meta"]:
                failures.append(
                    f"recovered metadata for version {version} differs: "
                    f"{recovered['meta']!r} != {estimate['meta']!r}"
                )

            http_status = _http_json(args.host, http, "/status")
            assert isinstance(http_status, dict)
            persistence = http_status.get("persistence")
            if not isinstance(persistence, dict):
                failures.append(f"/status carries no persistence info: {http_status!r}")
            else:
                report["persistence"] = persistence
                if int(persistence.get("restarts", 0)) < 2:
                    failures.append(
                        f"restart count {persistence.get('restarts')!r} < 2 "
                        "after a kill + restart"
                    )
                if int(persistence.get("recovered_snapshots", 0)) < 1:
                    failures.append("restart recovered no snapshots")
            served_latest = http_status.get("latest")
            staleness = http_status.get("staleness")
            if not (isinstance(served_latest, dict)
                    and int(served_latest.get("version", 0)) == version):
                failures.append(
                    f"/status latest is {served_latest!r}, wanted version {version}"
                )
            if not isinstance(staleness, int) or staleness < 0:
                failures.append(f"/status staleness {staleness!r} is not a sane tick count")
        finally:
            _kill(process)
    signal.alarm(0)

    print(json.dumps(report, indent=2, sort_keys=True))
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
