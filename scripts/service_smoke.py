"""CI smoke test for the continuous estimation service's TCP frontend.

Warms a fast-backend service, serves it over the JSON-lines endpoint,
and drives a mixed query workload (cdf / quantile / fraction / size,
plus a sprinkle of deliberately malformed requests) from several
concurrent clients.  A second phase serves the same handle from a
multi-worker pool (``--workers``, default 4) and exercises the binary
frame codec and batched queries against it.  Fails hard if:

* any request draws a ``server_error`` (the 5xx class — a healthy
  service never produces one; malformed requests must map to
  ``bad_request`` instead),
* client-observed p99 latency exceeds the budget,
* the JSONL trace does not account for every request line served on the
  single-endpoint phase (worker processes trace into their own hubs, so
  the accounting check stays on phase one),
* a batched binary answer from the pool disagrees with the in-process
  engine, or the pool draws any error at all.

Usage::

    python scripts/service_smoke.py --queries 1000 --clients 4 \
        --workers 4 --trace service_smoke_trace.jsonl --p99-budget 0.05
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys


async def _drive(
    handle: object,
    requests: list[dict[str, object]],
    clients: int,
    host: str,
) -> tuple[list[float], dict[str, int]]:
    """Serve ``handle`` ephemerally; return latencies and error counts."""
    from repro.net.service_endpoint import ServiceClient, ServiceEndpoint
    from repro.obs import wall_clock

    latencies: list[float] = []
    errors: dict[str, int] = {}

    async def _client(port: int, share: list[dict[str, object]]) -> None:
        async with ServiceClient(host, port) as client:
            for payload in share:
                started = wall_clock()
                response = await client.request(payload)
                latencies.append(wall_clock() - started)
                if not response.get("ok"):
                    code = str(response.get("error", "missing_error_code"))
                    errors[code] = errors.get(code, 0) + 1

    async with ServiceEndpoint(handle, host=host, port=0) as endpoint:  # type: ignore[arg-type]
        assert endpoint.port is not None
        shares = [requests[i::clients] for i in range(clients)]
        await asyncio.gather(*(
            _client(endpoint.port, share) for share in shares if share
        ))
    return latencies, errors


async def _pool_correctness(
    handle: object, host: str, port: int, xs: list[float]
) -> tuple[list[float | None], dict[str, object]]:
    """One binary batch against the pool; values plus a worker status."""
    from repro.net.service_endpoint import ServiceClient
    from repro.service.protocol import QueryRequest

    async with ServiceClient(host, port, frame="binary") as client:
        batch = await client.batch(
            [QueryRequest("cdf", (x,)) for x in xs]
            + [QueryRequest("size", ())]
        )
        status = await client.status()
    return [r.value for r in batch.results], status


def _pool_phase(
    handle: object, args: argparse.Namespace,
    mixed: list[tuple[str, tuple[float, ...]]],
) -> tuple[dict[str, object], list[str]]:
    """Drive batch + binary through a >= 4 worker pool; returns report, failures."""
    from repro.net.service_endpoint import measure_endpoint_qps
    from repro.net.service_worker import ServiceWorkerPool

    failures: list[str] = []
    xs = [float(x) for x in range(0, 1000, 97)]
    pool = ServiceWorkerPool(handle.store, workers=args.workers, host=args.host)  # type: ignore[attr-defined]
    pool.start()
    try:
        values, status = asyncio.run(
            _pool_correctness(handle, args.host, pool.port, xs)
        )
        mode = pool.mode
    finally:
        pool.stop()

    expected = [handle.cdf(x) for x in xs] + [handle.network_size()]  # type: ignore[attr-defined]
    mismatched = sum(
        1 for got, want in zip(values, expected)
        if got is None or abs(got - want) > 1e-9
    )
    if mismatched:
        failures.append(
            f"{mismatched}/{len(expected)} batched binary answers disagree "
            "with the in-process engine"
        )
    if status.get("serving_mode") not in ("reuseport", "threads"):
        failures.append(f"pool status reports no serving mode: {status!r}")

    stats = measure_endpoint_qps(
        handle, mixed, clients=args.clients, workers=args.workers,  # type: ignore[arg-type]
        frame="binary", batch_size=args.batch,
    )
    if stats["errors"]:
        failures.append(f"pool load drew {stats['errors']} error responses")
    report = {
        "workers": args.workers,
        "mode": mode,
        "batch_size": args.batch,
        "ops": stats["ops"],
        "qps": stats["qps"],
        "errors": stats["errors"],
        "worker_status": {
            k: status.get(k) for k in ("worker", "serving_mode", "versions")
        },
    }
    return report, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--queries", type=int, default=1000)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--workers", type=int, default=4,
                        help="pool size for the multi-worker phase (0 skips it)")
    parser.add_argument("--batch", type=int, default=16,
                        help="ops per batched request in the pool phase")
    parser.add_argument("--nodes", type=int, default=800)
    parser.add_argument("--points", type=int, default=24)
    parser.add_argument("--rounds", type=int, default=25)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--invalid-every", type=int, default=50,
        help="replace every Nth request with a malformed one (0 disables); "
        "these must come back as bad_request, never server_error",
    )
    parser.add_argument(
        "--p99-budget", type=float, default=0.05,
        help="client-observed p99 latency budget in seconds",
    )
    parser.add_argument("--trace", default="service_smoke_trace.jsonl")
    parser.add_argument(
        "--timeout", type=int, default=120,
        help="hard wall-clock budget in seconds (SIGALRM; 0 disables)",
    )
    args = parser.parse_args(argv)

    if args.timeout > 0:
        # A wedged endpoint must fail the job, not hang it until the
        # runner's own timeout reaps it without artifacts.
        def _expired(signum: int, frame: object) -> None:
            raise TimeoutError(f"service smoke exceeded {args.timeout}s budget")

        signal.signal(signal.SIGALRM, _expired)
        signal.alarm(args.timeout)

    import numpy as np

    from repro.core.config import Adam2Config
    from repro.obs import JsonlSink, ObserverHub
    from repro.service import build_service
    from repro.service.bench import _mixed_queries
    from repro.workloads.synthetic import uniform_workload

    config = Adam2Config(points=args.points, rounds_per_instance=args.rounds)
    hub = ObserverHub([JsonlSink(args.trace)])
    try:
        handle = build_service(
            config,
            uniform_workload(0, 1000),
            backend="fast",
            n_nodes=args.nodes,
            seed=args.seed,
            hub=hub,
            warm_cycles=1,
        )
        requests: list[dict[str, object]] = []
        bad_probes = 0
        mixed = _mixed_queries(handle, args.queries, args.seed + 1, 128)
        for index, (op, params) in enumerate(mixed):
            if args.invalid_every and index % args.invalid_every == 5:
                requests.append({"op": "cdf", "x": "not-a-number"})
                bad_probes += 1
            elif op == "cdf":
                requests.append({"op": "cdf", "x": params[0]})
            elif op == "quantile":
                requests.append({"op": "quantile", "q": params[0]})
            elif op == "fraction":
                requests.append({"op": "fraction", "a": params[0], "b": params[1]})
            else:
                requests.append({"op": "size"})

        latencies, errors = asyncio.run(
            _drive(handle, requests, args.clients, args.host)
        )
        pool_report: dict[str, object] = {}
        pool_failures: list[str] = []
        if args.workers > 0:
            pool_report, pool_failures = _pool_phase(handle, args, mixed)
        metrics = hub.metrics.snapshot()
    finally:
        hub.close()
        signal.alarm(0)

    p50 = float(np.percentile(latencies, 50)) if latencies else 0.0
    p99 = float(np.percentile(latencies, 99)) if latencies else 0.0
    traced_queries = 0
    with open(args.trace) as stream:
        for line in stream:
            if json.loads(line).get("type") == "query":
                traced_queries += 1

    report = {
        "queries": len(requests),
        "answered": len(latencies),
        "clients": args.clients,
        "p50_latency_s": p50,
        "p99_latency_s": p99,
        "errors": errors,
        "bad_probes_sent": bad_probes,
        "traced_query_events": traced_queries,
        "cache": dict(handle.engine.cache_info()),
        "counters": metrics["counters"],
        "pool": pool_report,
    }
    print(json.dumps(report, indent=2, sort_keys=True))

    failures = list(pool_failures)
    if len(latencies) != len(requests):
        failures.append(
            f"only {len(latencies)}/{len(requests)} requests were answered"
        )
    if errors.get("server_error", 0) != 0:
        failures.append(f"{errors['server_error']} server_error (5xx) responses")
    if errors.get("bad_request", 0) != bad_probes:
        failures.append(
            f"expected exactly {bad_probes} bad_request responses "
            f"(the deliberate probes), saw {errors.get('bad_request', 0)}"
        )
    unexpected = set(errors) - {"bad_request"}
    if unexpected:
        failures.append(f"unexpected error classes: {sorted(unexpected)}")
    if p99 > args.p99_budget:
        failures.append(
            f"p99 latency {p99 * 1e3:.2f} ms exceeds the "
            f"{args.p99_budget * 1e3:.1f} ms budget"
        )
    if traced_queries < len(requests):
        failures.append(
            f"trace has {traced_queries} query events for "
            f"{len(requests)} requests — per-query metrics are incomplete"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
