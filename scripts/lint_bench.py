#!/usr/bin/env python
"""Benchmark ``adam2-lint``: sequential vs parallel per-file analysis.

The project-index pass is shared; only the per-file rule phase fans out.
This script times both modes over the same tree, checks they report
identical findings, and asserts the parallel mode is no slower than
sequential (within a startup-cost tolerance).  On a single-CPU machine
``--jobs auto`` resolves to 1 and the parallel run *is* the sequential
path — the assertion then verifies exactly that fallback: asking for
parallelism must never cost anything.

Usage::

    PYTHONPATH=src python scripts/lint_bench.py [--paths src] [--repeats 3]
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.lint.engine import LintEngine, _resolve_jobs, lint_paths

#: parallel may be up to this factor slower before the bench fails —
#: covers pool startup noise when the tree is barely above the fan-out
#: threshold, while still catching a real "parallel is slower" regression
TOLERANCE = 1.15


def _time_run(paths: list[str], jobs: int, repeats: int) -> tuple[float, int]:
    best = float("inf")
    findings = -1
    for _ in range(repeats):
        started = time.perf_counter()  # adam2: noqa[ADM007,ADM008]
        report = lint_paths(paths, jobs=jobs)
        elapsed = time.perf_counter() - started  # adam2: noqa[ADM007,ADM008]
        best = min(best, elapsed)
        findings = len(report.violations)
    return best, findings


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--paths", nargs="*", default=["src"])
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--jobs", default="auto")
    parser.add_argument("--json-out", default="", help="write results as JSON")
    args = parser.parse_args(argv)

    n_files = len(LintEngine.discover(args.paths))
    jobs = _resolve_jobs(args.jobs, n_files)

    sequential_s, sequential_findings = _time_run(args.paths, 1, args.repeats)
    parallel_s, parallel_findings = _time_run(args.paths, jobs, args.repeats)

    speedup = sequential_s / parallel_s if parallel_s > 0 else float("inf")
    result = {
        "files": n_files,
        "jobs": jobs,
        "sequential_s": round(sequential_s, 4),
        "parallel_s": round(parallel_s, 4),
        "speedup": round(speedup, 3),
        "findings": sequential_findings,
    }
    print(
        f"{n_files} files | sequential {sequential_s:.3f}s | "
        f"parallel(jobs={jobs}) {parallel_s:.3f}s | speedup x{speedup:.2f}"
    )
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as sink:
            json.dump(result, sink, indent=2)

    if sequential_findings != parallel_findings:
        print(
            f"FAIL: finding counts diverge (sequential {sequential_findings}, "
            f"parallel {parallel_findings})",
            file=sys.stderr,
        )
        return 1
    if parallel_s > sequential_s * TOLERANCE:
        print(
            f"FAIL: parallel run is slower than sequential "
            f"({parallel_s:.3f}s > {sequential_s:.3f}s x{TOLERANCE})",
            file=sys.stderr,
        )
        return 1
    print("OK: parallel is no slower than sequential")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
