"""CI smoke test for the real-network runtime.

Runs one Adam2 aggregation instance on a localhost UDP cluster with
injected datagram loss, writes the JSONL observability trace, and fails
hard if the cluster does not converge within a wall-clock budget.

Usage::

    python scripts/net_smoke.py --nodes 16 --drop-rate 0.05 \
        --trace net_smoke_trace.jsonl --timeout 120
"""

from __future__ import annotations

import argparse
import json
import signal
import sys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=16)
    parser.add_argument("--drop-rate", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--rounds", type=int, default=30)
    parser.add_argument("--points", type=int, default=10)
    parser.add_argument("--gossip-period", type=float, default=0.02)
    parser.add_argument("--trace", default="net_smoke_trace.jsonl")
    parser.add_argument(
        "--timeout", type=int, default=120,
        help="hard wall-clock budget in seconds (SIGALRM; 0 disables)",
    )
    args = parser.parse_args(argv)

    if args.timeout > 0:
        # A wedged cluster must fail the job, not hang it until the
        # runner's own timeout reaps it without artifacts.
        def _expired(signum: int, frame: object) -> None:
            raise TimeoutError(f"net smoke exceeded {args.timeout}s budget")

        signal.signal(signal.SIGALRM, _expired)
        signal.alarm(args.timeout)

    from repro.api import run
    from repro.core.config import Adam2Config
    from repro.obs import JsonlSink, ObserverHub
    from repro.workloads.synthetic import uniform_workload

    config = Adam2Config(points=args.points, rounds_per_instance=args.rounds)
    hub = ObserverHub([JsonlSink(args.trace)], instrument=True)
    try:
        result = run(
            config,
            uniform_workload(0, 1000),
            backend="net",
            n_nodes=args.nodes,
            instances=1,
            seed=args.seed,
            hub=hub,
            gossip_period=args.gossip_period,
            sanitize=True,
            drop_rate=args.drop_rate,
        )
    finally:
        hub.close()
        signal.alarm(0)

    summary = result.instances[0]
    counters = result.extras["net_counters"]
    report = {
        "nodes": args.nodes,
        "drop_rate": args.drop_rate,
        "reached": summary.reached,
        "err_points_max": summary.errors_points.maximum,
        "err_entire_max": summary.errors_entire.maximum,
        "counters": counters,
    }
    print(json.dumps(report, indent=2, sort_keys=True))

    failures = []
    if summary.reached != args.nodes:
        failures.append(f"only {summary.reached}/{args.nodes} nodes finished")
    if args.drop_rate > 0 and counters["dropped"] == 0:
        failures.append("fault injector never dropped a datagram")
    if counters["decode_errors"] != 0:
        failures.append(f"{counters['decode_errors']} datagrams failed to decode")
    if summary.errors_points.maximum >= 0.2:
        failures.append(
            f"max CDF error {summary.errors_points.maximum:.4f} did not converge"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
