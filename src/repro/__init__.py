"""repro — a full reproduction of Adam2 (ICDCS 2010).

Adam2 is a decentralised, gossip-based protocol with which every node of a
large P2P system estimates the statistical distribution (CDF) of an
attribute across all nodes, refines that estimate over successive
aggregation instances, and assesses the accuracy of its own estimate.

Quickstart::

    import numpy as np
    from repro import Adam2Config, Adam2Simulation, boinc_ram_mb

    sim = Adam2Simulation(
        workload=boinc_ram_mb(),
        n_nodes=1_000,
        config=Adam2Config(points=50, selection="minmax"),
        seed=42,
    )
    result = sim.run_instances(3)
    print(result.final_errors)          # (Err_m, Err_a) vs ground truth
    print(result.estimate.evaluate([512, 1024, 2048]))

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
paper-vs-measured reproduction record.
"""

from repro.core import (
    Adam2Config,
    Adam2Node,
    Adam2Protocol,
    EmpiricalCDF,
    EstimatedCDF,
    InterpolationSet,
)
from repro.fastsim import Adam2Simulation, FastInstanceResult, FastRunResult
from repro.metrics import cdf_errors, error_grid
from repro.monitor import DistributionMonitor, DistributionView
from repro.types import ErrorPair
from repro.workloads import (
    boinc_bandwidth_kbps,
    boinc_cpu_mflops,
    boinc_disk_gb,
    boinc_ram_mb,
    boinc_workload,
)

__version__ = "1.0.0"

__all__ = [
    "Adam2Config",
    "Adam2Node",
    "Adam2Protocol",
    "Adam2Simulation",
    "FastInstanceResult",
    "FastRunResult",
    "EmpiricalCDF",
    "EstimatedCDF",
    "InterpolationSet",
    "ErrorPair",
    "cdf_errors",
    "error_grid",
    "DistributionMonitor",
    "DistributionView",
    "boinc_cpu_mflops",
    "boinc_ram_mb",
    "boinc_bandwidth_kbps",
    "boinc_disk_gb",
    "boinc_workload",
    "__version__",
]
