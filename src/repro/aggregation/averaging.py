"""Push–pull epidemic averaging.

Every node holds a state vector; a gossip exchange replaces both peers'
vectors with their element-wise mean.  The population mean is invariant
under exchanges, and the variance of states around it decays exponentially
with rounds — the property Adam2 inherits for its ``f_i`` fractions and
size weights.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import SimulationError
from repro.simulation.engine import Engine, Protocol
from repro.simulation.node_base import SimNode

__all__ = ["AveragingProtocol"]


class AveragingProtocol(Protocol):
    """Continuous epidemic averaging of a per-node state vector.

    Args:
        initial: function of a :class:`SimNode` returning the node's
            initial state vector (e.g. ``lambda n: n.values[:1]``).
        name: protocol registry name (allows several instances).
        value_bytes: wire-size model per vector element.
    """

    def __init__(
        self,
        initial: Callable[[SimNode], np.ndarray],
        name: str = "averaging",
        value_bytes: int = 8,
    ):
        self.name = name
        self.initial = initial
        self.value_bytes = value_bytes

    def on_node_added(self, node: SimNode, engine: Engine) -> None:
        state = np.atleast_1d(np.asarray(self.initial(node), dtype=float)).copy()
        if state.size == 0:
            raise SimulationError("averaging state must be non-empty")
        node.state[self.name] = state

    def exchange(self, initiator: SimNode, responder: SimNode, engine: Engine) -> tuple[int, int]:
        a = initiator.state[self.name]
        b = responder.state[self.name]
        mean = (a + b) / 2.0
        initiator.state[self.name] = mean
        responder.state[self.name] = mean.copy()
        payload = self.value_bytes * a.size
        return payload, payload

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def states(self, engine: Engine) -> np.ndarray:
        """All node states as an ``(n, k)`` matrix."""
        return np.vstack([node.state[self.name] for node in engine.nodes.values()])

    def spread(self, engine: Engine) -> float:
        """Max absolute deviation from the current population mean.

        The convergence measure: decays exponentially with rounds in a
        static system.
        """
        states = self.states(engine)
        return float(np.abs(states - states.mean(axis=0)).max())
