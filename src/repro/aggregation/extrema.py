"""Epidemic minimum/maximum aggregation.

Min/max are idempotent merges, so the epidemic converges in O(log N)
rounds with no accuracy loss — this is how Adam2 discovers the global
attribute extremes that anchor its interpolation.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.simulation.engine import Engine, Protocol
from repro.simulation.node_base import SimNode

__all__ = ["ExtremaProtocol"]


class ExtremaProtocol(Protocol):
    """Continuous epidemic min/max of a scalar per node."""

    def __init__(
        self,
        initial: Callable[[SimNode], float] | None = None,
        name: str = "extrema",
        value_bytes: int = 16,
    ):
        self.name = name
        self.initial = initial or (lambda node: node.value)
        self.value_bytes = value_bytes

    def on_node_added(self, node: SimNode, engine: Engine) -> None:
        value = float(self.initial(node))
        node.state[self.name] = (value, value)

    def exchange(self, initiator: SimNode, responder: SimNode, engine: Engine) -> tuple[int, int]:
        lo_a, hi_a = initiator.state[self.name]
        lo_b, hi_b = responder.state[self.name]
        merged = (min(lo_a, lo_b), max(hi_a, hi_b))
        initiator.state[self.name] = merged
        responder.state[self.name] = merged
        return self.value_bytes, self.value_bytes

    def extremes(self, engine: Engine) -> tuple[float, float]:
        """The (min, max) pair every node would report if fully converged."""
        los, his = zip(*(node.state[self.name] for node in engine.nodes.values()))
        return min(los), max(his)

    def converged(self, engine: Engine) -> bool:
        """True when every node holds identical extreme estimates."""
        pairs = {node.state[self.name] for node in engine.nodes.values()}
        return len(pairs) == 1
