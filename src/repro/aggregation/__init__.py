"""Generic gossip aggregation substrate.

Standalone implementations of the push–pull aggregation primitives that
Adam2 builds on [Jelasity, Montresor & Babaoglu, TOCS 2005]: epidemic
averaging, epidemic extrema, and inverse-weight system-size estimation.
They run as protocols on the :mod:`repro.simulation` engine and are also
useful on their own (e.g. the examples estimate a global mean load).
"""

from repro.aggregation.averaging import AveragingProtocol
from repro.aggregation.extrema import ExtremaProtocol
from repro.aggregation.counting import SizeEstimationProtocol

__all__ = ["AveragingProtocol", "ExtremaProtocol", "SizeEstimationProtocol"]
