"""Inverse-weight system-size estimation.

One designated node enters the averaging protocol with weight 1, everyone
else with 0; the average converges to ``1/N`` so each node estimates the
population size as the inverse of its weight — the mechanism Adam2 embeds
in every aggregation instance.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.core.sizing import size_from_weight
from repro.simulation.engine import Engine, Protocol
from repro.simulation.node_base import SimNode

__all__ = ["SizeEstimationProtocol"]


class SizeEstimationProtocol(Protocol):
    """Epidemic size estimation with a single unit of weight."""

    name = "size"

    def __init__(self, value_bytes: int = 8):
        self.value_bytes = value_bytes
        self._initiator_assigned = False

    def on_node_added(self, node: SimNode, engine: Engine) -> None:
        weight = 0.0
        if not self._initiator_assigned:
            weight = 1.0
            self._initiator_assigned = True
        node.state[self.name] = weight

    def on_node_removed(self, node: SimNode, engine: Engine) -> None:
        # Departing weight is lost, exactly as in the real protocol; the
        # estimate inflates under churn until a new instance restarts it.
        return None

    def exchange(self, initiator: SimNode, responder: SimNode, engine: Engine) -> tuple[int, int]:
        mean = (initiator.state[self.name] + responder.state[self.name]) / 2.0
        initiator.state[self.name] = mean
        responder.state[self.name] = mean
        return self.value_bytes, self.value_bytes

    def estimates(self, engine: Engine) -> list[float]:
        """Per-node size estimates (only nodes the weight has reached)."""
        out = []
        for node in engine.nodes.values():
            weight = node.state[self.name]
            if weight > 0:
                out.append(size_from_weight(weight))
        if not out:
            raise SimulationError("weight has not reached any node yet")
        return out
