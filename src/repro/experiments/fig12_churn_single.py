"""Figure 12: single-instance accuracy under churn (0.1 %/round, RAM).

Under the paper's reference churn (1-second gossip period, 15-minute mean
session → ~0.1 % of nodes replaced per round) a single Adam2 instance
still converges: the error at the interpolation points drops to ~10⁻²–10⁻⁴
(not to numerical zero — nodes that leave before their contributions are
fully disseminated leave a small residue), which remains far below the
interpolation error and is entirely sufficient to interpolate the CDF.
EquiDepth is not significantly affected by churn either, but stays at its
usual plateau.  Metrics exclude nodes that joined during the instance,
whose approximations are undefined (§VII-G).
"""

from __future__ import annotations

from repro.analysis.results import ExperimentResult
from repro.core.config import Adam2Config
from repro.experiments.common import get_scale, run_adam2
from repro.fastsim.equidepth import EquiDepthSimulation
from repro.workloads import boinc_workload

__all__ = ["run"]


def run(
    n_nodes: int | None = None,
    points: int = 50,
    rounds: int = 80,
    churn_rate: float = 0.001,
    seed: int = 42,
    attribute: str = "ram",
    track_every: int = 5,
) -> ExperimentResult:
    """Reproduce Fig. 12: per-round error under churn, Adam2 vs EquiDepth."""
    scale = get_scale()
    n = n_nodes or scale.n_nodes
    workload = boinc_workload(attribute)
    result = ExperimentResult(
        name="fig12_churn_single",
        description="Per-round error in one instance/phase under replacement churn",
        params={
            "n_nodes": n,
            "points": points,
            "rounds": rounds,
            "churn_rate": churn_rate,
            "seed": seed,
            "attribute": attribute,
        },
    )

    config = Adam2Config(points=points, rounds_per_instance=rounds)
    # Pinned to the fast backend: replacement churn_rate + tracking.
    instance = run_adam2(
        config, workload, n_nodes=n, seed=seed, scale=scale, backend="fast",
        churn_rate=churn_rate, track=True, track_every=track_every,
    ).final
    for i, round_ in enumerate(instance.trace.rounds):
        result.add_row(
            system="adam2",
            round=round_,
            max_entire=instance.trace.max_entire[i],
            avg_entire=instance.trace.avg_entire[i],
            max_points=instance.trace.max_points[i],
            avg_points=instance.trace.avg_points[i],
        )

    equidepth = EquiDepthSimulation(
        workload, n, synopsis_size=points, seed=seed,
        churn_rate=churn_rate, node_sample=scale.node_sample,
    )
    phase = equidepth.run_phase(rounds=rounds, track=True, track_every=track_every)
    for i, round_ in enumerate(phase.trace.rounds):
        result.add_row(
            system="equidepth",
            round=round_,
            max_entire=phase.trace.max_entire[i],
            avg_entire=phase.trace.avg_entire[i],
            max_points=phase.trace.max_points[i],
            avg_points=phase.trace.avg_points[i],
        )
    return result
