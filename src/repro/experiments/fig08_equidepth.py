"""Figure 8: EquiDepth across phases, against MinMax and LCut.

EquiDepth does not refine its bins based on previous estimates, so it
produces essentially the same error in every phase; Adam2's refinement
pulls ahead after 2–3 instances — a few times better on ``Err_m``
(especially for step CDFs) and roughly an order of magnitude on
``Err_a``.
"""

from __future__ import annotations

from repro.analysis.results import ExperimentResult
from repro.core.config import Adam2Config
from repro.experiments.common import attribute_workloads, get_scale, run_adam2
from repro.fastsim.equidepth import EquiDepthSimulation

__all__ = ["run"]


def run(
    n_nodes: int | None = None,
    points: int = 50,
    phases: int = 5,
    seed: int = 42,
    attributes=("cpu", "ram"),
) -> ExperimentResult:
    """Reproduce Fig. 8: per-phase errors of EquiDepth vs MinMax/LCut."""
    scale = get_scale()
    n = n_nodes or scale.n_nodes
    result = ExperimentResult(
        name="fig08_equidepth",
        description="EquiDepth phases vs Adam2 instances (Err_m: MinMax, Err_a: LCut)",
        params={"n_nodes": n, "points": points, "phases": phases, "seed": seed},
    )
    for attr, workload in attribute_workloads(tuple(attributes)):
        equidepth = EquiDepthSimulation(
            workload, n, synopsis_size=points, seed=seed, node_sample=scale.node_sample
        )
        for phase in equidepth.run_phases(phases, rounds=scale.rounds_per_instance):
            result.add_row(
                attribute=attr,
                system="equidepth",
                instance=phase.phase_index + 1,
                err_max=phase.errors_entire.maximum,
                err_avg=phase.errors_entire.average,
            )
        for heuristic in ("minmax", "lcut"):
            config = Adam2Config(
                points=points, rounds_per_instance=scale.rounds_per_instance, selection=heuristic
            )
            run_result = run_adam2(
                config, workload, n_nodes=n, instances=phases, seed=seed, scale=scale
            )
            for instance in run_result.instances:
                result.add_row(
                    attribute=attr,
                    system=heuristic,
                    instance=instance.index + 1,
                    err_max=instance.errors_entire.maximum,
                    err_avg=instance.errors_entire.average,
                )
    return result
