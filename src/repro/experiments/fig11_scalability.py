"""Figure 11: approximation accuracy vs system size.

Adam2's accuracy is essentially independent of the number of nodes: the
averaging protocol converges exponentially regardless of N (only the
instance TTL must grow logarithmically), so ``Err_m`` stays in the same
order of magnitude across sizes, while ``Err_a`` tends to *decrease* for
larger systems (longer distribution tails are easy to interpolate).
"""

from __future__ import annotations

import dataclasses

from repro.analysis.results import ExperimentResult
from repro.core.config import Adam2Config
from repro.experiments.common import attribute_workloads, get_scale, run_adam2

__all__ = ["run", "DEFAULT_SIZES"]

DEFAULT_SIZES = (100, 300, 1_000, 3_000, 10_000)


def run(
    sizes=DEFAULT_SIZES,
    points: int = 50,
    instances: int = 4,
    seed: int = 42,
    attributes=("cpu", "ram"),
    selection: str = "minmax",
) -> ExperimentResult:
    """Reproduce Fig. 11: errors after ``instances`` instances vs N."""
    scale = get_scale()
    result = ExperimentResult(
        name="fig11_scalability",
        description="Errors vs system size (accuracy is size-independent)",
        params={"points": points, "instances": instances, "seed": seed, "selection": selection},
    )
    for attr, workload in attribute_workloads(tuple(attributes)):
        for n in sizes:
            # Large populations gossip via the vectorised matching kernel.
            size_scale = (
                dataclasses.replace(scale, exchange="matching") if n > 20_000 else scale
            )
            config = Adam2Config(
                points=points, rounds_per_instance=scale.rounds_per_instance, selection=selection
            )
            final = run_adam2(
                config, workload, n_nodes=n, instances=instances, seed=seed, scale=size_scale
            ).final
            result.add_row(
                attribute=attr,
                nodes=n,
                err_max=final.errors_entire.maximum,
                err_avg=final.errors_entire.average,
            )
    return result
