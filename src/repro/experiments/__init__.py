"""Experiment reproductions: one module per paper figure/table.

Every experiment exposes ``run(**params) -> ExperimentResult`` with
laptop-scale defaults (see :mod:`repro.experiments.common`) and prints the
same rows/series the paper reports.  The registry in
:mod:`repro.experiments.registry` maps experiment ids (``fig05`` …) to
their runners; ``python -m repro.experiments.cli fig07`` runs one from the
command line.
"""

from repro.experiments.registry import get_experiment, list_experiments, run_experiment

__all__ = ["get_experiment", "list_experiments", "run_experiment"]
