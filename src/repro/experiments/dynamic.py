"""§VII-F: dynamic attribute distributions (discussion-only in the paper).

The paper argues two things about time-varying CDFs, both measured here:

1. the end-of-instance error is the sum of the aggregation error and the
   CDF's movement during the instance — so error grows with the drift
   rate;
2. shortening the instance (gossiping faster) proportionally reduces the
   drift contribution at *unchanged total cost per instance* (the same
   number of messages is sent, just closer together).

The experiment sweeps a multiplicative per-round drift against the smooth
CPU attribute and reports the end-of-instance errors for a normal-length
and a short instance.
"""

from __future__ import annotations

from repro.analysis.results import ExperimentResult
from repro.core.config import Adam2Config
from repro.experiments.common import get_scale, run_adam2
from repro.workloads import boinc_workload
from repro.workloads.dynamic import DriftModel

__all__ = ["run", "DEFAULT_DRIFT_RATES"]

DEFAULT_DRIFT_RATES = (0.0, 0.001, 0.003, 0.01, 0.03)


def run(
    n_nodes: int | None = None,
    points: int = 50,
    drift_rates=DEFAULT_DRIFT_RATES,
    rounds_normal: int = 30,
    rounds_short: int = 15,
    seed: int = 42,
    attribute: str = "cpu",
) -> ExperimentResult:
    """Sweep drift rate × instance duration; report end-of-instance errors."""
    scale = get_scale()
    n = n_nodes or scale.n_nodes
    workload = boinc_workload(attribute)
    result = ExperimentResult(
        name="dynamic_distributions",
        description="End-of-instance error under per-round multiplicative drift (§VII-F)",
        params={"n_nodes": n, "points": points, "seed": seed, "attribute": attribute},
    )
    for rate in drift_rates:
        for label, rounds in (("normal", rounds_normal), ("short", rounds_short)):
            # Warm-up instance on the static distribution so the drifting
            # instance starts from refined thresholds (steady state).
            # Pinned to the fast backend: drift models are fast-only.
            instance = run_adam2(
                Adam2Config(points=points, rounds_per_instance=rounds), workload,
                n_nodes=n, seed=seed, scale=scale, backend="fast",
                warmup_instances=1, drift=DriftModel(growth_per_round=rate),
            ).final
            result.add_row(
                drift_per_round=rate,
                instance=label,
                rounds=rounds,
                err_max=instance.errors_entire.maximum,
                err_avg=instance.errors_entire.average,
                messages_per_node=instance.messages / n,
            )
    return result
