"""Dump experiment results as CSV series for external plotting.

The library deliberately has no plotting dependency; this module runs any
subset of the registered experiments and writes one CSV per experiment
(via :mod:`repro.analysis.export`) into a directory, ready for gnuplot,
matplotlib or a spreadsheet.  Used as::

    python -m repro.experiments.figdata out/ fig05 fig07
    python -m repro.experiments.figdata out/            # everything
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.errors import ConfigurationError
from repro.analysis.export import write_csv
from repro.experiments.registry import list_experiments, run_experiment

__all__ = ["export_figures", "main"]


def export_figures(
    directory: str | Path,
    experiments: list[str] | None = None,
    **shared_params,
) -> list[Path]:
    """Run experiments and write ``<directory>/<id>.csv`` for each.

    Args:
        directory: output directory (created if missing).
        experiments: experiment ids; ``None`` runs all registered ones.
        shared_params: forwarded to every runner that accepts them
            (unknown keyword arguments are filtered per experiment).

    Returns:
        The written file paths.
    """
    import inspect

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    names = experiments if experiments is not None else list_experiments()
    written: list[Path] = []
    for name in names:
        from repro.experiments.registry import get_experiment

        runner = get_experiment(name)
        accepted = set(inspect.signature(runner).parameters)
        params = {k: v for k, v in shared_params.items() if k in accepted}
        result = run_experiment(name, **params)
        path = directory / f"{name}.csv"
        write_csv(result, path)
        written.append(path)
    return written


def main(argv: list[str] | None = None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    if not argv:
        print("usage: python -m repro.experiments.figdata <output-dir> [experiment ...]")
        return 2
    directory = argv[0]
    names = argv[1:] or None
    try:
        written = export_figures(directory, names)
    except ConfigurationError as exc:
        print(f"error: {exc}")
        return 1
    for path in written:
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
