"""Shared experiment scaffolding: scales, attributes, defaults.

The paper's evaluations use 100,000 nodes.  Running every figure at that
size is possible with the ``matching`` kernel but takes hours in pure
Python, so experiments default to a laptop scale that preserves every
qualitative result (the protocol's accuracy is size-independent — that is
Fig. 11's point).  Set ``REPRO_SCALE=paper`` to run full-size, or
``REPRO_SCALE=quick`` for CI-speed smoke runs.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.api import RunResult, get_backend
from repro.api import run as api_run
from repro.core.config import Adam2Config
from repro.errors import ConfigurationError
from repro.obs.observer import ObserverHub
from repro.workloads import boinc_workload
from repro.workloads.base import AttributeWorkload

__all__ = [
    "Scale",
    "get_scale",
    "attribute_workloads",
    "run_adam2",
    "run_context",
    "active_backend",
    "DEFAULT_ATTRIBUTES",
]

DEFAULT_ATTRIBUTES = ("cpu", "ram")


@dataclass(frozen=True, slots=True)
class Scale:
    """Size parameters for an experiment tier."""

    name: str
    n_nodes: int
    rounds_per_instance: int
    exchange: str
    node_sample: int


_SCALES = {
    "quick": Scale("quick", 400, 20, "sequential", 24),
    "laptop": Scale("laptop", 1500, 30, "sequential", 48),
    "paper": Scale("paper", 100_000, 30, "matching", 64),
}


def get_scale(name: str | None = None) -> Scale:
    """Resolve the experiment scale (explicit arg > env var > laptop)."""
    name = name or os.environ.get("REPRO_SCALE", "laptop")
    try:
        return _SCALES[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown scale {name!r}; expected one of {sorted(_SCALES)}"
        ) from None


def attribute_workloads(attributes: tuple[str, ...] = DEFAULT_ATTRIBUTES) -> list[tuple[str, AttributeWorkload]]:
    """Resolve attribute names into (name, workload) pairs."""
    return [(name, boinc_workload(name)) for name in attributes]


# ----------------------------------------------------------------------
# Backend-agnostic execution (the repro.api facade)
# ----------------------------------------------------------------------

#: process-wide run context set by the CLI: observability hub + backend
_CONTEXT: dict[str, object] = {"hub": None, "backend": None}


def active_backend() -> str:
    """The backend experiments run on (CLI ``--backend`` or ``"fast"``)."""
    return str(_CONTEXT["backend"] or "fast")


@contextmanager
def run_context(hub: ObserverHub | None = None, backend: str | None = None) -> Iterator[None]:
    """Attach an observability hub and/or backend to all nested runs.

    The CLI wraps each experiment in this so ``--trace``, ``--metrics-out``
    and ``--backend`` apply to every :func:`run_adam2` call the experiment
    makes, without threading parameters through every runner signature.
    """
    if backend is not None:
        get_backend(backend)  # unknown names fail before any work runs
    previous = dict(_CONTEXT)
    _CONTEXT["hub"] = hub if hub is not None else previous["hub"]
    _CONTEXT["backend"] = backend if backend is not None else previous["backend"]
    try:
        yield
    finally:
        _CONTEXT.update(previous)


def run_adam2(
    config: Adam2Config,
    workload: AttributeWorkload,
    *,
    n_nodes: int,
    instances: int = 1,
    rounds: int | None = None,
    seed: int = 0,
    scale: Scale | None = None,
    backend: str | None = None,
    **options: object,
) -> RunResult:
    """Run Adam2 through the :func:`repro.api.run` facade.

    Experiments call this instead of constructing a simulator directly,
    so the CLI can reroute them to another backend or attach observers.
    ``scale`` injects the tier's ``exchange``/``node_sample`` defaults —
    but only when the selected backend supports those options, so
    fast-specific knobs never leak into the round/async engines.
    Backend-specific options the target backend does not support still
    fail loudly (a runner pinning ``backend="fast"`` documents that it
    needs fast-only features).
    """
    name = backend or active_backend()
    engine = get_backend(name)
    if scale is not None:
        for key, value in (("exchange", scale.exchange), ("node_sample", scale.node_sample)):
            if key in engine.supported_options:
                options.setdefault(key, value)
    return api_run(
        config,
        workload,
        backend=name,
        n_nodes=n_nodes,
        instances=instances,
        rounds=rounds,
        seed=seed,
        hub=_CONTEXT["hub"],  # type: ignore[arg-type]
        **options,
    )
