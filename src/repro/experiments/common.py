"""Shared experiment scaffolding: scales, attributes, defaults.

The paper's evaluations use 100,000 nodes.  Running every figure at that
size is possible with the ``matching`` kernel but takes hours in pure
Python, so experiments default to a laptop scale that preserves every
qualitative result (the protocol's accuracy is size-independent — that is
Fig. 11's point).  Set ``REPRO_SCALE=paper`` to run full-size, or
``REPRO_SCALE=quick`` for CI-speed smoke runs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.workloads import boinc_workload
from repro.workloads.base import AttributeWorkload

__all__ = ["Scale", "get_scale", "attribute_workloads", "DEFAULT_ATTRIBUTES"]

DEFAULT_ATTRIBUTES = ("cpu", "ram")


@dataclass(frozen=True, slots=True)
class Scale:
    """Size parameters for an experiment tier."""

    name: str
    n_nodes: int
    rounds_per_instance: int
    exchange: str
    node_sample: int


_SCALES = {
    "quick": Scale("quick", 400, 20, "sequential", 24),
    "laptop": Scale("laptop", 1500, 30, "sequential", 48),
    "paper": Scale("paper", 100_000, 30, "matching", 64),
}


def get_scale(name: str | None = None) -> Scale:
    """Resolve the experiment scale (explicit arg > env var > laptop)."""
    name = name or os.environ.get("REPRO_SCALE", "laptop")
    try:
        return _SCALES[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown scale {name!r}; expected one of {sorted(_SCALES)}"
        ) from None


def attribute_workloads(attributes: tuple[str, ...] = DEFAULT_ATTRIBUTES) -> list[tuple[str, AttributeWorkload]]:
    """Resolve attribute names into (name, workload) pairs."""
    return [(name, boinc_workload(name)) for name in attributes]
