"""Figure 6: per-round accuracy within a single aggregation instance (RAM).

Four curves per system: maximum/average error over the entire CDF domain
and restricted to the interpolation points (bins for EquiDepth).  The
paper's observations, all reproduced here:

* Adam2's error at the interpolation points decays at an almost perfectly
  exponential rate once the instance has reached all nodes, down to
  numerical noise, while the entire-domain error floors at the
  interpolation error (a few percent for the first instance).
* EquiDepth's error at its selected bins does **not** improve with more
  rounds — the synopsis resolution, not the gossip, is the bottleneck.
"""

from __future__ import annotations

from repro.analysis.results import ExperimentResult
from repro.core.config import Adam2Config
from repro.experiments.common import get_scale, run_adam2
from repro.fastsim.equidepth import EquiDepthSimulation
from repro.workloads import boinc_workload

__all__ = ["run"]


def run(
    n_nodes: int | None = None,
    points: int = 50,
    rounds: int = 80,
    seed: int = 42,
    attribute: str = "ram",
    track_every: int = 5,
) -> ExperimentResult:
    """Reproduce Fig. 6(a)+(b): per-round error curves, Adam2 vs EquiDepth."""
    scale = get_scale()
    n = n_nodes or scale.n_nodes
    workload = boinc_workload(attribute)
    result = ExperimentResult(
        name="fig06_single_instance",
        description="Per-round approximation error in one instance/phase (Adam2 vs EquiDepth)",
        params={"n_nodes": n, "points": points, "rounds": rounds, "seed": seed, "attribute": attribute},
    )

    config = Adam2Config(points=points, rounds_per_instance=rounds)
    # Pinned to the fast backend: per-round error tracking is fast-only.
    trace = run_adam2(
        config, workload, n_nodes=n, seed=seed, scale=scale, backend="fast",
        track=True, track_every=track_every,
    ).final.trace
    for i, round_ in enumerate(trace.rounds):
        result.add_row(
            system="adam2",
            round=round_,
            max_entire=trace.max_entire[i],
            avg_entire=trace.avg_entire[i],
            max_points=trace.max_points[i],
            avg_points=trace.avg_points[i],
        )

    # Two EquiDepth reconstructions bracket the under-specified baseline:
    # the mass-conserving histogram merge (our best-faith variant) and the
    # sample-duplication "rank" variant, which reproduces the paper's
    # Fig. 6b observation that the error at the selected bins does not
    # improve with more rounds.
    for label, mode in (("equidepth", "histogram"), ("equidepth_rank", "rank")):
        equidepth = EquiDepthSimulation(
            workload, n, synopsis_size=points, seed=seed, mode=mode, node_sample=scale.node_sample
        )
        phase = equidepth.run_phase(rounds=rounds, track=True, track_every=track_every)
        for i, round_ in enumerate(phase.trace.rounds):
            result.add_row(
                system=label,
                round=round_,
                max_entire=phase.trace.max_entire[i],
                avg_entire=phase.trace.avg_entire[i],
                max_points=phase.trace.max_points[i],
                avg_points=phase.trace.avg_points[i],
            )
    return result
