"""Figure 7: HCut vs MinMax vs LCut over multiple instances.

For the stepped RAM attribute MinMax clearly wins the maximum-error
metric (it hunts steps); LCut wins the average-error metric (it spreads
points by arc length); HCut is dominated on step CDFs because quantile
placement collapses onto steps.  On the smooth CPU attribute all three
perform comparably (and well).
"""

from __future__ import annotations

from repro.analysis.results import ExperimentResult
from repro.core.config import Adam2Config
from repro.experiments.common import attribute_workloads, get_scale, run_adam2

__all__ = ["run", "HEURISTICS"]

HEURISTICS = ("hcut", "minmax", "lcut")


def run(
    n_nodes: int | None = None,
    points: int = 50,
    instances: int = 5,
    seed: int = 42,
    attributes=("cpu", "ram"),
    heuristics=HEURISTICS,
) -> ExperimentResult:
    """Reproduce Fig. 7: Err_m/Err_a per instance for each heuristic."""
    scale = get_scale()
    n = n_nodes or scale.n_nodes
    result = ExperimentResult(
        name="fig07_multi_instance",
        description="Refinement heuristics compared over consecutive instances",
        params={"n_nodes": n, "points": points, "instances": instances, "seed": seed},
    )
    for attr, workload in attribute_workloads(tuple(attributes)):
        for heuristic in heuristics:
            config = Adam2Config(
                points=points,
                rounds_per_instance=scale.rounds_per_instance,
                selection=heuristic,
            )
            run_result = run_adam2(
                config, workload, n_nodes=n, instances=instances, seed=seed, scale=scale
            )
            for instance in run_result.instances:
                result.add_row(
                    attribute=attr,
                    heuristic=heuristic,
                    instance=instance.index + 1,
                    err_max=instance.errors_entire.maximum,
                    err_avg=instance.errors_entire.average,
                )
    return result
