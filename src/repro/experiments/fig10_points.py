"""Figure 10: accuracy vs number of interpolation points (10–100).

After 4 instances/phases: more interpolation points bring better accuracy
(with random wiggle from the algorithms' stochastic components); Adam2
with MinMax beats EquiDepth on ``Err_m`` and with LCut on ``Err_a`` across
the sweep.  At 50 points the paper calls the accuracy acceptable for most
applications; 10 extra points cost only ~160 extra bytes per message.
"""

from __future__ import annotations

from repro.analysis.results import ExperimentResult
from repro.core.config import Adam2Config
from repro.experiments.common import attribute_workloads, get_scale, run_adam2
from repro.fastsim.equidepth import EquiDepthSimulation

__all__ = ["run", "DEFAULT_POINT_COUNTS"]

DEFAULT_POINT_COUNTS = (10, 25, 50, 75, 100)


def run(
    n_nodes: int | None = None,
    point_counts=DEFAULT_POINT_COUNTS,
    instances: int = 4,
    seed: int = 42,
    attributes=("cpu", "ram"),
) -> ExperimentResult:
    """Reproduce Fig. 10: Err_m (MinMax) and Err_a (LCut) vs λ, with EquiDepth."""
    scale = get_scale()
    n = n_nodes or scale.n_nodes
    result = ExperimentResult(
        name="fig10_points",
        description="Errors after 4 instances/phases vs interpolation point count",
        params={"n_nodes": n, "instances": instances, "seed": seed},
    )
    for attr, workload in attribute_workloads(tuple(attributes)):
        for points in point_counts:
            for heuristic in ("minmax", "lcut"):
                config = Adam2Config(
                    points=points, rounds_per_instance=scale.rounds_per_instance, selection=heuristic
                )
                final = run_adam2(
                    config, workload, n_nodes=n, instances=instances, seed=seed, scale=scale
                ).final
                result.add_row(
                    attribute=attr,
                    system=heuristic,
                    points=points,
                    err_max=final.errors_entire.maximum,
                    err_avg=final.errors_entire.average,
                )
            equidepth = EquiDepthSimulation(
                workload, n, synopsis_size=points, seed=seed, node_sample=scale.node_sample
            )
            phase = equidepth.run_phases(instances, rounds=scale.rounds_per_instance)[-1]
            result.add_row(
                attribute=attr,
                system="equidepth",
                points=points,
                err_max=phase.errors_entire.maximum,
                err_avg=phase.errors_entire.average,
            )
    return result
