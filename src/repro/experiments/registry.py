"""Experiment registry: ids → runners."""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigurationError
from repro.analysis.results import ExperimentResult
from repro.experiments import (
    ablations,
    cost,
    dynamic,
    fig04_distributions,
    fig05_bootstrap,
    fig06_single_instance,
    fig07_multi_instance,
    fig08_equidepth,
    fig09_sampling,
    fig10_points,
    fig11_scalability,
    fig12_churn_single,
    fig13_churn_rates,
    fig14_confidence,
)

__all__ = ["get_experiment", "list_experiments", "run_experiment"]

_REGISTRY: dict[str, Callable[..., ExperimentResult]] = {
    "fig04": fig04_distributions.run,
    "fig05": fig05_bootstrap.run,
    "fig06": fig06_single_instance.run,
    "fig07": fig07_multi_instance.run,
    "fig08": fig08_equidepth.run,
    "fig09": fig09_sampling.run,
    "fig10": fig10_points.run,
    "fig11": fig11_scalability.run,
    "fig12": fig12_churn_single.run,
    "fig13": fig13_churn_rates.run,
    "fig14": fig14_confidence.run,
    "cost": cost.run,
    "dynamic": dynamic.run,
    "ablation_join": ablations.run_join_mode,
    "ablation_lcut": ablations.run_lcut_variant,
    "ablation_kernel": ablations.run_exchange_kernel,
}


def list_experiments() -> list[str]:
    """All registered experiment ids."""
    return sorted(_REGISTRY)


def get_experiment(name: str) -> Callable[..., ExperimentResult]:
    """Resolve an experiment id to its runner."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {name!r}; available: {', '.join(list_experiments())}"
        ) from None


def run_experiment(name: str, **params) -> ExperimentResult:
    """Run an experiment by id."""
    return get_experiment(name)(**params)
