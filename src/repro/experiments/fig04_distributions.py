"""Figure 4: the actual attribute CDFs of the BOINC-like workloads.

The paper plots the true cumulative distributions of the CPU (smooth) and
RAM (stepped) attributes.  This experiment samples the synthetic stand-ins
and reports percentile tables plus a step census (how much probability
mass sits on each of the most popular exact values) — the quantitative
signature of "smooth vs step" that drives every later experiment.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.results import ExperimentResult
from repro.core.cdf import EmpiricalCDF
from repro.experiments.common import attribute_workloads, get_scale
from repro.rngs import make_rng

__all__ = ["run"]

_PERCENTILES = (1, 5, 10, 25, 50, 75, 90, 95, 99)


def run(n_samples: int | None = None, seed: int = 42, attributes=("cpu", "ram", "bandwidth", "disk")) -> ExperimentResult:
    """Sample each attribute workload and tabulate its distribution."""
    scale = get_scale()
    n = n_samples or max(scale.n_nodes * 10, 20_000)
    rng = make_rng(seed)
    result = ExperimentResult(
        name="fig04_distributions",
        description="True attribute CDFs (percentiles and top step masses)",
        params={"n_samples": n, "seed": seed},
    )
    for name, workload in attribute_workloads(tuple(attributes)):
        values = workload.sample(n, rng)
        cdf = EmpiricalCDF(values)
        unique, counts = np.unique(values, return_counts=True)
        top = np.argsort(counts)[::-1][:5]
        top_mass = counts[top].sum() / n
        row = {
            "attribute": name,
            "min": cdf.minimum,
            "max": cdf.maximum,
            "distinct_values": int(unique.size),
            "top5_step_mass": float(top_mass),
        }
        for p in _PERCENTILES:
            row[f"p{p}"] = float(cdf.quantile(p / 100.0)[0])
        result.add_row(**row)
    return result
