"""Figure 5: MinMax accuracy with uniform vs neighbour-based bootstrap.

The paper runs MinMax for 10 consecutive instances, bootstrapping the
first instance's thresholds either uniformly over the attribute range or
from a random subset of the initiator's neighbours' attribute values.
The neighbour-based bootstrap converges much faster, especially on the
stepped RAM attribute where landing thresholds on actual attribute values
is crucial.
"""

from __future__ import annotations

from repro.analysis.results import ExperimentResult
from repro.core.config import Adam2Config
from repro.experiments.common import attribute_workloads, get_scale, run_adam2

__all__ = ["run"]


def run(
    n_nodes: int | None = None,
    points: int = 50,
    instances: int = 10,
    seed: int = 42,
    attributes=("cpu", "ram"),
) -> ExperimentResult:
    """Reproduce Fig. 5: Err_m per instance for both bootstrap modes."""
    scale = get_scale()
    n = n_nodes or scale.n_nodes
    result = ExperimentResult(
        name="fig05_bootstrap",
        description="MinMax maximum error over instances, uniform vs neighbour bootstrap",
        params={"n_nodes": n, "points": points, "instances": instances, "seed": seed},
    )
    for attr, workload in attribute_workloads(tuple(attributes)):
        for bootstrap in ("uniform", "neighbour"):
            config = Adam2Config(
                points=points,
                rounds_per_instance=scale.rounds_per_instance,
                selection="minmax",
                bootstrap=bootstrap,
            )
            run_result = run_adam2(
                config, workload, n_nodes=n, instances=instances, seed=seed, scale=scale
            )
            for instance in run_result.instances:
                result.add_row(
                    attribute=attr,
                    bootstrap=bootstrap,
                    instance=instance.index + 1,
                    err_max=instance.errors_entire.maximum,
                    err_avg=instance.errors_entire.average,
                )
    return result
