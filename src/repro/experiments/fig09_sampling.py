"""Figure 9: random-sampling approximation error vs sample count.

The empirical CDF of ``s`` uniform samples converges as ``O(1/sqrt(s))``
(DKW); matching Adam2's accuracy in a 100,000-node system needs 10³–10⁴
samples, i.e. thousands of network messages per node versus Adam2's ~150
(§VII-I).  Errors are also somewhat higher for heavily skewed CDFs.
"""

from __future__ import annotations

from repro.analysis.results import ExperimentResult
from repro.baselines.sampling import RandomSamplingEstimator
from repro.experiments.common import attribute_workloads, get_scale
from repro.rngs import make_rng, spawn

__all__ = ["run", "DEFAULT_SAMPLE_COUNTS"]

DEFAULT_SAMPLE_COUNTS = (1, 10, 100, 1_000, 10_000, 100_000)


def run(
    population: int | None = None,
    sample_counts=DEFAULT_SAMPLE_COUNTS,
    repeats: int = 3,
    seed: int = 42,
    attributes=("cpu", "ram"),
) -> ExperimentResult:
    """Reproduce Fig. 9: Err_m/Err_a against number of random samples."""
    scale = get_scale()
    n = population or max(scale.n_nodes * 10, 20_000)
    rng = make_rng(seed)
    result = ExperimentResult(
        name="fig09_sampling",
        description="Random-sampling estimation error vs sample count",
        params={"population": n, "repeats": repeats, "seed": seed},
    )
    for attr, workload in attribute_workloads(tuple(attributes)):
        values = workload.sample(n, spawn(rng))
        estimator = RandomSamplingEstimator(values)
        counts = [c for c in sample_counts if c <= n * 10]
        for sampling in estimator.sweep(counts, spawn(rng), repeats=repeats):
            result.add_row(
                attribute=attr,
                samples=sampling.samples,
                err_max=sampling.errors.maximum,
                err_avg=sampling.errors.average,
                messages=sampling.messages,
            )
    return result
