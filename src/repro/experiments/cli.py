"""Command-line entry point: ``adam2-experiments <id> [options]``.

Examples::

    adam2-experiments --list
    adam2-experiments fig07
    adam2-experiments fig07 --nodes 3000 --seed 7
    REPRO_SCALE=quick adam2-experiments all
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.analysis.report import format_table
from repro.experiments.registry import get_experiment, list_experiments

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="adam2-experiments",
        description="Reproduce the Adam2 paper's figures and tables.",
    )
    parser.add_argument("experiment", nargs="?", help="experiment id (e.g. fig07) or 'all'")
    parser.add_argument("--list", action="store_true", help="list available experiments")
    parser.add_argument("--nodes", type=int, default=None, help="override system size")
    parser.add_argument("--points", type=int, default=None, help="override interpolation point count")
    parser.add_argument("--seed", type=int, default=None, help="experiment seed")
    return parser


def _run_one(name: str, args: argparse.Namespace) -> None:
    runner = get_experiment(name)
    params = {}
    if args.seed is not None:
        params["seed"] = args.seed
    if args.points is not None:
        params["points"] = args.points
    if args.nodes is not None:
        # Experiments use either n_nodes or population for their size knob.
        import inspect

        signature = inspect.signature(runner)
        if "n_nodes" in signature.parameters:
            params["n_nodes"] = args.nodes
        elif "population" in signature.parameters:
            params["population"] = args.nodes
    started = time.time()
    result = runner(**params)
    print(format_table(result))
    print(f"[{name} finished in {time.time() - started:.1f}s]\n")


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.list or not args.experiment:
        print("available experiments:")
        for name in list_experiments():
            print(f"  {name}")
        return 0
    if args.experiment == "all":
        for name in list_experiments():
            _run_one(name, args)
        return 0
    _run_one(args.experiment, args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
