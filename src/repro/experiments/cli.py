"""Command-line entry point: ``adam2-experiments <id> [options]``.

Examples::

    adam2-experiments --list
    adam2-experiments fig07
    adam2-experiments fig07 --nodes 3000 --seed 7
    adam2-experiments fig07 --backend round --trace fig07.jsonl
    adam2-experiments fig05 --metrics-out fig05_metrics.json
    adam2-experiments --profile --profile-sizes 1000,10000
    REPRO_SCALE=quick adam2-experiments all
    adam2-experiments serve --nodes 2000 --port 9309 --refresh 5
    adam2-experiments query-bench --queries 20000 --out BENCH_service.json
"""

from __future__ import annotations

import argparse
import inspect
import json
import sys
import time

from repro.analysis.report import format_table
from repro.errors import ConfigurationError
from repro.experiments.registry import get_experiment, list_experiments

__all__ = ["main"]

#: Experiment size knobs recognised for the ``--nodes`` override.
_SIZE_PARAMS = ("n_nodes", "population")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="adam2-experiments",
        description="Reproduce the Adam2 paper's figures and tables.",
    )
    parser.add_argument("experiment", nargs="?", help="experiment id (e.g. fig07) or 'all'")
    parser.add_argument("--list", action="store_true", help="list available experiments")
    parser.add_argument("--nodes", type=int, default=None, help="override system size")
    parser.add_argument("--points", type=int, default=None, help="override interpolation point count")
    parser.add_argument("--seed", type=int, default=None, help="experiment seed")
    parser.add_argument(
        "--backend",
        choices=("fast", "round", "async", "net"),
        default=None,
        help="simulation backend for backend-agnostic experiments "
        "(experiments that need fast-only features keep the fast backend; "
        "'net' runs a real-socket localhost cluster — small sizes only)",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="append a JSONL event trace (runs, instances, per-round probes) to PATH",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write the aggregated metrics/span snapshot as JSON to PATH",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="benchmark all backends and write a machine-readable report "
        "instead of running experiments",
    )
    parser.add_argument(
        "--profile-out",
        metavar="PATH",
        default="BENCH_backends.json",
        help="output path for --profile (default: %(default)s)",
    )
    parser.add_argument(
        "--profile-sizes",
        metavar="N,N,...",
        default=None,
        help="comma-separated system sizes for --profile (default: 1000,10000)",
    )
    parser.add_argument(
        "--profile-net-sizes",
        metavar="N,N,...",
        default=None,
        help="comma-separated cluster sizes for the net backend under "
        "--profile (default: 32,64; the net backend binds one real UDP "
        "socket per node and is skipped where the sandbox forbids that)",
    )
    parser.add_argument(
        "--profile-scaling-sizes",
        metavar="N,N,...",
        default=None,
        help="also run the fastsim N-scaling sweep (naive vs batched vs "
        "sharded) at these sizes and attach it to the --profile report "
        "(e.g. 1000,10000,100000,1000000; omitted: no sweep)",
    )
    parser.add_argument(
        "--profile-shards",
        metavar="S",
        type=int,
        default=8,
        help="worker process count for the sharded mode of the scaling "
        "sweep (default: %(default)s)",
    )
    return parser


def _override_params(name: str, args: argparse.Namespace) -> dict[str, int]:
    """Map CLI overrides onto the runner's signature, or fail loudly.

    A silently dropped ``--nodes`` is worse than an error: the user reads
    results for a system size they did not ask for.
    """
    runner = get_experiment(name)
    signature = inspect.signature(runner)
    params: dict[str, int] = {}
    if args.seed is not None:
        if "seed" not in signature.parameters:
            raise ConfigurationError(f"experiment {name!r} does not accept --seed")
        params["seed"] = args.seed
    if args.points is not None:
        if "points" not in signature.parameters:
            raise ConfigurationError(f"experiment {name!r} does not accept --points")
        params["points"] = args.points
    if args.nodes is not None:
        for knob in _SIZE_PARAMS:
            if knob in signature.parameters:
                params[knob] = args.nodes
                break
        else:
            raise ConfigurationError(
                f"experiment {name!r} has no system-size parameter; --nodes does not apply"
            )
    return params


def _run_one(name: str, args: argparse.Namespace) -> None:
    runner = get_experiment(name)
    params = _override_params(name, args)
    started = time.time()
    result = runner(**params)
    print(format_table(result))
    print(f"[{name} finished in {time.time() - started:.1f}s]\n")


def _run_profile(args: argparse.Namespace) -> int:
    from repro.core.config import Adam2Config
    from repro.obs import profile_backends, profile_scaling, write_benchmark
    from repro.workloads import boinc_workload

    sizes = _parse_sizes(args.profile_sizes, "--profile-sizes", (1_000, 10_000))
    net_sizes = _parse_sizes(args.profile_net_sizes, "--profile-net-sizes", (32, 64))
    points = args.points if args.points is not None else 20
    seed = args.seed if args.seed is not None else 0
    workload = boinc_workload("ram")
    config = Adam2Config(points=points, rounds_per_instance=30)
    document = profile_backends(
        workload, config, sizes=sizes, net_sizes=net_sizes, seed=seed
    )
    if args.profile_scaling_sizes is not None:
        scaling_sizes = _parse_sizes(
            args.profile_scaling_sizes, "--profile-scaling-sizes", ()
        )
        document["scaling"] = profile_scaling(
            workload, config,
            sizes=scaling_sizes, shards=args.profile_shards, seed=seed,
        )
    write_benchmark(document, args.profile_out)
    print(f"wrote {args.profile_out} ({len(document['entries'])} entries)")
    scaling = document.get("scaling")
    if isinstance(scaling, dict):
        print(f"scaling sweep: {len(scaling['entries'])} entries")
        for skip in scaling["skipped"]:
            print(
                f"scaling: skipped {skip['mode']} at n={skip['n_nodes']}: {skip['reason']}",
                file=sys.stderr,
            )
    for skip in document["skipped"]:
        print(
            f"skipped {skip['backend']} at n={skip['n_nodes']}: {skip['reason']}",
            file=sys.stderr,
        )
    return 0


def _parse_sizes(raw: str | None, flag: str, default: tuple[int, ...]) -> tuple[int, ...]:
    if raw is None:
        return default
    try:
        sizes = tuple(int(part) for part in raw.split(","))
    except ValueError:
        raise ConfigurationError(
            f"{flag} must be comma-separated integers, got {raw!r}"
        ) from None
    if not sizes or any(size < 2 for size in sizes):
        raise ConfigurationError(f"{flag} needs sizes >= 2")
    return sizes


def _run_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.common import run_context
    from repro.obs import JsonlSink, ObserverHub, RunObserver

    observers: list[RunObserver] = []
    if args.trace is not None:
        observers.append(JsonlSink(args.trace))
    if args.metrics_out is not None and not observers:
        # Probes only fire with at least one observer attached; a silent
        # base observer turns them on so the metrics registry fills up.
        observers.append(RunObserver())
    hub = None
    if observers or args.metrics_out is not None:
        hub = ObserverHub(observers, instrument=args.metrics_out is not None)

    names = list_experiments() if args.experiment == "all" else [args.experiment]
    # Validate every override up front so 'all' fails before hours of work.
    for name in names:
        _override_params(name, args)
    try:
        with run_context(hub=hub, backend=args.backend):
            for name in names:
                _run_one(name, args)
    finally:
        if hub is not None:
            if args.metrics_out is not None:
                with open(args.metrics_out, "w", encoding="utf-8") as handle:
                    json.dump(hub.snapshot(), handle, indent=2, sort_keys=True)
                    handle.write("\n")
            hub.close()
    return 0


def _build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="adam2-experiments serve",
        description="Run the continuous estimation service with a TCP "
        "query endpoint (JSON lines; see repro.net.service_endpoint).",
    )
    parser.add_argument("--backend", choices=("fast", "round", "async", "net"), default="fast")
    parser.add_argument("--nodes", type=int, default=1000, help="population size")
    parser.add_argument("--points", type=int, default=30, help="interpolation points")
    parser.add_argument("--rounds", type=int, default=30, help="rounds per instance")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=9309, help="0 picks an ephemeral port")
    parser.add_argument("--refresh", type=float, default=5.0, metavar="SECONDS",
                        help="pause between scheduler cycles")
    parser.add_argument("--cycles", type=int, default=None,
                        help="stop after this many refresh cycles (default: serve forever)")
    parser.add_argument("--workers", type=int, default=1,
                        help="serving workers; >1 serves from an SO_REUSEPORT "
                        "worker-process pool fed by store snapshots "
                        "(threaded fallback where the kernel lacks support)")
    parser.add_argument("--store-dir", metavar="DIR", default=None,
                        help="durable snapshot-log directory; a restarted "
                        "service recovers its history from here and serves "
                        "the last published estimate instantly")
    parser.add_argument("--fsync", choices=("always", "rotate", "never"),
                        default="rotate",
                        help="snapshot-log durability policy (with --store-dir)")
    parser.add_argument("--http-port", type=int, default=None, metavar="PORT",
                        help="also expose the read-only HTTP status surface "
                        "(/status /estimate /history /metrics) on this port "
                        "(0 picks an ephemeral port)")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="append a JSONL query/run event trace to PATH")
    return parser


def _run_serve(argv: list[str]) -> int:
    from repro.api import serve
    from repro.core.config import Adam2Config
    from repro.net.service_endpoint import serve_blocking
    from repro.obs import JsonlSink, ObserverHub, RunObserver
    from repro.workloads import boinc_workload

    args = _build_serve_parser().parse_args(argv)
    observers: list[RunObserver] = [JsonlSink(args.trace)] if args.trace else []
    hub = ObserverHub(observers)
    handle = serve(
        Adam2Config(points=args.points, rounds_per_instance=args.rounds),
        boinc_workload("ram"),
        backend=args.backend,
        n_nodes=args.nodes,
        seed=args.seed,
        hub=hub,
        store_dir=args.store_dir,
        fsync=args.fsync,
    )
    try:
        serve_blocking(
            handle,
            host=args.host,
            port=args.port,
            refresh_every=args.refresh,
            max_cycles=args.cycles,
            workers=args.workers,
            http_port=args.http_port,
        )
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        hub.close()
    return 0


def _build_query_bench_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="adam2-experiments query-bench",
        description="Benchmark the service query layer (in-process cache "
        "on/off, plus the TCP endpoint at several client counts) and "
        "write a machine-readable report.",
    )
    parser.add_argument("--backend", choices=("fast", "round", "async", "net"), default="fast")
    parser.add_argument("--nodes", type=int, default=2000)
    parser.add_argument("--points", type=int, default=30)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--queries", type=int, default=20_000,
                        help="in-process mixed queries per mode")
    parser.add_argument("--clients", metavar="N,N,...", default="1,4,16",
                        help="TCP client concurrencies")
    parser.add_argument("--worker-counts", metavar="N,N,...", default="1,2,4",
                        help="pool sizes for the qps-vs-workers curve")
    parser.add_argument("--pool-workers", type=int, default=4,
                        help="pool size for the qps-vs-clients curve")
    parser.add_argument("--batch", type=int, default=32,
                        help="ops per batched request on the pool path")
    parser.add_argument("--no-tcp", action="store_true",
                        help="skip the TCP endpoint measurements")
    parser.add_argument("--out", metavar="PATH", default="BENCH_service.json")
    return parser


def _run_query_bench(argv: list[str]) -> int:
    from repro.core.config import Adam2Config
    from repro.obs import write_benchmark
    from repro.service import profile_service
    from repro.workloads import boinc_workload

    args = _build_query_bench_parser().parse_args(argv)

    def counts(raw: str, flag: str) -> tuple[int, ...]:
        try:
            parsed = tuple(int(part) for part in raw.split(","))
        except ValueError:
            raise ConfigurationError(
                f"{flag} must be comma-separated integers, got {raw!r}"
            ) from None
        if not parsed or any(count < 1 for count in parsed):
            raise ConfigurationError(f"{flag} needs counts >= 1")
        return parsed

    document = profile_service(
        boinc_workload("ram"),
        Adam2Config(points=args.points, rounds_per_instance=30),
        backend=args.backend,
        n_nodes=args.nodes,
        n_queries=args.queries,
        client_counts=counts(args.clients, "--clients"),
        worker_counts=counts(args.worker_counts, "--worker-counts"),
        pool_workers=args.pool_workers,
        batch_size=args.batch,
        tcp=not args.no_tcp,
        seed=args.seed,
    )
    write_benchmark(document, args.out)
    entries = document["entries"]
    assert isinstance(entries, list)
    print(f"wrote {args.out} ({len(entries)} entries)")
    for entry in entries:
        print(f"  {entry['mode']}/{entry['label']}: "
              f"{entry['qps']:.0f} qps, p99 {entry['p99_latency_s'] * 1e6:.0f} us")
    skipped = document["skipped"]
    assert isinstance(skipped, list)
    for skip in skipped:
        print(f"skipped tcp at clients={skip['clients']}: {skip['reason']}",
              file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    try:
        # Service subcommands keep their own parsers; the flat
        # experiment interface below is untouched.
        if argv and argv[0] == "serve":
            return _run_serve(argv[1:])
        if argv and argv[0] == "query-bench":
            return _run_query_bench(argv[1:])
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        if args.profile:
            return _run_profile(args)
        if args.list or not args.experiment:
            print("available experiments:")
            for name in list_experiments():
                print(f"  {name}")
            return 0
        return _run_experiments(args)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
