"""Figure 13: accuracy after 8 instances as a function of churn rate.

Both Adam2 and EquiDepth are highly churn-resilient: accuracy degrades
significantly only around 1 % of nodes replaced per round — ten times the
churn observed in deployed P2P systems.  Joining nodes are included in
the metrics here: they are bootstrapped with estimates generated in
previous instances by their neighbours (§VII-G).
"""

from __future__ import annotations

from repro.analysis.results import ExperimentResult
from repro.core.config import Adam2Config
from repro.experiments.common import attribute_workloads, get_scale, run_adam2
from repro.fastsim.equidepth import EquiDepthSimulation

__all__ = ["run", "DEFAULT_CHURN_RATES"]

DEFAULT_CHURN_RATES = (0.0, 0.001, 0.003, 0.01, 0.03, 0.1)


def run(
    n_nodes: int | None = None,
    points: int = 50,
    instances: int = 8,
    churn_rates=DEFAULT_CHURN_RATES,
    seed: int = 42,
    attributes=("cpu", "ram"),
) -> ExperimentResult:
    """Reproduce Fig. 13: Err_m (MinMax) / Err_a (LCut) vs churn rate."""
    scale = get_scale()
    n = n_nodes or scale.n_nodes
    result = ExperimentResult(
        name="fig13_churn_rates",
        description="Errors after 8 instances/phases vs churn rate per round",
        params={"n_nodes": n, "points": points, "instances": instances, "seed": seed},
    )
    for attr, workload in attribute_workloads(tuple(attributes)):
        for rate in churn_rates:
            for heuristic in ("minmax", "lcut"):
                config = Adam2Config(
                    points=points, rounds_per_instance=scale.rounds_per_instance, selection=heuristic
                )
                # Pinned to the fast backend: churn_rate + system_errors.
                run_result = run_adam2(
                    config, workload, n_nodes=n, instances=instances, seed=seed,
                    scale=scale, backend="fast", churn_rate=rate, system_errors=True,
                )
                errors = run_result.extras["system_errors"]
                result.add_row(
                    attribute=attr,
                    system=heuristic,
                    churn_rate=rate,
                    err_max=errors.maximum,
                    err_avg=errors.average,
                )
            equidepth = EquiDepthSimulation(
                workload, n, synopsis_size=points, seed=seed,
                churn_rate=rate, node_sample=scale.node_sample,
            )
            phase = equidepth.run_phases(instances, rounds=scale.rounds_per_instance)[-1]
            result.add_row(
                attribute=attr,
                system="equidepth",
                churn_rate=rate,
                err_max=phase.errors_entire.maximum,
                err_avg=phase.errors_entire.average,
            )
    return result
