"""Ablation experiments for the design decisions documented in DESIGN.md.

Three ablations, each isolating one implementation choice:

* **join mode** — the paper's Fig. 1 pseudocode joins a peer to a running
  instance asymmetrically (the joiner merges, the contacted peer ignores
  the empty reply).  That rule is not mass-conserving: the converged
  fractions carry an O(1/sqrt(N)) bias and the size estimate is badly
  wrong.  The mass-conserving symmetric join (our default) converges to
  the exact values, matching the paper's reported 1e-16-level accuracy —
  evidence that the deployed implementation behind the paper was
  effectively symmetric.
* **LCut variant** — the literal one-shot equal-arc-length division
  oscillates on step CDFs (a step's bracket can regress between
  instances); the incremental variant (our default) converges
  monotonically.
* **exchange kernel** — sequential push–pull (PeerSim semantics) versus
  the fully vectorised random-matching kernel: both converge
  exponentially; matching needs more rounds for the same accuracy
  because each node takes part in exactly one exchange per round.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.results import ExperimentResult
from repro.core.config import Adam2Config
from repro.experiments.common import get_scale, run_adam2
from repro.workloads import boinc_workload

__all__ = ["run_join_mode", "run_lcut_variant", "run_exchange_kernel"]


def run_join_mode(
    n_nodes: int | None = None,
    points: int = 20,
    rounds: int = 40,
    seed: int = 42,
    attribute: str = "ram",
) -> ExperimentResult:
    """Symmetric vs literal join: converged error at interpolation points."""
    scale = get_scale()
    n = n_nodes or scale.n_nodes
    workload = boinc_workload(attribute)
    result = ExperimentResult(
        name="ablation_join_mode",
        description="Mass conservation at instance join (symmetric vs Fig. 1 literal)",
        params={"n_nodes": n, "points": points, "rounds": rounds, "seed": seed},
    )
    for mode in ("symmetric", "literal"):
        config = Adam2Config(points=points, rounds_per_instance=rounds, join_mode=mode)
        # Pinned to the fast backend: per-node size estimates via raw result.
        instance = run_adam2(
            config, workload, n_nodes=n, seed=seed, backend="fast",
            exchange=scale.exchange,
        ).final.raw
        result.add_row(
            join_mode=mode,
            points_err_max=instance.errors_points.maximum,
            points_err_avg=instance.errors_points.average,
            size_estimate_median=float(np.median(instance.size_estimates())),
            true_size=n,
        )
    return result


def run_lcut_variant(
    n_nodes: int | None = None,
    points: int = 50,
    instances: int = 6,
    seed: int = 42,
    attribute: str = "ram",
) -> ExperimentResult:
    """Incremental vs literal-global LCut over consecutive instances."""
    scale = get_scale()
    n = n_nodes or scale.n_nodes
    workload = boinc_workload(attribute)
    result = ExperimentResult(
        name="ablation_lcut_variant",
        description="LCut refinement stability (incremental vs one-shot global division)",
        params={"n_nodes": n, "points": points, "instances": instances, "seed": seed},
    )
    for variant in ("lcut", "lcut_global"):
        config = Adam2Config(points=points, rounds_per_instance=scale.rounds_per_instance, selection=variant)
        run_result = run_adam2(
            config, workload, n_nodes=n, instances=instances, seed=seed, scale=scale
        )
        for instance in run_result.instances:
            result.add_row(
                variant=variant,
                instance=instance.index + 1,
                err_max=instance.errors_entire.maximum,
                err_avg=instance.errors_entire.average,
            )
    return result


def run_exchange_kernel(
    n_nodes: int | None = None,
    points: int = 20,
    rounds: int = 60,
    seed: int = 42,
    attribute: str = "ram",
) -> ExperimentResult:
    """Sequential push–pull vs random-matching convergence speed."""
    scale = get_scale()
    n = n_nodes or scale.n_nodes
    workload = boinc_workload(attribute)
    result = ExperimentResult(
        name="ablation_exchange_kernel",
        description="Per-round convergence at interpolation points by exchange kernel",
        params={"n_nodes": n, "points": points, "rounds": rounds, "seed": seed},
    )
    for kernel in ("sequential", "matching"):
        config = Adam2Config(points=points, rounds_per_instance=rounds)
        # Pinned to the fast backend: the kernel choice is the ablation.
        instance = run_adam2(
            config, workload, n_nodes=n, seed=seed, backend="fast",
            exchange=kernel, track=True, track_every=10,
        ).final
        for i, round_ in enumerate(instance.trace.rounds):
            result.add_row(
                kernel=kernel,
                round=round_,
                points_err_max=instance.trace.max_points[i],
            )
    return result
