"""Figure 14: accuracy of the dynamic confidence estimation.

Each node compares its self-assessed error (``EstErr`` from the
verification points) against its true error; the reported metric is the
mean relative difference ``|Err(p) − EstErr(p)| / Err(p)`` over nodes.
With ~20 verification points nodes estimate their *average* error within
~10 % (adding ~40 % traffic); the *maximum* error is intrinsically harder
to estimate (a single-point property) and needs more points for a rough
estimate.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.results import ExperimentResult
from repro.core.config import Adam2Config
from repro.experiments.common import attribute_workloads, get_scale, run_adam2
from repro.metrics.estimation import confidence_estimation_error

__all__ = ["run", "DEFAULT_VERIFICATION_COUNTS"]

DEFAULT_VERIFICATION_COUNTS = (10, 20, 40, 60, 80, 100)


def run(
    n_nodes: int | None = None,
    points: int = 50,
    instances: int = 3,
    verification_counts=DEFAULT_VERIFICATION_COUNTS,
    seed: int = 42,
    attributes=("cpu", "ram"),
) -> ExperimentResult:
    """Reproduce Fig. 14: confidence-estimation error vs |V| for both metrics."""
    scale = get_scale()
    n = n_nodes or scale.n_nodes
    result = ExperimentResult(
        name="fig14_confidence",
        description="Relative error of EstErr_m / EstErr_a vs number of verification points",
        params={"n_nodes": n, "points": points, "instances": instances, "seed": seed},
    )
    for attr, workload in attribute_workloads(tuple(attributes)):
        for v_count in verification_counts:
            for metric, target in (("maximum", "maximum"), ("average", "average")):
                config = Adam2Config(
                    points=points,
                    rounds_per_instance=scale.rounds_per_instance,
                    selection="minmax",
                    verification_points=v_count,
                    verification_target=target,
                )
                # Pinned to the fast backend: per-node confidence sampling.
                final = run_adam2(
                    config, workload, n_nodes=n, instances=instances, seed=seed,
                    scale=scale, backend="fast", confidence_sample=scale.node_sample,
                ).final.raw
                if metric == "maximum":
                    estimation_error = confidence_estimation_error(final.true_errm, final.est_errm)
                else:
                    estimation_error = confidence_estimation_error(final.true_erra, final.est_erra)
                result.add_row(
                    attribute=attr,
                    metric=metric,
                    verification_points=v_count,
                    estimation_error=estimation_error,
                    mean_true_error=float(np.mean(final.true_errm if metric == "maximum" else final.true_erra)),
                    mean_estimated_error=float(np.mean(final.est_errm if metric == "maximum" else final.est_erra)),
                )
    return result
