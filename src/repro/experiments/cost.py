"""Section VII-I: communication cost evaluation.

The paper's accounting at λ=50: ~800-byte messages, 2 sent + 2 received
per round, so one 25-round instance costs ~50 messages / ~40 kB sent per
node, and a converged 3-instance estimate ~150 messages / ~120 kB — all
independent of the system size.  At a 1-second gossip period that is
~1.6 kB/s upstream for ~75 seconds.  Random sampling needs an order of
magnitude more messages for the same accuracy.  This experiment reports
both the analytic model and the byte counts actually measured in
simulation, at two system sizes to demonstrate size independence.
"""

from __future__ import annotations

from repro.analysis.results import ExperimentResult
from repro.baselines.sampling import RandomSamplingEstimator
from repro.core.config import Adam2Config
from repro.experiments.common import get_scale, run_adam2
from repro.metrics.cost import instance_cost
from repro.rngs import make_rng, spawn
from repro.workloads import boinc_workload

__all__ = ["run"]


def run(
    points: int = 50,
    rounds: int = 25,
    instances: int = 3,
    seed: int = 42,
    attribute: str = "ram",
    sizes: tuple[int, ...] = (500, 2_000),
) -> ExperimentResult:
    """Reproduce the §VII-I cost table (model + measured)."""
    scale = get_scale()
    config = Adam2Config(points=points, rounds_per_instance=rounds)
    model = instance_cost(config, instances=instances)
    result = ExperimentResult(
        name="cost",
        description="Per-node communication cost (model vs measured; size-independent)",
        params={"points": points, "rounds": rounds, "instances": instances, "seed": seed},
    )
    result.add_row(
        system="adam2-model",
        nodes="any",
        message_bytes=model.message_bytes,
        messages_per_node=model.total_messages,
        kbytes_per_node=model.total_bytes / 1000.0,
        upstream_kbps=model.bandwidth_bytes_per_second() / 1000.0,
        seconds=model.estimation_time_seconds(),
    )
    workload = boinc_workload(attribute)
    for n in sizes:
        run_result = run_adam2(
            config, workload, n_nodes=n, instances=instances, rounds=rounds,
            seed=seed, scale=scale,
        )
        messages = sum(r.messages for r in run_result.instances)
        payload = sum(r.bytes for r in run_result.instances)
        result.add_row(
            system="adam2-measured",
            nodes=n,
            message_bytes=config.message_bytes(),
            messages_per_node=messages / n,
            kbytes_per_node=payload / n / 1000.0,
            upstream_kbps=(payload / n / (rounds * instances)) / 1000.0,
            seconds=rounds * instances,
            err_max=run_result.final.errors_entire.maximum,
            err_avg=run_result.final.errors_entire.average,
        )
    # Random sampling: messages needed for comparable accuracy.
    rng = make_rng(seed)
    population = workload.sample(20_000, spawn(rng))
    estimator = RandomSamplingEstimator(population)
    for samples in (1_000, 10_000):
        sampling = estimator.estimate(samples, spawn(rng))
        result.add_row(
            system="sampling",
            nodes=len(population),
            message_bytes=64,
            messages_per_node=sampling.messages,
            kbytes_per_node=sampling.bytes_sent / 1000.0,
            err_max=sampling.errors.maximum,
            err_avg=sampling.errors.average,
        )
    return result
