"""Discrete-event queue."""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.errors import SimulationError

__all__ = ["EventQueue"]


class EventQueue:
    """A time-ordered queue of callbacks.

    Ties in time are broken by insertion order (a monotonically increasing
    sequence number), which keeps runs deterministic.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[[], Any]]] = []
        self._sequence = 0
        self.now: float = 0.0

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, at: float, callback: Callable[[], Any]) -> None:
        """Schedule ``callback`` to fire at absolute time ``at``."""
        if at < self.now:
            raise SimulationError(f"cannot schedule into the past ({at} < {self.now})")
        heapq.heappush(self._heap, (at, self._sequence, callback))
        self._sequence += 1

    def schedule_in(self, delay: float, callback: Callable[[], Any]) -> None:
        """Schedule ``callback`` ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.schedule(self.now + delay, callback)

    def pop(self) -> Callable[[], Any]:
        """Remove and return the next callback, advancing the clock."""
        if not self._heap:
            raise SimulationError("event queue is empty")
        at, _, callback = heapq.heappop(self._heap)
        self.now = at
        return callback

    def run_until(self, deadline: float, max_events: int | None = None) -> int:
        """Fire events until the clock passes ``deadline``; returns count."""
        fired = 0
        while self._heap and self._heap[0][0] <= deadline:
            if max_events is not None and fired >= max_events:
                raise SimulationError(f"exceeded {max_events} events before {deadline}")
            callback = self.pop()
            callback()
            fired += 1
        self.now = max(self.now, deadline)
        return fired
