"""Adam2 on the asynchronous engine.

The adapter reuses :class:`repro.core.node.Adam2Node` state and merge
semantics, but the exchange is genuinely asynchronous: the request carries
a snapshot of the sender's instance states; the responder replies with its
own *pre-merge* snapshots and then merges the received ones; the initiator
merges the response whenever it arrives.  When both states are unchanged
in flight this is exactly the symmetric (mass-conserving) exchange; under
concurrency small conservation violations occur and average out — the
realistic behaviour the round-based model idealises away.

Instance TTLs count the node's *own* timer fires, so an instance lasts
``rounds_per_instance`` local gossip periods, matching the paper's
round-based TTL in expectation.
"""

from __future__ import annotations

from typing import Any, Hashable

import numpy as np

from repro.rngs import spawn
from repro.core.cdf import EstimatedCDF
from repro.core.config import Adam2Config
from repro.core.instance import InstanceState
from repro.core.node import Adam2Node
from repro.asyncsim.engine import AsyncEngine, AsyncProtocol
from repro.simulation.node_base import SimNode

__all__ = ["AsyncAdam2"]


class AsyncAdam2(AsyncProtocol):
    """Adam2 as an asynchronous gossip protocol.

    Args:
        config: protocol parameters shared by all nodes.
        scheduler: ``"manual"`` (instances via :meth:`trigger_instance`)
            or ``"probabilistic"`` (the paper's self-selection).
        neighbour_sample: attribute values collected for the
            neighbour-based bootstrap.
    """

    name = "adam2-async"

    def __init__(self, config: Adam2Config, scheduler: str = "manual", neighbour_sample: int | None = None):
        self.config = config
        self.scheduler = scheduler
        self.neighbour_sample = neighbour_sample or max(config.points, 20)

    # ------------------------------------------------------------------
    # AsyncProtocol interface
    # ------------------------------------------------------------------

    def on_node_added(self, node: SimNode, engine: AsyncEngine) -> None:
        node.state[self.name] = Adam2Node(node.node_id, node.values, self.config, spawn(node.rng))

    def on_timer(self, node: SimNode, engine: AsyncEngine) -> Any | None:
        adam2: Adam2Node = node.state[self.name]
        adam2.end_of_round()
        if self.scheduler == "probabilistic" and adam2.should_start_instance():
            self._start_at(node, engine)
        if not adam2.instances:
            return None
        return self._snapshots(adam2)

    def on_request(self, node: SimNode, payload: Any, engine: AsyncEngine) -> Any | None:
        adam2: Adam2Node = node.state[self.name]
        response: dict = {}
        for iid, remote in payload.items():
            local = adam2.instances.get(iid)
            if local is None:
                if remote.ttl <= 1 or iid in adam2.finished_ids:
                    continue  # nearly expired or already terminated here
                local = adam2.join_instance(remote)
            # Snapshot after joining but before merging: the initiator
            # merging this response completes a mass-conserving symmetric
            # exchange (see DESIGN.md on the literal Fig. 1 join rule).
            response[iid] = local.snapshot()
            local.merge_from(remote)
        # Also piggyback instances the sender has not seen yet, so
        # instances spread on responses as well as requests.
        for iid, state in adam2.instances.items():
            if iid not in response and iid not in payload:
                response[iid] = state.snapshot()
        return response or None

    def on_response(self, node: SimNode, payload: Any, engine: AsyncEngine) -> None:
        adam2: Adam2Node = node.state[self.name]
        self._merge_payload(adam2, payload)

    def payload_bytes(self, payload: Any) -> int:
        return max(len(payload), 1) * self.config.message_bytes()

    # ------------------------------------------------------------------
    # Instance management
    # ------------------------------------------------------------------

    def trigger_instance(self, engine: AsyncEngine, node: SimNode | None = None) -> Hashable:
        if node is None:
            ids = list(engine.nodes)
            node = engine.nodes[ids[int(engine.rng.integers(0, len(ids)))]]
        return self._start_at(node, engine)

    def _start_at(self, node: SimNode, engine: AsyncEngine) -> Hashable:
        adam2: Adam2Node = node.state[self.name]
        neighbour_ids = [i for i in engine.overlay.neighbours(node.node_id) if i in engine.nodes]
        if neighbour_ids:
            if len(neighbour_ids) > self.neighbour_sample:
                picks = node.rng.choice(len(neighbour_ids), size=self.neighbour_sample, replace=False)
                neighbour_ids = [neighbour_ids[int(i)] for i in picks]
            neighbour_values = np.concatenate([engine.nodes[i].values for i in neighbour_ids])
        else:
            neighbour_values = node.values
        return adam2.start_instance(neighbour_values=neighbour_values)

    # ------------------------------------------------------------------
    # Payload handling
    # ------------------------------------------------------------------

    @staticmethod
    def _snapshots(adam2: Adam2Node) -> dict:
        return {iid: state.snapshot() for iid, state in adam2.instances.items()}

    @staticmethod
    def _merge_payload(adam2: Adam2Node, payload: dict) -> None:
        for iid, remote in payload.items():
            local = adam2.instances.get(iid)
            if local is None:
                if remote.ttl <= 1 or iid in adam2.finished_ids:
                    continue  # nearly expired or already terminated here
                local = adam2.join_instance(remote)
            local.merge_from(remote)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def estimates(self, engine: AsyncEngine) -> list[EstimatedCDF]:
        out = []
        for node in engine.nodes.values():
            estimate = node.state[self.name].current_estimate
            if estimate is not None:
                out.append(estimate)
        return out

    def adam2_nodes(self, engine: AsyncEngine) -> list[Adam2Node]:
        return [node.state[self.name] for node in engine.nodes.values()]
