"""The asynchronous gossip engine.

Every node owns a timer firing every ``gossip_period`` seconds (with
multiplicative jitter, so nodes drift apart as real clocks do).  On a
timer fire the node's protocol builds a request payload for one overlay
neighbour; the request is delivered after a sampled network latency, the
response after another.  There are no global rounds — only local clocks
and in-flight messages.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.obs.observer import NULL_HUB, ObserverHub
from repro.rngs import spawn
from repro.asyncsim.events import EventQueue
from repro.overlay.base import Overlay
from repro.simulation.node_base import SimNode

__all__ = ["AsyncEngine", "AsyncProtocol", "LatencyModel"]


@dataclass(frozen=True, slots=True)
class LatencyModel:
    """One-way message latency: uniform in ``[minimum, maximum]`` seconds."""

    minimum: float = 0.02
    maximum: float = 0.2

    def __post_init__(self) -> None:
        if self.minimum < 0 or self.maximum < self.minimum:
            raise ConfigurationError(f"invalid latency range [{self.minimum}, {self.maximum}]")

    def sample(self, rng: np.random.Generator) -> float:
        if self.maximum == self.minimum:
            return self.minimum
        return float(rng.uniform(self.minimum, self.maximum))


class AsyncProtocol(ABC):
    """A gossip protocol runnable on the asynchronous engine."""

    name: str = "async-protocol"

    @abstractmethod
    def on_node_added(self, node: SimNode, engine: "AsyncEngine") -> None:
        """Initialise per-node state."""

    @abstractmethod
    def on_timer(self, node: SimNode, engine: "AsyncEngine") -> Any | None:
        """Local clock tick; returns a request payload or ``None``."""

    @abstractmethod
    def on_request(self, node: SimNode, payload: Any, engine: "AsyncEngine") -> Any | None:
        """Handle a delivered request; returns the response payload."""

    @abstractmethod
    def on_response(self, node: SimNode, payload: Any, engine: "AsyncEngine") -> None:
        """Handle a delivered response."""

    def payload_bytes(self, payload: Any) -> int:
        """Wire-size model for accounting (default: flat 64 B)."""
        return 64


class AsyncEngine:
    """Discrete-event gossip simulator with per-node clocks."""

    def __init__(
        self,
        overlay: Overlay,
        protocol: AsyncProtocol,
        rng: np.random.Generator,
        gossip_period: float = 1.0,
        period_jitter: float = 0.05,
        latency: LatencyModel | None = None,
        loss_rate: float = 0.0,
        sanitize: bool | None = None,
        obs: ObserverHub | None = None,
    ):
        if gossip_period <= 0:
            raise ConfigurationError("gossip period must be positive")
        if not 0.0 <= period_jitter < 1.0:
            raise ConfigurationError("period jitter must be in [0, 1)")
        if not 0.0 <= loss_rate < 1.0:
            raise ConfigurationError("loss rate must be in [0, 1)")
        self.overlay = overlay
        self.protocol = protocol
        # Opt-in invariant sanitizer (ADAM2_SANITIZE=1 or sanitize=True):
        # wrap the protocol so every delivered merge is mass-checked.
        from repro.lint.sanitizer import SanitizedAsyncProtocol, sanitize_enabled

        if sanitize_enabled(sanitize):
            self.protocol = SanitizedAsyncProtocol(protocol)
        self.rng = rng
        self.gossip_period = gossip_period
        self.period_jitter = period_jitter
        self.latency = latency or LatencyModel()
        self.loss_rate = loss_rate
        self.queue = EventQueue()
        #: observability hub (:mod:`repro.obs`); disabled by default
        self.obs = obs if obs is not None else NULL_HUB
        self.nodes: dict[int, SimNode] = {}
        self.messages_sent = 0
        self.messages_lost = 0
        self.bytes_sent = 0
        self._next_node_id = 0

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.queue.now

    def add_node(self, values: float | np.ndarray, bootstrap: list[int] | None = None) -> SimNode:
        node_id = self._next_node_id
        self._next_node_id += 1
        node = SimNode(node_id, values, spawn(self.rng))
        self.nodes[node_id] = node
        self.overlay.add_node(node_id, bootstrap)
        self.protocol.on_node_added(node, self)
        # Random phase so timers are spread across the period.
        self.queue.schedule_in(
            float(node.rng.uniform(0, self.gossip_period)), lambda: self._fire_timer(node_id)
        )
        return node

    def populate(self, values: np.ndarray) -> list[SimNode]:
        return [self.add_node(v) for v in np.asarray(values, dtype=float)]

    def remove_node(self, node_id: int) -> None:
        if self.nodes.pop(node_id, None) is None:
            raise SimulationError(f"cannot remove unknown node {node_id}")
        self.overlay.remove_node(node_id)
        # Pending timers and deliveries for this node become no-ops.

    def attribute_values(self) -> np.ndarray:
        if not self.nodes:
            raise SimulationError("system is empty")
        return np.concatenate([node.values for node in self.nodes.values()])

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run_for(self, duration: float, max_events: int | None = None) -> int:
        """Advance the simulation by ``duration`` seconds of virtual time."""
        if duration < 0:
            raise SimulationError("duration must be non-negative")
        with self.obs.span("round"):
            return self.queue.run_until(self.queue.now + duration, max_events=max_events)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _next_period(self, node: SimNode) -> float:
        if self.period_jitter == 0.0:
            return self.gossip_period
        factor = 1.0 + float(node.rng.uniform(-self.period_jitter, self.period_jitter))
        return self.gossip_period * factor

    def _fire_timer(self, node_id: int) -> None:
        node = self.nodes.get(node_id)
        if node is None:
            return  # departed; timer dies with it
        payload = self.protocol.on_timer(node, self)
        if payload is not None:
            peer_id = self.overlay.select_neighbour(node_id, self.rng)
            if peer_id is not None and peer_id in self.nodes:
                self._send(node_id, peer_id, payload, is_request=True)
        self.queue.schedule_in(self._next_period(node), lambda: self._fire_timer(node_id))

    def _send(self, sender: int, receiver: int, payload, is_request: bool) -> None:
        self.messages_sent += 1
        self.bytes_sent += self.protocol.payload_bytes(payload)
        if self.loss_rate > 0.0 and self.rng.random() < self.loss_rate:
            self.messages_lost += 1
            return
        delay = self.latency.sample(self.rng)
        if is_request:
            self.queue.schedule_in(delay, lambda: self._deliver_request(sender, receiver, payload))
        else:
            self.queue.schedule_in(delay, lambda: self._deliver_response(receiver, payload))

    def _deliver_request(self, sender: int, receiver: int, payload) -> None:
        node = self.nodes.get(receiver)
        if node is None:
            return  # receiver departed while the message was in flight
        response = self.protocol.on_request(node, payload, self)
        if response is not None and sender in self.nodes:
            self._send(receiver, sender, response, is_request=False)

    def _deliver_response(self, receiver: int, payload) -> None:
        node = self.nodes.get(receiver)
        if node is None:
            return
        self.protocol.on_response(node, payload, self)
