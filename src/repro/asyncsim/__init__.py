"""Event-driven (asynchronous) gossip simulation.

The paper evaluates Adam2 in synchronous rounds, but deployments have no
global clock: each node gossips on its own timer (period ± jitter) and
messages take real time to travel — §VII-F notes the gossip period is
bounded below by the message round-trip time.  This package provides a
discrete-event engine with per-node clocks and a latency model, plus an
Adam2 adapter, so the protocol can be exercised under asynchrony: request
and response are separate delayed deliveries, states drift between
snapshot and merge, and instances terminate on local TTL counts rather
than global rounds.  The headline result — exponential convergence at the
interpolation points — survives unchanged, which is what justifies the
round-based evaluation.
"""

from repro.asyncsim.events import EventQueue
from repro.asyncsim.engine import AsyncEngine, AsyncProtocol, LatencyModel
from repro.asyncsim.adam2 import AsyncAdam2

__all__ = ["EventQueue", "AsyncEngine", "AsyncProtocol", "LatencyModel", "AsyncAdam2", "run_adam2"]


def run_adam2(config, workload, **kwargs):
    """Deprecated: use ``repro.api.run(config, workload, backend="async")``."""
    import warnings

    warnings.warn(
        "repro.asyncsim.run_adam2 is deprecated; use repro.api.run(..., backend='async')",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.api import run

    return run(config, workload, backend="async", **kwargs)
