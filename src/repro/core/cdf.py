"""Ground-truth and estimated cumulative distribution functions.

The ground truth ``F`` is always the *empirical* CDF of the attribute
values held by the live node population — exactly the paper's definition
``F(x) = |{p : A(p) <= x}| / N`` — never an analytic form.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EstimationError
from repro.core.interpolation import InterpolationSet, assemble_polyline, invert_polyline

__all__ = ["EmpiricalCDF", "EstimatedCDF"]


class EmpiricalCDF:
    """The exact CDF of a finite population of attribute values."""

    def __init__(self, values: np.ndarray):
        values = np.asarray(values, dtype=float)
        if values.ndim != 1 or values.size == 0:
            raise EstimationError("EmpiricalCDF requires a non-empty 1-D value array")
        if not np.all(np.isfinite(values)):
            raise EstimationError("EmpiricalCDF values must be finite")
        self._sorted = np.sort(values)

    @property
    def size(self) -> int:
        """Number of population values ``N``."""
        return int(self._sorted.size)

    @property
    def minimum(self) -> float:
        return float(self._sorted[0])

    @property
    def maximum(self) -> float:
        return float(self._sorted[-1])

    def evaluate(self, xs: np.ndarray | float) -> np.ndarray:
        """``F(x)``: fraction of values at or below each ``x``."""
        xs = np.asarray(xs, dtype=float)
        return np.searchsorted(self._sorted, xs, side="right") / self._sorted.size

    def quantile(self, q: np.ndarray | float) -> np.ndarray:
        """Smallest value ``v`` with ``F(v) >= q`` (generalised inverse)."""
        q = np.atleast_1d(np.asarray(q, dtype=float))
        if np.any((q < 0) | (q > 1)):
            raise EstimationError("quantile levels must lie in [0, 1]")
        ranks = np.clip(np.ceil(q * self._sorted.size).astype(int) - 1, 0, self._sorted.size - 1)
        return self._sorted[ranks]

    def support(self) -> np.ndarray:
        """The distinct attribute values present in the population."""
        return np.unique(self._sorted)

    def __call__(self, xs):
        return self.evaluate(xs)


class EstimatedCDF:
    """A node's final CDF approximation ``F_p`` (linear interpolation).

    Built from an :class:`InterpolationSet` (or raw threshold/fraction
    arrays plus extremes) at the end of an aggregation instance.  The
    estimate is 0 strictly below the tracked minimum, 1 at and above the
    tracked maximum, and piecewise linear in between.
    """

    def __init__(
        self,
        thresholds: np.ndarray,
        fractions: np.ndarray,
        minimum: float,
        maximum: float,
        system_size: float | None = None,
    ):
        self._xs, self._ys = assemble_polyline(thresholds, fractions, minimum, maximum)
        self.thresholds = np.sort(np.asarray(thresholds, dtype=float))
        self.fractions = np.asarray(fractions, dtype=float)[np.argsort(np.asarray(thresholds, dtype=float), kind="stable")]
        self.minimum = float(minimum)
        self.maximum = float(maximum)
        #: estimated system size (``1/w``), if the instance aggregated one.
        self.system_size = system_size

    @classmethod
    def from_interpolation(cls, h: InterpolationSet, system_size: float | None = None) -> "EstimatedCDF":
        return cls(h.thresholds, h.fractions, h.minimum, h.maximum, system_size)

    def evaluate(self, xs: np.ndarray | float) -> np.ndarray:
        """``F_p(x)`` for each ``x``."""
        xs = np.asarray(xs, dtype=float)
        ys = np.interp(xs, self._xs, self._ys)
        ys = np.where(xs < self.minimum, 0.0, ys)
        ys = np.where(xs >= self.maximum, 1.0, ys)
        return ys

    def quantile(self, q: np.ndarray | float) -> np.ndarray:
        """Approximate inverse: smallest ``x`` with ``F_p(x) >= q``.

        Uses the interpolation polyline (binary search via
        :func:`repro.core.interpolation.invert_polyline`); exact on the
        polyline vertices.
        """
        q = np.atleast_1d(np.asarray(q, dtype=float))
        if np.any((q < 0) | (q > 1)):
            raise EstimationError("quantile levels must lie in [0, 1]")
        return invert_polyline(self._xs, self._ys, q)

    def polyline(self) -> tuple[np.ndarray, np.ndarray]:
        """The anchored interpolation polyline ``(xs, ys)``."""
        return self._xs.copy(), self._ys.copy()

    def __call__(self, xs):
        return self.evaluate(xs)
