"""Pairwise merge rules for gossip exchanges (paper Fig. 1, M ERGE).

A gossip exchange between peers ``p`` and ``q`` averages the corresponding
``f_i`` fraction estimates and the system-size weights, and combines the
tracked attribute extremes with min/max (the paper's "treated specially"
rule for the first and last points).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ProtocolError
from repro.core.interpolation import InterpolationSet

__all__ = ["merge_average", "merge_extremes", "merge_interpolation_sets"]


def merge_average(mine: np.ndarray, theirs: np.ndarray) -> np.ndarray:
    """Element-wise average of two fraction (or weight) vectors."""
    mine = np.asarray(mine, dtype=float)
    theirs = np.asarray(theirs, dtype=float)
    if mine.shape != theirs.shape:
        raise ProtocolError(f"cannot average shapes {mine.shape} and {theirs.shape}")
    return (mine + theirs) / 2.0


def merge_extremes(mine: tuple[float, float], theirs: tuple[float, float]) -> tuple[float, float]:
    """Combine two ``(minimum, maximum)`` estimates epidemically."""
    lo = min(mine[0], theirs[0])
    hi = max(mine[1], theirs[1])
    if hi < lo:
        raise ProtocolError(f"merged extremes invalid: [{lo}, {hi}]")
    return lo, hi


def merge_interpolation_sets(mine: InterpolationSet, theirs: InterpolationSet) -> InterpolationSet:
    """Full merge of two ``H`` structures from the same instance.

    Both peers must carry the same thresholds (they were fixed by the
    instance initiator); fractions average, extremes min/max.
    """
    if mine.thresholds.shape != theirs.thresholds.shape or not np.array_equal(
        mine.thresholds, theirs.thresholds
    ):
        raise ProtocolError("cannot merge H structures with different thresholds")
    lo, hi = merge_extremes((mine.minimum, mine.maximum), (theirs.minimum, theirs.maximum))
    return InterpolationSet(
        thresholds=mine.thresholds.copy(),
        fractions=merge_average(mine.fractions, theirs.fractions),
        minimum=lo,
        maximum=hi,
    )
