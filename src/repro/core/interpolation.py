"""The ``H`` interpolation structure and linear CDF interpolation.

``H`` is the paper's central data structure (§III): a sequence of
``(t_i, f_i)`` pairs where ``f_i`` estimates the fraction of nodes whose
attribute value is at or below the threshold ``t_i``, plus the tracked
global attribute extremes.  The CDF estimate ``F_p`` is the linear
interpolation through these points, anchored at ``(minimum, 0)`` from below
and ``(maximum, 1)`` from above.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ProtocolError

__all__ = ["InterpolationSet", "interpolate_matrix", "assemble_polyline", "invert_polyline"]


def assemble_polyline(
    thresholds: np.ndarray,
    fractions: np.ndarray,
    minimum: float,
    maximum: float,
    monotone: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Build the interpolation polyline ``(xs, ys)`` for a CDF estimate.

    Anchors ``(minimum, 0)`` and ``(maximum, 1)`` are added unless a
    threshold already sits at (or beyond) the corresponding extreme.  When
    a threshold coincides with the minimum, its aggregated fraction wins
    (the fraction of nodes *at* the minimum is exactly ``F(minimum)``).

    Args:
        thresholds: 1-D array of thresholds (need not be sorted).
        fractions: matching 1-D array of fraction estimates.
        minimum: tracked global attribute minimum.
        maximum: tracked global attribute maximum.
        monotone: clamp fractions to [0, 1] and enforce a non-decreasing
            polyline (a CDF must be monotone; unconverged averages may
            wiggle slightly).

    Returns:
        Sorted ``(xs, ys)`` arrays suitable for ``np.interp``.
    """
    thresholds = np.asarray(thresholds, dtype=float)
    fractions = np.asarray(fractions, dtype=float)
    if thresholds.shape != fractions.shape or thresholds.ndim != 1:
        raise ProtocolError("thresholds and fractions must be matching 1-D arrays")
    if thresholds.size == 0:
        xs = np.array([minimum, maximum], dtype=float)
        ys = np.array([0.0, 1.0])
        return xs, ys
    if not np.isfinite(minimum) or not np.isfinite(maximum) or maximum < minimum:
        raise ProtocolError(f"invalid extremes [{minimum}, {maximum}]")

    order = np.argsort(thresholds, kind="stable")
    xs = thresholds[order]
    ys = fractions[order]

    # Collapse duplicate thresholds, keeping the largest fraction (the
    # "at or below" semantics make the largest estimate the right one).
    if xs.size > 1:
        keep = np.empty(xs.size, dtype=bool)
        keep[:-1] = xs[:-1] != xs[1:]
        keep[-1] = True
        if not keep.all():
            ys = np.maximum.reduceat(ys, np.flatnonzero(np.concatenate(([True], keep[:-1]))))
            xs = xs[keep]

    if xs[0] > minimum:
        xs = np.concatenate(([minimum], xs))
        ys = np.concatenate(([0.0], ys))
    if xs[-1] < maximum:
        xs = np.concatenate((xs, [maximum]))
        ys = np.concatenate((ys, [1.0]))

    if monotone:
        ys = np.maximum.accumulate(np.clip(ys, 0.0, 1.0))
    return xs, ys


def invert_polyline(xs: np.ndarray, ys: np.ndarray, q: np.ndarray | float) -> np.ndarray:
    """Generalised inverse of a monotone CDF polyline.

    For each level ``q`` returns the smallest ``x`` on the polyline with
    ``y(x) >= q`` — the quantile of the piecewise-linear estimate.  The
    lookup is a binary search (:func:`np.searchsorted`) over the sorted
    ``ys`` followed by linear interpolation inside the located segment,
    so a flat segment (``y_lo == y_hi``) resolves to its left endpoint.

    Args:
        xs: sorted polyline abscissae (thresholds plus anchors).
        ys: non-decreasing polyline ordinates in ``[0, 1]``.
        q: quantile level(s) in ``[0, 1]``.

    Returns:
        Array of quantile values, one per level in ``q``.
    """
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if xs.shape != ys.shape or xs.ndim != 1 or xs.size < 2:
        raise ProtocolError("polyline needs matching 1-D xs/ys with >= 2 vertices")
    q = np.atleast_1d(np.asarray(q, dtype=float))
    if np.any((q < 0) | (q > 1)):
        raise ProtocolError("quantile levels must lie in [0, 1]")
    idx = np.searchsorted(ys, q, side="left")
    idx = np.clip(idx, 1, ys.size - 1)
    y_lo, y_hi = ys[idx - 1], ys[idx]
    x_lo, x_hi = xs[idx - 1], xs[idx]
    rise = np.where(y_hi > y_lo, y_hi - y_lo, 1.0)
    out = x_lo + (x_hi - x_lo) * np.clip((q - y_lo) / rise, 0.0, 1.0)
    out = np.where(q <= ys[0], xs[0], out)
    out = np.where(q >= ys[-1], xs[-1], out)
    return out


def interpolate_matrix(
    thresholds: np.ndarray,
    fractions: np.ndarray,
    minimum: np.ndarray,
    maximum: np.ndarray,
    query: np.ndarray,
) -> np.ndarray:
    """Evaluate many nodes' CDF estimates that share one threshold set.

    This is the vectorised work-horse used by the fast simulator: all
    nodes in an aggregation instance share the thresholds but hold their
    own fraction vectors (rows of ``fractions``) and extreme estimates.

    Args:
        thresholds: shared sorted 1-D thresholds, shape ``(k,)``.
        fractions: per-node fractions, shape ``(n, k)``.
        minimum: per-node minimum estimates, shape ``(n,)``.
        maximum: per-node maximum estimates, shape ``(n,)``.
        query: points at which to evaluate, shape ``(q,)``.

    Returns:
        Array of shape ``(n, q)`` with ``F_p(query)`` per node ``p``.
        Fractions are clamped to [0, 1] and made monotone per node.
    """
    thresholds = np.asarray(thresholds, dtype=float)
    fractions = np.asarray(fractions, dtype=float)
    query = np.asarray(query, dtype=float)
    minimum = np.asarray(minimum, dtype=float)
    maximum = np.asarray(maximum, dtype=float)
    if fractions.ndim != 2 or fractions.shape[1] != thresholds.size:
        raise ProtocolError("fractions must have shape (n, len(thresholds))")
    if np.any(np.diff(thresholds) < 0):
        raise ProtocolError("thresholds must be sorted")

    n = fractions.shape[0]
    frac = np.maximum.accumulate(np.clip(fractions, 0.0, 1.0), axis=1)

    # Segment index for each query point within the shared thresholds:
    # idx = number of thresholds strictly below the query point.
    idx = np.searchsorted(thresholds, query, side="right")
    out = np.empty((n, query.size), dtype=float)

    inside = (idx > 0) & (idx < thresholds.size)
    below = idx == 0
    above = idx == thresholds.size

    if inside.any():
        j = idx[inside]
        t_lo, t_hi = thresholds[j - 1], thresholds[j]
        width = np.where(t_hi > t_lo, t_hi - t_lo, 1.0)
        alpha = (query[inside] - t_lo) / width
        out[:, inside] = frac[:, j - 1] + (frac[:, j] - frac[:, j - 1]) * alpha
    if below.any():
        # Interpolate from the per-node (minimum, 0) anchor to the first
        # threshold; 0 strictly below the minimum.
        q_below = query[below]
        t0 = thresholds[0]
        span = np.maximum(t0 - minimum[:, None], 1e-300)
        alpha = (q_below[None, :] - minimum[:, None]) / span
        alpha = np.clip(alpha, 0.0, 1.0)
        out[:, below] = frac[:, :1] * alpha
        out[:, below] = np.where(q_below[None, :] < minimum[:, None], 0.0, out[:, below])
    if above.any():
        # Interpolate from the last threshold to the (maximum, 1) anchor;
        # 1 at and beyond the maximum.
        q_above = query[above]
        t_last = thresholds[-1]
        span = np.maximum(maximum[:, None] - t_last, 1e-300)
        alpha = np.clip((q_above[None, :] - t_last) / span, 0.0, 1.0)
        last = frac[:, -1:]
        out[:, above] = last + (1.0 - last) * alpha
        out[:, above] = np.where(q_above[None, :] >= maximum[:, None], 1.0, out[:, above])
    return out


@dataclass
class InterpolationSet:
    """A node's ``H`` structure for one aggregation instance.

    Attributes:
        thresholds: sorted threshold values ``t_i`` (shared instance-wide).
        fractions: this node's current averaged estimates ``f_i``.
        minimum: this node's current estimate of the global minimum.
        maximum: this node's current estimate of the global maximum.
    """

    thresholds: np.ndarray
    fractions: np.ndarray
    minimum: float
    maximum: float

    @classmethod
    def from_indicator(
        cls, value: float, thresholds: np.ndarray, local_minimum: float | None = None, local_maximum: float | None = None
    ) -> "InterpolationSet":
        """Initialise ``H`` for a joining peer (paper Fig. 1, line 21).

        The fractions start as the indicator ``1{A(p) <= t_i}`` and the
        extremes as the peer's own value (or its known local extremes when
        the peer holds multiple values).
        """
        thresholds = np.sort(np.asarray(thresholds, dtype=float))
        fractions = (value <= thresholds).astype(float)
        lo = value if local_minimum is None else local_minimum
        hi = value if local_maximum is None else local_maximum
        return cls(thresholds=thresholds, fractions=fractions, minimum=float(lo), maximum=float(hi))

    def copy(self) -> "InterpolationSet":
        return InterpolationSet(
            thresholds=self.thresholds.copy(),
            fractions=self.fractions.copy(),
            minimum=self.minimum,
            maximum=self.maximum,
        )

    def __len__(self) -> int:
        return int(self.thresholds.size)

    def polyline(self, monotone: bool = True) -> tuple[np.ndarray, np.ndarray]:
        """The ``(xs, ys)`` interpolation polyline including anchors."""
        return assemble_polyline(self.thresholds, self.fractions, self.minimum, self.maximum, monotone)

    def evaluate(self, xs: np.ndarray) -> np.ndarray:
        """Evaluate this node's interpolated CDF estimate at ``xs``."""
        xp, fp = self.polyline()
        xs = np.asarray(xs, dtype=float)
        ys = np.interp(xs, xp, fp)
        ys = np.where(xs < self.minimum, 0.0, ys)
        ys = np.where(xs >= self.maximum, 1.0, ys)
        return ys
