"""Registry of exchange modes that do *not* conserve averaging mass.

Adam2's convergence proof (PAPER.md, §averaging) rests on push–pull
exchanges conserving the per-column sums of all averaged quantities:
interpolation fractions converge to ``F(t_i)`` and size weights keep a
total of exactly 1 only because every exchange replaces two states by
their mean.  Some modes deliberately break this — most prominently the
``"literal"`` Fig. 1 join semantics, where the contacted peer ignores the
joiner's reply — and the runtime sanitizer must not silently exempt them.

Instead, a non-conserving mode is *declared* here, with a human-readable
account of the bias it introduces.  The sanitizer consults
:func:`is_mass_conserving` before enforcing conservation, and the
``ADM004`` lint rule requires any module branching on a ``join_mode``
string to register that mode in the same module.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

__all__ = [
    "NON_CONSERVING_MODES",
    "register_non_conserving",
    "is_mass_conserving",
    "non_conserving_reason",
]

#: mode name -> documented estimation bias.  Mutated only through
#: :func:`register_non_conserving`.
NON_CONSERVING_MODES: dict[str, str] = {}


def register_non_conserving(mode: str, reason: str) -> str:
    """Declare ``mode`` as a non-mass-conserving exchange mode.

    Args:
        mode: the mode string as it appears in configuration
            (e.g. ``"literal"``).
        reason: a short account of the estimation bias the mode
            introduces; surfaced in sanitizer reports.

    Returns:
        The registered mode name (so the call can double as a constant
        definition at module level).
    """
    if not mode:
        raise ConfigurationError("cannot register an empty exchange mode")
    if not reason or not reason.strip():
        raise ConfigurationError(
            f"non-conserving mode {mode!r} must document the bias it introduces"
        )
    existing = NON_CONSERVING_MODES.get(mode)
    if existing is not None and existing != reason:
        raise ConfigurationError(
            f"exchange mode {mode!r} already registered with a different reason"
        )
    NON_CONSERVING_MODES[mode] = reason
    return mode


def is_mass_conserving(mode: str) -> bool:
    """Whether exchanges under ``mode`` conserve averaged-column mass."""
    return mode not in NON_CONSERVING_MODES


def non_conserving_reason(mode: str) -> str | None:
    """The declared bias of a non-conserving mode (None if conserving)."""
    return NON_CONSERVING_MODES.get(mode)
