"""Adam2 protocol configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.core.conservation import register_non_conserving

__all__ = ["Adam2Config", "LITERAL_JOIN_BIAS"]

_JOIN_MODES = ("symmetric", "literal")

#: The estimation bias of the paper's Fig. 1 join rule, declared once so
#: every kernel implementing the mode registers the same account of it.
LITERAL_JOIN_BIAS = (
    "Fig. 1 literal join: the joiner averages with the contacted peer's state "
    "but the peer ignores the empty reply, duplicating the peer's averaged "
    "mass; fraction/weight column sums inflate with every join, so size "
    "estimates 1/w are biased low and fractions are pulled towards "
    "already-joined nodes' values"
)
register_non_conserving("literal", LITERAL_JOIN_BIAS)
_ERROR_TARGETS = ("average", "maximum")


@dataclass(frozen=True)
class Adam2Config:
    """Parameters of the Adam2 protocol.

    Attributes:
        points: number of interpolation points ``λ`` (paper default 50).
        rounds_per_instance: the instance time-to-live in gossip rounds;
            the paper considers 25 rounds sufficient for the averaging
            protocol to converge at the interpolation points.
        instance_frequency: the system constant ``R``; in the
            self-organising mode a node starts a new instance each round
            with probability ``1 / (N_p * R)``, so a new instance appears
            on average every ``R`` rounds system-wide.
        selection: threshold-refinement heuristic used from the second
            instance on: ``"hcut"``, ``"minmax"``, or ``"lcut"``.
        bootstrap: threshold-selection used for the very first instance
            (no previous estimate): ``"uniform"`` or ``"neighbour"``.
        verification_points: number of verification points for dynamic
            confidence estimation; 0 disables it.
        verification_target: which error metric the verification points
            are placed for — ``"average"`` (uniform placement) or
            ``"maximum"`` (widest-vertical-gap bisection), per §VI.
        join_mode: how a peer joins a running instance mid-gossip.
            ``"symmetric"`` (default) initialises the joiner and performs
            a normal symmetric averaging exchange, which conserves mass
            and converges to the exact fractions.  ``"literal"`` follows
            the paper's Fig. 1 pseudocode to the letter (the joiner merges
            but the contacted peer ignores the empty reply), which is not
            mass-conserving; it is kept for the ablation benchmark.
        initial_size_estimate: bootstrap value for ``N_p`` before the
            first completed instance (nodes joining the system are
            bootstrapped by their initial neighbours, §IV).
        point_bytes: wire-size model — bytes per interpolation point; the
            paper's 800-byte message at λ=50 implies 16 bytes per point.
        header_bytes: fixed per-message overhead in the cost model.
    """

    points: int = 50
    rounds_per_instance: int = 25
    instance_frequency: int = 50
    selection: str = "minmax"
    bootstrap: str = "neighbour"
    verification_points: int = 0
    verification_target: str = "average"
    join_mode: str = "symmetric"
    initial_size_estimate: float = 100.0
    point_bytes: int = 16
    header_bytes: int = 0

    def __post_init__(self) -> None:
        if self.points < 2:
            raise ConfigurationError(f"need at least 2 interpolation points, got {self.points}")
        if self.rounds_per_instance < 1:
            raise ConfigurationError("rounds_per_instance must be >= 1")
        if self.instance_frequency < 1:
            raise ConfigurationError("instance_frequency must be >= 1")
        if self.selection not in ("hcut", "minmax", "lcut", "lcut_global"):
            raise ConfigurationError(f"unknown selection heuristic {self.selection!r}")
        if self.bootstrap not in ("uniform", "neighbour"):
            raise ConfigurationError(f"unknown bootstrap mode {self.bootstrap!r}")
        if self.verification_points < 0:
            raise ConfigurationError("verification_points must be >= 0")
        if self.verification_target not in _ERROR_TARGETS:
            raise ConfigurationError(f"unknown verification target {self.verification_target!r}")
        if self.join_mode not in _JOIN_MODES:
            raise ConfigurationError(f"unknown join mode {self.join_mode!r}")
        if self.initial_size_estimate <= 0:
            raise ConfigurationError("initial_size_estimate must be positive")
        if self.point_bytes <= 0 or self.header_bytes < 0:
            raise ConfigurationError("invalid wire-size model")

    def message_bytes(self) -> int:
        """Model of one gossip message's size for this configuration.

        Counts the interpolation points, the two extreme values, the
        verification points, and the weight variable, at
        :attr:`point_bytes` per (threshold, fraction) pair.
        """
        pairs = self.points + self.verification_points + 1  # +1: extremes
        return self.header_bytes + self.point_bytes * pairs + 8  # +8: weight
