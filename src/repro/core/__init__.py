"""Adam2 core: the paper's primary contribution.

This subpackage implements the Adam2 protocol itself: the interpolation
data structure ``H``, the merge rules, the threshold-selection heuristics
(Uniform, Neighbour-based, HCut, MinMax, LCut), verification points and
confidence estimation, per-instance node state, and the node logic that
runs on the simulation engine.
"""

from repro.core.adaptive import AccuracyController, TuningDecision
from repro.core.cdf import EmpiricalCDF, EstimatedCDF
from repro.core.config import Adam2Config
from repro.core.confidence import (
    ConfidenceReport,
    estimate_errors,
    select_verification_points,
)
from repro.core.instance import InstanceState
from repro.core.interpolation import InterpolationSet, interpolate_matrix
from repro.core.merge import merge_average, merge_extremes
from repro.core.multivalue import MultiValueState, multivalue_fractions
from repro.core.node import Adam2Node
from repro.core.protocol import Adam2Protocol
from repro.core.selection import (
    HCutSelection,
    LCutSelection,
    MinMaxSelection,
    NeighbourBasedSelection,
    SelectionStrategy,
    UniformSelection,
    get_selection,
)
from repro.core.sizing import size_from_weight

__all__ = [
    "AccuracyController",
    "TuningDecision",
    "EmpiricalCDF",
    "EstimatedCDF",
    "Adam2Config",
    "ConfidenceReport",
    "estimate_errors",
    "select_verification_points",
    "InstanceState",
    "InterpolationSet",
    "interpolate_matrix",
    "merge_average",
    "merge_extremes",
    "MultiValueState",
    "multivalue_fractions",
    "Adam2Node",
    "Adam2Protocol",
    "SelectionStrategy",
    "UniformSelection",
    "NeighbourBasedSelection",
    "HCutSelection",
    "MinMaxSelection",
    "LCutSelection",
    "get_selection",
    "size_from_weight",
]
