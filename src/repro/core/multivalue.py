"""Multiple attribute values per node (paper §IV, final subsection).

To estimate the distribution of a *multiset* of values (e.g. the sizes of
all files at all nodes), each node contributes two quantities to the
averaging protocol: ``avg_i`` — its count of values at or below each
threshold — and ``avg`` — its total number of values.  The CDF value at
threshold ``t_i`` is then ``f_i = avg_i / avg``.  Note ``avg`` is a single
scalar shared by all thresholds.

:class:`repro.core.instance.InstanceState` implements this scheme natively
(single-value mode is the degenerate case ``avg ≡ 1``); the helpers here
expose the arithmetic directly for analysis and tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ProtocolError

__all__ = ["MultiValueState", "multivalue_fractions"]


def multivalue_fractions(avg_counts: np.ndarray, avg_total: float) -> np.ndarray:
    """Compute ``f_i = avg_i / avg`` with validation."""
    avg_counts = np.asarray(avg_counts, dtype=float)
    if avg_total <= 0:
        raise ProtocolError(f"averaged value count must be positive, got {avg_total}")
    return avg_counts / avg_total


@dataclass
class MultiValueState:
    """The two averaged quantities of the multi-value scheme for one node.

    Attributes:
        counts: per-threshold counts ``|{a in A(p) : a <= t_i}|``,
            averaged over gossip exchanges.
        total: number of values ``|A(p)|``, averaged over exchanges.
    """

    counts: np.ndarray
    total: float

    @classmethod
    def from_values(cls, values: np.ndarray, thresholds: np.ndarray) -> "MultiValueState":
        values = np.atleast_1d(np.asarray(values, dtype=float))
        thresholds = np.asarray(thresholds, dtype=float)
        if values.size == 0:
            raise ProtocolError("node must hold at least one value")
        counts = (values[None, :] <= thresholds[:, None]).sum(axis=1).astype(float)
        return cls(counts=counts, total=float(values.size))

    def merge(self, other: "MultiValueState") -> None:
        """Symmetric averaging merge (both peers call this on exchange)."""
        if self.counts.shape != other.counts.shape:
            raise ProtocolError("cannot merge states with different threshold counts")
        merged_counts = (self.counts + other.counts) / 2.0
        merged_total = (self.total + other.total) / 2.0
        self.counts = merged_counts
        self.total = merged_total

    def fractions(self) -> np.ndarray:
        """Current CDF estimates at the thresholds."""
        return multivalue_fractions(self.counts, self.total)
