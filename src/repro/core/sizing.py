"""System-size estimation from averaged weights (paper §IV).

Each instance runs the averaging protocol over a weight variable that is 1
at the unique initiator and 0 elsewhere; the average converges to ``1/N``,
so each node recovers ``N`` as the inverse of its converged weight.
"""

from __future__ import annotations

from repro.errors import EstimationError

__all__ = ["size_from_weight"]


def size_from_weight(weight: float) -> float:
    """Convert a converged averaging weight into a system-size estimate.

    Args:
        weight: the node's weight at instance end; must be positive (a
            node that merged with the epidemic at least once holds a
            strictly positive weight once the initiator's unit of mass
            has reached it).

    Raises:
        EstimationError: if the weight is non-positive, which means the
            initiator's weight never reached this node (instance too
            short or the overlay was partitioned).
    """
    if weight <= 0.0:
        raise EstimationError(f"cannot invert non-positive weight {weight}")
    return 1.0 / weight
