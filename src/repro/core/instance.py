"""Per-node state of one aggregation instance."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

import numpy as np

from repro.errors import ProtocolError
from repro.core.interpolation import InterpolationSet

__all__ = ["InstanceState"]


@dataclass
class InstanceState:
    """Everything a peer stores for one running aggregation instance.

    Attributes:
        instance_id: unique instance identifier (assigned by initiator).
        h: the interpolation structure (thresholds, fractions, extremes).
        weight: system-size weight (1 at initiator, 0 elsewhere initially).
        v_thresholds: shared verification thresholds (may be empty).
        v_fractions: this node's averaged verification fractions.
        count_average: averaged number of attribute values per node; 1.0
            everywhere in single-value mode, ``|A(p)|`` initially in
            multi-value mode (§IV, "Multiple Attribute Values per Node").
        ttl: rounds remaining before this peer terminates the instance.
        started_round: the engine round at which this peer joined.
        initiator: whether this peer started the instance.
    """

    instance_id: Hashable
    h: InterpolationSet
    weight: float
    v_thresholds: np.ndarray
    v_fractions: np.ndarray
    count_average: float
    ttl: int
    started_round: int = 0
    initiator: bool = False

    def __post_init__(self) -> None:
        if self.ttl < 0:
            raise ProtocolError("instance TTL must be non-negative")
        if self.v_thresholds.shape != self.v_fractions.shape:
            raise ProtocolError("verification thresholds/fractions shape mismatch")

    @classmethod
    def initial(
        cls,
        instance_id: Hashable,
        values: np.ndarray,
        thresholds: np.ndarray,
        v_thresholds: np.ndarray,
        ttl: int,
        initiator: bool,
        started_round: int = 0,
    ) -> "InstanceState":
        """Initialise a peer's state on starting or joining an instance.

        ``values`` is the peer's attribute value(s) as a 1-D array: a
        single element in the standard protocol, several in multi-value
        mode.  Fractions start as *counts at or below each threshold*
        (the plain indicator when there is one value) and the
        count-average column starts at ``len(values)``; at termination
        the fractions are divided by the averaged count, which reduces to
        the paper's single-value protocol when every node holds one
        value.
        """
        values = np.atleast_1d(np.asarray(values, dtype=float))
        if values.size == 0:
            raise ProtocolError("a peer must hold at least one attribute value")
        thresholds = np.sort(np.asarray(thresholds, dtype=float))
        v_thresholds = np.sort(np.asarray(v_thresholds, dtype=float))
        counts = (values[None, :] <= thresholds[:, None]).sum(axis=1).astype(float)
        v_counts = (values[None, :] <= v_thresholds[:, None]).sum(axis=1).astype(float)
        h = InterpolationSet(
            thresholds=thresholds,
            fractions=counts,
            minimum=float(values.min()),
            maximum=float(values.max()),
        )
        return cls(
            instance_id=instance_id,
            h=h,
            weight=1.0 if initiator else 0.0,
            v_thresholds=v_thresholds,
            v_fractions=v_counts,
            count_average=float(values.size),
            ttl=ttl,
            started_round=started_round,
            initiator=initiator,
        )

    def merge_from(self, other: "InstanceState") -> None:
        """Average this state with a peer's state (in place).

        Fractions, verification fractions, weights, and count averages
        are averaged; extremes combine with min/max.  TTLs are *not*
        merged: each peer counts down its own copy (adopted from the
        instance message at join time), so termination stays within a
        round of the initiator's deadline without letting the fastest
        ticker's countdown propagate epidemically — min-merging TTLs is a
        no-op under synchronous rounds but roughly doubles the countdown
        rate under asynchronous per-node clocks.
        """
        if other.instance_id != self.instance_id:
            raise ProtocolError("cannot merge states of different instances")
        if not np.array_equal(self.h.thresholds, other.h.thresholds):
            raise ProtocolError("instance thresholds diverged between peers")
        self.h.fractions = (self.h.fractions + other.h.fractions) / 2.0
        self.h.minimum = min(self.h.minimum, other.h.minimum)
        self.h.maximum = max(self.h.maximum, other.h.maximum)
        self.v_fractions = (self.v_fractions + other.v_fractions) / 2.0
        self.weight = (self.weight + other.weight) / 2.0
        self.count_average = (self.count_average + other.count_average) / 2.0

    def snapshot(self) -> "InstanceState":
        """Deep-enough copy for a symmetric exchange (arrays copied)."""
        return InstanceState(
            instance_id=self.instance_id,
            h=self.h.copy(),
            weight=self.weight,
            v_thresholds=self.v_thresholds.copy(),
            v_fractions=self.v_fractions.copy(),
            count_average=self.count_average,
            ttl=self.ttl,
            started_round=self.started_round,
            initiator=self.initiator,
        )

    def normalised_fractions(self) -> np.ndarray:
        """Current fraction estimates ``f_i = avg_i / avg`` (§IV)."""
        if self.count_average <= 0:
            raise ProtocolError("count average is non-positive; instance not yet reached")
        return self.h.fractions / self.count_average

    def normalised_v_fractions(self) -> np.ndarray:
        if self.count_average <= 0:
            raise ProtocolError("count average is non-positive; instance not yet reached")
        return self.v_fractions / self.count_average
