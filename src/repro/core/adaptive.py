"""Accuracy self-tuning driven by confidence estimation (paper §VI).

The paper's motivation for dynamic confidence estimation is that an
application can "dynamically tune the algorithm parameters — such as the
number of interpolation points and the number of executed instances —
according to application-specific accuracy requirements".
:class:`AccuracyController` packages that loop as library code: after each
instance it inspects the nodes' self-assessed error and decides whether to
stop (target met), run another refinement instance, or increase ``λ``.
No ground truth is ever consulted.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.core.config import Adam2Config

__all__ = ["AccuracyController", "TuningDecision"]


@dataclass(frozen=True, slots=True)
class TuningDecision:
    """The controller's verdict after one instance.

    Attributes:
        action: ``"stop"`` (target met), ``"refine"`` (run another
            instance with the same parameters), or ``"grow"`` (increase
            the interpolation point count and run again).
        config: the configuration to use for the next instance (equal to
            the current one unless ``action == "grow"``).
        estimated_error: the self-assessed error that drove the decision.
    """

    action: str
    config: Adam2Config
    estimated_error: float


class AccuracyController:
    """Drives Adam2 towards a target self-estimated error.

    Args:
        target: the self-estimated error to reach (``EstErr_a`` when the
            config's verification target is ``"average"``, ``EstErr_m``
            for ``"maximum"``).
        max_points: upper bound for the interpolation point count.
        growth_factor: multiplier applied to ``λ`` on a ``grow`` decision.
        patience: instances with the same ``λ`` before growing; refinement
            heuristics typically need 2–3 instances to converge at a given
            ``λ``, so growing earlier wastes points.
    """

    def __init__(
        self,
        target: float,
        max_points: int = 200,
        growth_factor: float = 2.0,
        patience: int = 2,
    ):
        if target <= 0:
            raise ConfigurationError("target error must be positive")
        if max_points < 2:
            raise ConfigurationError("max_points must be >= 2")
        if growth_factor <= 1.0:
            raise ConfigurationError("growth_factor must exceed 1")
        if patience < 1:
            raise ConfigurationError("patience must be >= 1")
        self.target = target
        self.max_points = max_points
        self.growth_factor = growth_factor
        self.patience = patience
        self._instances_at_current_points = 0
        self._previous_error: float | None = None

    def decide(self, config: Adam2Config, estimated_error: float) -> TuningDecision:
        """Decide the next step given the latest self-assessment.

        The controller stops when the estimate is at or below the target;
        keeps refining while the estimate is still improving or patience
        remains; and grows ``λ`` once refinement at the current size has
        plateaued above the target.
        """
        if config.verification_points < 1:
            raise ConfigurationError("confidence-driven tuning needs verification points")
        if estimated_error < 0:
            raise ConfigurationError("estimated error cannot be negative")
        self._instances_at_current_points += 1

        if estimated_error <= self.target:
            return TuningDecision("stop", config, estimated_error)

        plateaued = (
            self._previous_error is not None
            and estimated_error > 0.7 * self._previous_error
        )
        self._previous_error = estimated_error
        exhausted_patience = self._instances_at_current_points >= self.patience
        if (plateaued and exhausted_patience) and config.points < self.max_points:
            new_points = min(int(config.points * self.growth_factor), self.max_points)
            self._instances_at_current_points = 0
            self._previous_error = None
            return TuningDecision("grow", replace(config, points=new_points), estimated_error)
        return TuningDecision("refine", config, estimated_error)

    def reset(self) -> None:
        """Forget history (e.g. when the attribute distribution shifts)."""
        self._instances_at_current_points = 0
        self._previous_error = None
