"""Dynamic confidence estimation (paper §VI).

The instance initiator selects *verification points* ``V`` in addition to
the interpolation points ``H``.  Verification fractions are aggregated with
the same averaging protocol (so they are near-exact at instance end), but
they do **not** participate in the interpolation.  Each node then compares
its interpolated CDF against the verification fractions to estimate its own
approximation error — enabling applications to trade accuracy for overhead
without any external ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, EstimationError
from repro.core.cdf import EstimatedCDF
from repro.core.interpolation import interpolate_matrix

__all__ = [
    "ConfidenceReport",
    "select_verification_points",
    "estimate_errors",
    "estimate_errors_matrix",
]


@dataclass(frozen=True, slots=True)
class ConfidenceReport:
    """A node's self-assessment of its CDF approximation accuracy.

    Attributes:
        est_maximum: ``EstErr_m(p)`` — max |F_p(t'_i) − f'_i| over V.
        est_average: ``EstErr_a(p)`` — mean |F_p(t'_i) − f'_i| over V.
        points: number of verification points used.
    """

    est_maximum: float
    est_average: float
    points: int


def select_verification_points(
    count: int,
    target: str,
    previous: EstimatedCDF | None,
    minimum: float,
    maximum: float,
) -> np.ndarray:
    """Choose verification thresholds for a new instance.

    Args:
        count: number of verification points.
        target: ``"average"`` places them uniformly in ``[minimum,
            maximum]`` (for estimating ``Err_a``); ``"maximum"``
            iteratively bisects the widest *vertical* gap of the current
            interpolation (for estimating ``Err_m``), seeking the
            attribute values where the true CDF and the interpolation
            most differ.
        previous: the initiator's current CDF interpolation; required for
            the ``"maximum"`` target.
        minimum: attribute-domain lower bound.
        maximum: attribute-domain upper bound.
    """
    if count < 0:
        raise ConfigurationError("verification point count must be >= 0")
    if count == 0:
        return np.empty(0, dtype=float)
    if maximum < minimum:
        raise EstimationError(f"invalid domain [{minimum}, {maximum}]")
    if target == "average" or previous is None:
        if maximum == minimum:
            return np.full(count, minimum)
        # Uniform placement strictly inside the domain: the endpoints are
        # already anchored by the extremes tracking.
        return np.linspace(minimum, maximum, count + 2)[1:-1]
    if target != "maximum":
        raise ConfigurationError(f"unknown verification target {target!r}")

    xs, ys = previous.polyline()
    points = list(zip(xs.tolist(), ys.tolist()))
    chosen: list[float] = []
    for _ in range(count):
        if len(points) < 2:
            break
        n = max(range(1, len(points)), key=lambda i: abs(points[i][1] - points[i - 1][1]))
        mid_t = (points[n - 1][0] + points[n][0]) / 2.0
        mid_f = (points[n - 1][1] + points[n][1]) / 2.0
        chosen.append(mid_t)
        points.insert(n, (mid_t, mid_f))
    while len(chosen) < count:
        chosen.append(chosen[-1] if chosen else minimum)
    return np.sort(np.asarray(chosen, dtype=float))


def estimate_errors(
    estimate: EstimatedCDF,
    verification_thresholds: np.ndarray,
    verification_fractions: np.ndarray,
) -> ConfidenceReport:
    """Self-assess a CDF estimate against aggregated verification points."""
    t = np.asarray(verification_thresholds, dtype=float)
    f = np.asarray(verification_fractions, dtype=float)
    if t.shape != f.shape or t.ndim != 1:
        raise EstimationError("verification thresholds/fractions must be matching 1-D arrays")
    if t.size == 0:
        raise EstimationError("cannot estimate errors without verification points")
    residual = np.abs(estimate.evaluate(t) - np.clip(f, 0.0, 1.0))
    return ConfidenceReport(
        est_maximum=float(residual.max()),
        est_average=float(residual.mean()),
        points=int(t.size),
    )


def estimate_errors_matrix(
    thresholds: np.ndarray,
    fractions: np.ndarray,
    minimum: np.ndarray,
    maximum: np.ndarray,
    verification_thresholds: np.ndarray,
    verification_fractions: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised confidence estimation over all nodes of an instance.

    Args:
        thresholds: shared interpolation thresholds, shape ``(k,)``.
        fractions: per-node interpolation fractions, shape ``(n, k)``.
        minimum: per-node minimum estimates, shape ``(n,)``.
        maximum: per-node maximum estimates, shape ``(n,)``.
        verification_thresholds: shared verification thresholds ``(v,)``.
        verification_fractions: per-node verification fractions ``(n, v)``.

    Returns:
        ``(est_maximum, est_average)`` arrays of shape ``(n,)``.
    """
    vt = np.asarray(verification_thresholds, dtype=float)
    vf = np.clip(np.asarray(verification_fractions, dtype=float), 0.0, 1.0)
    if vt.size == 0:
        raise EstimationError("cannot estimate errors without verification points")
    predicted = interpolate_matrix(thresholds, fractions, minimum, maximum, vt)
    residual = np.abs(predicted - vf)
    return residual.max(axis=1), residual.mean(axis=1)
