"""Neighbour-based bootstrap selection (paper §V, §VII-B)."""

from __future__ import annotations

import numpy as np

from repro.errors import EstimationError
from repro.core.cdf import EstimatedCDF
from repro.core.selection.base import SelectionStrategy, fill_unique

__all__ = ["NeighbourBasedSelection"]


class NeighbourBasedSelection(SelectionStrategy):
    """Bootstrap thresholds from attribute values observed at neighbours.

    The initiator takes a random subset of the attribute values of its
    overlay neighbours as the initial thresholds.  Because those values
    are themselves drawn from the target distribution, the points land
    where the distribution has mass, which bootstraps MinMax (and the
    other refinement heuristics) dramatically faster than uniform
    placement on skewed distributions (Fig. 5).
    """

    name = "neighbour"

    def select(
        self,
        lam: int,
        previous: EstimatedCDF | None,
        rng: np.random.Generator,
        neighbour_values: np.ndarray | None = None,
    ) -> np.ndarray:
        if neighbour_values is None or np.asarray(neighbour_values).size == 0:
            raise EstimationError("neighbour-based selection needs neighbour attribute values")
        values = np.asarray(neighbour_values, dtype=float)
        if values.size >= lam:
            picked = rng.choice(values, size=lam, replace=False)
        else:
            picked = values
        lo, hi = float(values.min()), float(values.max())
        return fill_unique(np.sort(picked), lam, lo, hi)
