"""Selection strategy interface and shared helpers."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import ConfigurationError, EstimationError
from repro.core.cdf import EstimatedCDF

__all__ = ["SelectionStrategy", "get_selection", "canonical_points", "fill_unique"]


class SelectionStrategy(ABC):
    """Chooses the ``λ`` thresholds for a new aggregation instance.

    A strategy receives whatever context is available to the initiating
    peer: the previous CDF estimate (``None`` before the first instance
    completes) and a sample of attribute values observed at overlay
    neighbours.  It returns a sorted array of ``lam`` thresholds.
    """

    #: Registry name, set by subclasses.
    name: str = ""

    @abstractmethod
    def select(
        self,
        lam: int,
        previous: EstimatedCDF | None,
        rng: np.random.Generator,
        neighbour_values: np.ndarray | None = None,
    ) -> np.ndarray:
        """Return ``lam`` sorted thresholds for the next instance."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__}>"


def canonical_points(previous: EstimatedCDF, lam: int) -> tuple[np.ndarray, np.ndarray]:
    """Adapt a previous estimate's polyline to exactly ``lam`` points.

    The refinement heuristics operate on the previous interpolation, so
    its carefully refined vertex placement must be preserved.  When the
    vertex count differs from ``lam`` (the first refinement sees the
    bootstrap polyline with its two added anchor vertices; a caller may
    also change ``λ`` between instances), the set is adjusted minimally:

    * too many points: repeatedly drop the interior vertex whose removal
      loses the least vertical information (smallest ``|f[i+1]−f[i−1]|``,
      the MinMax removal criterion); endpoints are always kept;
    * too few points: repeatedly bisect the widest vertical gap.
    """
    if lam < 2:
        raise ConfigurationError("need lam >= 2")
    xs, ys = previous.polyline()
    points = list(zip(xs.tolist(), ys.tolist()))
    while len(points) > lam and len(points) > 2:
        m = min(range(1, len(points) - 1), key=lambda j: abs(points[j + 1][1] - points[j - 1][1]))
        points.pop(m)
    while len(points) < lam:
        n = max(range(1, len(points)), key=lambda i: abs(points[i][1] - points[i - 1][1]))
        midpoint = (
            (points[n - 1][0] + points[n][0]) / 2.0,
            (points[n - 1][1] + points[n][1]) / 2.0,
        )
        points.insert(n, midpoint)
    ts = np.asarray([t for t, _ in points], dtype=float)
    fs = np.asarray([f for _, f in points], dtype=float)
    return ts, fs


def fill_unique(thresholds: np.ndarray, lam: int, lo: float, hi: float) -> np.ndarray:
    """Return exactly ``lam`` sorted thresholds inside ``[lo, hi]``.

    Deduplicates, then repeatedly inserts the midpoint of the widest gap
    (considering the domain endpoints) until ``lam`` values exist.  When
    the domain is degenerate (``lo == hi``) duplicates are unavoidable and
    the single value is repeated.
    """
    if lam < 1:
        raise ConfigurationError("need lam >= 1")
    if hi < lo:
        raise EstimationError(f"invalid domain [{lo}, {hi}]")
    vals = np.unique(np.clip(np.asarray(thresholds, dtype=float), lo, hi))
    if vals.size > lam:
        idx = np.linspace(0, vals.size - 1, lam).round().astype(int)
        vals = vals[np.unique(idx)]
    if hi == lo:
        return np.full(lam, lo)
    points = list(vals)
    if not points:
        points = [lo, hi] if lam >= 2 else [lo]
    while len(points) < lam:
        candidates = [lo] + points + [hi] if (points[0] > lo or points[-1] < hi) else points
        gaps = np.diff(np.asarray(candidates))
        if gaps.size == 0 or gaps.max() <= 0:
            points.append(points[-1])
            continue
        g = int(np.argmax(gaps))
        midpoint = (candidates[g] + candidates[g + 1]) / 2.0
        points.append(midpoint)
        points.sort()
    return np.asarray(points[:lam], dtype=float)


def get_selection(name: str) -> SelectionStrategy:
    """Instantiate a selection strategy by registry name."""
    from repro.core.selection.hcut import HCutSelection
    from repro.core.selection.lcut import GlobalLCutSelection, LCutSelection
    from repro.core.selection.minmax import MinMaxSelection
    from repro.core.selection.neighbour import NeighbourBasedSelection
    from repro.core.selection.uniform import UniformSelection

    registry = {
        "uniform": UniformSelection,
        "neighbour": NeighbourBasedSelection,
        "hcut": HCutSelection,
        "minmax": MinMaxSelection,
        "lcut": LCutSelection,
        "lcut_global": GlobalLCutSelection,
    }
    try:
        return registry[name.lower()]()
    except KeyError:
        raise ConfigurationError(
            f"unknown selection strategy {name!r}; expected one of {sorted(registry)}"
        ) from None
