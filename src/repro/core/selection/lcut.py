"""LCut refinement: equal Euclidean arc-length along the previous curve.

LCut (§V-B) optimises the *average* error ``Err_a``: it places points so
that consecutive interpolation points are separated by equal Euclidean
distance along the previous polyline, with the horizontal axis scaled by
``max − min`` so both coordinates have comparable ranges.  Relative to
HCut (equal vertical division) this spends points on long flat stretches
as well as on steep rises, shrinking the area between the true and
estimated curves.

Two implementations are provided:

* :class:`LCutSelection` (registry name ``"lcut"``) — an *incremental*
  equalisation: starting from the previous points, repeatedly split the
  longest segment at its midpoint while removing the interior point whose
  neighbours are closest together (the exact analogue of the paper's
  MinMax loop with Euclidean length in place of vertical distance).
  Because existing points move only when it shortens the longest segment,
  the brackets around CDF steps are preserved between instances and the
  refinement converges monotonically.
* :class:`GlobalLCutSelection` (``"lcut_global"``) — the literal one-shot
  division of the curve into ``λ − 1`` equal-length segments.  On step
  CDFs this variant oscillates: the vertex bracketing a step from below
  is not guaranteed to be a division point, so a step's bracket can
  regress to the previous flat-region point (we keep it as an ablation;
  see the ``ablation_lcut`` benchmark).
"""

from __future__ import annotations

import bisect

import numpy as np

from repro.errors import EstimationError
from repro.core.cdf import EstimatedCDF
from repro.core.selection.base import SelectionStrategy, canonical_points, fill_unique

__all__ = ["LCutSelection", "GlobalLCutSelection"]


def _segment_length(a: tuple[float, float], b: tuple[float, float]) -> float:
    return float(np.hypot(b[0] - a[0], b[1] - a[1]))


class LCutSelection(SelectionStrategy):
    """Incremental equal-arc-length selection (stabilised LCut)."""

    name = "lcut"

    #: Safety bound on refinement iterations, as a multiple of ``λ``.
    max_iteration_factor: int = 20

    def select(
        self,
        lam: int,
        previous: EstimatedCDF | None,
        rng: np.random.Generator,
        neighbour_values: np.ndarray | None = None,
    ) -> np.ndarray:
        if previous is None:
            raise EstimationError("LCut needs a previous estimate; use a bootstrap heuristic first")
        span = previous.maximum - previous.minimum
        if span <= 0:
            return np.full(lam, previous.minimum)
        ts, fs = canonical_points(previous, lam)
        # Normalised coordinates: x scaled by (max − min), y already in [0,1].
        h: list[tuple[float, float]] = sorted(zip((ts / span).tolist(), fs.tolist()))
        h_old = list(h)

        for _ in range(self.max_iteration_factor * max(lam, 2)):
            if len(h) < 2 or len(h_old) < 3:
                break
            n = max(range(1, len(h)), key=lambda i: _segment_length(h[i - 1], h[i]))
            longest = _segment_length(h[n - 1], h[n])
            m = min(range(1, len(h_old) - 1), key=lambda j: _segment_length(h_old[j - 1], h_old[j + 1]))
            narrowest = _segment_length(h_old[m - 1], h_old[m + 1])
            if not longest > narrowest:
                break
            new_point = (
                (h[n - 1][0] + h[n][0]) / 2.0,
                (h[n - 1][1] + h[n][1]) / 2.0,
            )
            removed = h_old.pop(m)
            if removed in h:
                h.remove(removed)
            bisect.insort(h, new_point)

        thresholds = np.asarray([t * span for t, _ in h], dtype=float)
        return fill_unique(thresholds, lam, previous.minimum, previous.maximum)


class GlobalLCutSelection(SelectionStrategy):
    """The literal global equal-length division of the previous curve."""

    name = "lcut_global"

    def select(
        self,
        lam: int,
        previous: EstimatedCDF | None,
        rng: np.random.Generator,
        neighbour_values: np.ndarray | None = None,
    ) -> np.ndarray:
        if previous is None:
            raise EstimationError("LCut needs a previous estimate; use a bootstrap heuristic first")
        xs, ys = previous.polyline()
        span = previous.maximum - previous.minimum
        if span <= 0:
            return np.full(lam, previous.minimum)
        nx = (xs - previous.minimum) / span
        seg_len = np.hypot(np.diff(nx), np.diff(ys))
        cumulative = np.concatenate(([0.0], np.cumsum(seg_len)))
        total = cumulative[-1]
        if total <= 0:
            return np.full(lam, previous.minimum)
        targets = np.linspace(0.0, total, lam)
        thresholds = np.interp(targets, cumulative, xs)
        return fill_unique(thresholds, lam, previous.minimum, previous.maximum)
