"""HCut refinement: equal CDF quantiles of the previous estimate (§V-A)."""

from __future__ import annotations

import numpy as np

from repro.errors import EstimationError
from repro.core.cdf import EstimatedCDF
from repro.core.selection.base import SelectionStrategy, fill_unique

__all__ = ["HCutSelection"]


class HCutSelection(SelectionStrategy):
    """Thresholds dividing the previous estimate into equal quantiles.

    Places the new interpolation points so that consecutive points are
    separated by equal *vertical* (CDF) distance along the previous
    approximation, bounding the expected maximum error to roughly
    ``1/(λ+1)`` when the CDF is smooth and stable.  Step CDFs defeat it:
    many quantiles collapse onto the same attribute value at a step, so
    the deduplicated points are back-filled with widest-gap midpoints.
    """

    name = "hcut"

    def select(
        self,
        lam: int,
        previous: EstimatedCDF | None,
        rng: np.random.Generator,
        neighbour_values: np.ndarray | None = None,
    ) -> np.ndarray:
        if previous is None:
            raise EstimationError("HCut needs a previous estimate; use a bootstrap heuristic first")
        quantiles = np.linspace(0.0, 1.0, lam)
        thresholds = previous.quantile(quantiles)
        return fill_unique(thresholds, lam, previous.minimum, previous.maximum)
