"""Uniform bootstrap selection: evenly spaced thresholds."""

from __future__ import annotations

import numpy as np

from repro.errors import EstimationError
from repro.core.cdf import EstimatedCDF
from repro.core.selection.base import SelectionStrategy

__all__ = ["UniformSelection"]


class UniformSelection(SelectionStrategy):
    """Spread thresholds at uniform intervals within the attribute domain.

    The paper's simplest bootstrap (§V): with no prior knowledge of the
    distribution, place the ``λ`` points evenly between the smallest and
    largest attribute value known to the initiator — here, the extremes of
    the previous estimate when available, else of the neighbour sample.
    Performs poorly on skewed distributions (Fig. 5), which motivates the
    neighbour-based bootstrap.
    """

    name = "uniform"

    def select(
        self,
        lam: int,
        previous: EstimatedCDF | None,
        rng: np.random.Generator,
        neighbour_values: np.ndarray | None = None,
    ) -> np.ndarray:
        if previous is not None:
            lo, hi = previous.minimum, previous.maximum
        elif neighbour_values is not None and np.asarray(neighbour_values).size > 0:
            values = np.asarray(neighbour_values, dtype=float)
            lo, hi = float(values.min()), float(values.max())
        else:
            raise EstimationError(
                "uniform selection needs a previous estimate or neighbour values to define the domain"
            )
        if hi == lo:
            return np.full(lam, lo)
        return np.linspace(lo, hi, lam)
