"""MinMax refinement: split wide vertical gaps, merge tight clusters.

Direct implementation of the paper's Figure 3 pseudocode.  MinMax is the
heuristic of choice for *step* CDFs (e.g. installed RAM): by repeatedly
splitting the steepest fragment of the interpolated curve while removing
the midpoint of the flattest three-point cluster, it migrates points onto
the steps over successive aggregation instances.
"""

from __future__ import annotations

import bisect

import numpy as np

from repro.errors import EstimationError
from repro.core.cdf import EstimatedCDF
from repro.core.selection.base import SelectionStrategy, canonical_points, fill_unique

__all__ = ["MinMaxSelection"]


class MinMaxSelection(SelectionStrategy):
    """The paper's MinMax interpolation-point selection (Fig. 3).

    The working set ``H`` starts as the previous interpolation; each
    iteration finds the widest vertical gap between consecutive points of
    ``H`` and the narrowest three-point vertical span in ``H_old``.  While
    the gap exceeds the span, the cluster midpoint is removed from both
    sets and the gap's interpolated midpoint is added to ``H`` — so the
    point count is invariant and newly added midpoints are never removal
    candidates (they exist only in ``H``).
    """

    name = "minmax"

    #: Safety bound on refinement iterations, as a multiple of ``λ``.
    max_iteration_factor: int = 20

    def select(
        self,
        lam: int,
        previous: EstimatedCDF | None,
        rng: np.random.Generator,
        neighbour_values: np.ndarray | None = None,
    ) -> np.ndarray:
        if previous is None:
            raise EstimationError("MinMax needs a previous estimate; use a bootstrap heuristic first")
        ts, fs = canonical_points(previous, lam)
        h: list[tuple[float, float]] = sorted(zip(ts.tolist(), fs.tolist()))
        h_old = list(h)

        for _ in range(self.max_iteration_factor * max(lam, 2)):
            if len(h) < 2 or len(h_old) < 3:
                break
            n = max(range(1, len(h)), key=lambda i: abs(h[i][1] - h[i - 1][1]))
            widest = abs(h[n][1] - h[n - 1][1])
            # Interior points only: the endpoints anchor the attribute
            # domain and must never be removed.
            m = min(range(1, len(h_old) - 1), key=lambda j: abs(h_old[j + 1][1] - h_old[j - 1][1]))
            narrowest = abs(h_old[m + 1][1] - h_old[m - 1][1])
            if not widest > narrowest:
                break
            new_point = (
                (h[n - 1][0] + h[n][0]) / 2.0,
                (h[n - 1][1] + h[n][1]) / 2.0,
            )
            removed = h_old.pop(m)
            if removed in h:
                h.remove(removed)
            bisect.insort(h, new_point)

        thresholds = np.asarray([t for t, _ in h], dtype=float)
        return fill_unique(thresholds, lam, previous.minimum, previous.maximum)
