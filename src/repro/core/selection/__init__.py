"""Interpolation-point selection heuristics (paper §V).

Bootstrap heuristics (no previous estimate): :class:`UniformSelection`,
:class:`NeighbourBasedSelection`.  Refinement heuristics (given a previous
estimate): :class:`HCutSelection`, :class:`MinMaxSelection`,
:class:`LCutSelection`.
"""

from repro.core.selection.base import SelectionStrategy, get_selection, canonical_points, fill_unique
from repro.core.selection.hcut import HCutSelection
from repro.core.selection.lcut import GlobalLCutSelection, LCutSelection
from repro.core.selection.minmax import MinMaxSelection
from repro.core.selection.neighbour import NeighbourBasedSelection
from repro.core.selection.uniform import UniformSelection

__all__ = [
    "SelectionStrategy",
    "get_selection",
    "canonical_points",
    "fill_unique",
    "UniformSelection",
    "NeighbourBasedSelection",
    "HCutSelection",
    "MinMaxSelection",
    "LCutSelection",
    "GlobalLCutSelection",
]
