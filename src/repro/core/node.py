"""Adam2 node logic: starting, joining, gossiping and terminating instances.

:class:`Adam2Node` is deliberately independent of the simulation engine so
it can be unit-tested by wiring two nodes together directly; the engine
adapter lives in :mod:`repro.core.protocol`.
"""

from __future__ import annotations

from typing import Callable, Hashable

import numpy as np

from repro.errors import EstimationError, ProtocolError
from repro.core.cdf import EstimatedCDF
from repro.core.config import Adam2Config
from repro.core.confidence import ConfidenceReport, estimate_errors, select_verification_points
from repro.core.instance import InstanceState
from repro.core.selection import get_selection
from repro.core.sizing import size_from_weight

__all__ = ["Adam2Node", "gossip_exchange", "CompletedInstance"]


class CompletedInstance:
    """Record of one terminated instance at one node."""

    __slots__ = ("instance_id", "estimate", "system_size", "confidence", "round")

    def __init__(
        self,
        instance_id: Hashable,
        estimate: EstimatedCDF,
        system_size: float | None,
        confidence: ConfidenceReport | None,
        round_: int,
    ):
        self.instance_id = instance_id
        self.estimate = estimate
        self.system_size = system_size
        self.confidence = confidence
        self.round = round_


class Adam2Node:
    """One peer executing the Adam2 protocol.

    Args:
        node_id: stable identifier of the peer.
        values: the peer's attribute value(s); scalar or 1-D array
            (multi-value mode, §IV).
        config: protocol parameters.
        rng: the peer's private random generator.
    """

    def __init__(
        self,
        node_id: Hashable,
        values: float | np.ndarray,
        config: Adam2Config,
        rng: np.random.Generator,
    ):
        self.node_id = node_id
        self.values = np.atleast_1d(np.asarray(values, dtype=float))
        if self.values.size == 0:
            raise ProtocolError("node must hold at least one attribute value")
        self.config = config
        self.rng = rng
        #: running instances, keyed by instance id
        self.instances: dict[Hashable, InstanceState] = {}
        #: most recent finalised CDF estimate (None until one completes)
        self.current_estimate: EstimatedCDF | None = None
        #: most recent system-size estimate ``N_p``
        self.size_estimate: float = config.initial_size_estimate
        #: most recent confidence self-assessment
        self.last_confidence: ConfidenceReport | None = None
        #: history of completed instances at this node
        self.completed: list[CompletedInstance] = []
        #: ids of instances this node already terminated (tombstones);
        #: prevents re-joining an instance via a stale in-flight message
        #: after local termination (an async/churn race).
        self.finished_ids: set[Hashable] = set()
        self._instance_counter = 0

    # ------------------------------------------------------------------
    # Instance lifecycle
    # ------------------------------------------------------------------

    def should_start_instance(self) -> bool:
        """Probabilistic self-selection: ``P_s = 1 / (N_p * R)`` (§IV)."""
        probability = 1.0 / (max(self.size_estimate, 1.0) * self.config.instance_frequency)
        return bool(self.rng.random() < probability)

    def start_instance(
        self,
        neighbour_values: np.ndarray | None = None,
        round_: int = 0,
        instance_id: Hashable | None = None,
    ) -> Hashable:
        """Start a new aggregation instance as initiator.

        Thresholds come from the configured refinement heuristic when a
        previous estimate exists, else from the configured bootstrap
        heuristic (which may need ``neighbour_values``).
        """
        if instance_id is None:
            instance_id = (self.node_id, self._instance_counter)
            self._instance_counter += 1
        if instance_id in self.instances:
            raise ProtocolError(f"instance {instance_id!r} already running at this node")

        local = self.values
        pool = local if neighbour_values is None else np.concatenate(
            (np.asarray(neighbour_values, dtype=float), local)
        )
        heuristic = self.config.selection if self.current_estimate is not None else self.config.bootstrap
        thresholds = get_selection(heuristic).select(
            self.config.points, self.current_estimate, self.rng, neighbour_values=pool
        )

        if self.current_estimate is not None:
            domain = (self.current_estimate.minimum, self.current_estimate.maximum)
        else:
            domain = (float(pool.min()), float(pool.max()))
        v_thresholds = select_verification_points(
            self.config.verification_points,
            self.config.verification_target,
            self.current_estimate,
            domain[0],
            domain[1],
        )
        self.instances[instance_id] = InstanceState.initial(
            instance_id=instance_id,
            values=self.values,
            thresholds=thresholds,
            v_thresholds=v_thresholds,
            ttl=self.config.rounds_per_instance,
            initiator=True,
            started_round=round_,
        )
        return instance_id

    def join_instance(self, template: InstanceState, round_: int = 0) -> InstanceState:
        """Initialise local state for an instance first seen via gossip."""
        if template.instance_id in self.instances:
            raise ProtocolError(f"already participating in {template.instance_id!r}")
        if template.instance_id in self.finished_ids:
            raise ProtocolError(f"instance {template.instance_id!r} already terminated here")
        state = InstanceState.initial(
            instance_id=template.instance_id,
            values=self.values,
            thresholds=template.h.thresholds,
            v_thresholds=template.v_thresholds,
            ttl=template.ttl,
            initiator=False,
            started_round=round_,
        )
        self.instances[template.instance_id] = state
        return state

    def end_of_round(self, round_: int = 0) -> list[CompletedInstance]:
        """Decrement TTLs; finalise and drop any expired instances."""
        finished: list[CompletedInstance] = []
        for iid in list(self.instances):
            state = self.instances[iid]
            state.ttl -= 1
            if state.ttl <= 0:
                finished.append(self._finalise(state, round_))
                del self.instances[iid]
        return finished

    def _finalise(self, state: InstanceState, round_: int) -> CompletedInstance:
        """Terminate an instance: build the CDF estimate and bookkeeping."""
        fractions = state.normalised_fractions()
        estimate = EstimatedCDF(
            thresholds=state.h.thresholds,
            fractions=fractions,
            minimum=state.h.minimum,
            maximum=state.h.maximum,
        )
        try:
            system_size = size_from_weight(state.weight)
        except EstimationError:
            system_size = None
        confidence = None
        if state.v_thresholds.size > 0:
            confidence = estimate_errors(estimate, state.v_thresholds, state.normalised_v_fractions())
        estimate.system_size = system_size
        self.current_estimate = estimate
        if system_size is not None:
            self.size_estimate = system_size
        self.last_confidence = confidence
        self.finished_ids.add(state.instance_id)
        completed = CompletedInstance(state.instance_id, estimate, system_size, confidence, round_)
        self.completed.append(completed)
        return completed

    # ------------------------------------------------------------------
    # Bootstrap for nodes that join the system (churn)
    # ------------------------------------------------------------------

    def bootstrap_from(self, neighbour: "Adam2Node") -> None:
        """Copy a neighbour's current estimate and size on system join.

        The paper bootstraps joining nodes with their initial neighbours'
        estimates (§IV and §VII-G); such nodes ignore instances started
        before they entered, which simply means they join only instances
        they first hear of after this call.
        """
        self.current_estimate = neighbour.current_estimate
        self.size_estimate = neighbour.size_estimate


def gossip_exchange(initiator: Adam2Node, responder: Adam2Node, round_: int = 0) -> int:
    """Perform one symmetric push–pull exchange between two peers.

    Every instance active at either peer is exchanged.  For an instance
    known to only one peer the other joins; the configured ``join_mode``
    decides whether the join exchange is mass-conserving (``"symmetric"``,
    default: the joiner initialises and a normal averaging exchange
    follows) or follows the Fig. 1 pseudocode to the letter
    (``"literal"``: the joiner merges the received state, the other peer
    ignores the empty reply and keeps its values unchanged).

    Returns:
        The number of instances exchanged (for cost accounting).
    """
    if initiator is responder:
        raise ProtocolError("a node cannot gossip with itself")
    join_mode = initiator.config.join_mode
    ids = set(initiator.instances) | set(responder.instances)
    for iid in ids:
        state_i = initiator.instances.get(iid)
        state_r = responder.instances.get(iid)
        if state_i is not None and state_r is not None:
            snap_i = state_i.snapshot()
            state_i.merge_from(state_r)
            state_r.merge_from(snap_i)
        elif state_i is None:
            if iid not in initiator.finished_ids:
                _join_and_merge(initiator, state_r, join_mode, round_)
        else:
            if iid not in responder.finished_ids:
                _join_and_merge(responder, state_i, join_mode, round_)
    return len(ids)


def _join_and_merge(joiner: Adam2Node, remote: InstanceState, join_mode: str, round_: int) -> None:
    fresh = joiner.join_instance(remote, round_=round_)
    if join_mode == "symmetric":
        snap = fresh.snapshot()
        fresh.merge_from(remote)
        remote.merge_from(snap)
    else:  # literal Fig. 1 semantics: only the joiner updates
        fresh.merge_from(remote)
