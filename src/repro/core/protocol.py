"""Engine adapter: running Adam2 on the simulation substrate.

:class:`Adam2Protocol` wires :class:`repro.core.node.Adam2Node` into the
round-based engine: it creates per-node protocol state, performs the
push–pull exchanges, delivers TTL ticks, handles churn bootstrap, and
schedules new aggregation instances either probabilistically (the paper's
``P_s = 1/(N_p · R)`` self-selection) or manually from experiment code.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.core.config import Adam2Config
from repro.core.node import Adam2Node, gossip_exchange
from repro.rngs import spawn
from repro.simulation.engine import Engine, Protocol
from repro.simulation.node_base import SimNode

__all__ = ["Adam2Protocol"]

_SCHEDULERS = ("probabilistic", "manual")


class Adam2Protocol(Protocol):
    """Adam2 as an engine protocol.

    Args:
        config: protocol parameters shared by all nodes.
        scheduler: ``"probabilistic"`` lets every node self-select as
            initiator each round with probability ``1/(N_p · R)``;
            ``"manual"`` starts instances only via
            :meth:`trigger_instance` (deterministic experiments).
        neighbour_sample: how many neighbour attribute values the
            initiator collects for the neighbour-based bootstrap.
    """

    name = "adam2"

    def __init__(self, config: Adam2Config, scheduler: str = "manual", neighbour_sample: int | None = None):
        if scheduler not in _SCHEDULERS:
            raise SimulationError(f"unknown scheduler {scheduler!r}; expected one of {_SCHEDULERS}")
        self.config = config
        self.scheduler = scheduler
        self.neighbour_sample = neighbour_sample or max(config.points, 20)
        #: instance ids started so far (for experiments/tests)
        self.started_instances: list = []

    # ------------------------------------------------------------------
    # Engine hooks
    # ------------------------------------------------------------------

    def on_node_added(self, node: SimNode, engine: Engine) -> None:
        adam2 = Adam2Node(node.node_id, node.values, self.config, spawn(node.rng))
        node.state[self.name] = adam2
        # Churned-in nodes are bootstrapped by an initial neighbour
        # (paper §IV): copy its current estimate and size estimate.
        if engine.round > 0 and engine.node_count > 1:
            for peer_id in engine.overlay.neighbours(node.node_id)[:5]:
                peer = engine.nodes.get(peer_id)
                if peer is None or peer is node:
                    continue
                peer_adam2 = peer.state.get(self.name)
                if peer_adam2 is not None and peer_adam2.current_estimate is not None:
                    adam2.bootstrap_from(peer_adam2)
                    break

    def exchange(self, initiator: SimNode, responder: SimNode, engine: Engine) -> tuple[int, int]:
        a: Adam2Node = initiator.state[self.name]
        b: Adam2Node = responder.state[self.name]
        # A node evaluates its attribute only when it creates or joins an
        # instance (§VII-F) — refresh so joins see the current value.
        a.values = initiator.values
        b.values = responder.values
        active = len(set(a.instances) | set(b.instances))
        if active == 0:
            return 0, 0
        gossip_exchange(a, b, round_=engine.round)
        payload = active * self.config.message_bytes()
        return payload, payload

    def after_node_round(self, node: SimNode, engine: Engine) -> None:
        adam2: Adam2Node = node.state[self.name]
        adam2.end_of_round(engine.round)
        if self.scheduler == "probabilistic" and adam2.should_start_instance():
            self._start_at(node, engine)

    # ------------------------------------------------------------------
    # Instance management
    # ------------------------------------------------------------------

    def trigger_instance(self, engine: Engine, node: SimNode | None = None):
        """Start an instance at ``node`` (or a random node) immediately."""
        node = node or engine.random_node()
        return self._start_at(node, engine)

    def _start_at(self, node: SimNode, engine: Engine):
        adam2: Adam2Node = node.state[self.name]
        adam2.values = node.values
        neighbour_values = self._neighbour_values(node, engine)
        instance_id = adam2.start_instance(neighbour_values=neighbour_values, round_=engine.round)
        self.started_instances.append(instance_id)
        return instance_id

    def _neighbour_values(self, node: SimNode, engine: Engine) -> np.ndarray:
        neighbour_ids = [i for i in engine.overlay.neighbours(node.node_id) if i in engine.nodes]
        if not neighbour_ids:
            return node.values
        if len(neighbour_ids) > self.neighbour_sample:
            idx = node.rng.choice(len(neighbour_ids), size=self.neighbour_sample, replace=False)
            neighbour_ids = [neighbour_ids[int(i)] for i in idx]
        values = [engine.nodes[i].values for i in neighbour_ids]
        return np.concatenate(values)

    # ------------------------------------------------------------------
    # Inspection helpers for experiments/tests
    # ------------------------------------------------------------------

    def adam2_nodes(self, engine: Engine) -> list[Adam2Node]:
        return [node.state[self.name] for node in engine.nodes.values()]

    def estimates(self, engine: Engine, include_undefined: bool = False) -> list:
        """Current estimates of all live nodes (skipping nodes without one)."""
        out = []
        for adam2 in self.adam2_nodes(engine):
            if adam2.current_estimate is not None:
                out.append(adam2.current_estimate)
            elif include_undefined:
                out.append(None)
        return out

    def active_instance_count(self, engine: Engine) -> int:
        return sum(len(adam2.instances) for adam2 in self.adam2_nodes(engine))
