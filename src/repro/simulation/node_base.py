"""Simulated node container."""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import SimulationError

__all__ = ["SimNode"]


class SimNode:
    """A node in the simulated system.

    A ``SimNode`` is a passive container: its behaviour comes from the
    :class:`~repro.simulation.engine.Protocol` objects registered with the
    engine, which keep their per-node state in :attr:`state` under their
    protocol name.

    Attributes:
        node_id: stable unique identifier (never reused after churn).
        values: the node's attribute value(s) as a 1-D array.
        rng: the node's private random generator.
        joined_round: engine round at which the node entered the system.
        state: per-protocol state, keyed by protocol name.
    """

    __slots__ = ("node_id", "values", "rng", "joined_round", "state")

    def __init__(
        self,
        node_id: int,
        values: float | np.ndarray,
        rng: np.random.Generator,
        joined_round: int = 0,
    ):
        self.node_id = node_id
        self.values = np.atleast_1d(np.asarray(values, dtype=float))
        if self.values.size == 0:
            raise SimulationError("node must hold at least one attribute value")
        self.rng = rng
        self.joined_round = joined_round
        self.state: dict[str, Any] = {}

    @property
    def value(self) -> float:
        """The node's attribute value (single-value protocols)."""
        return float(self.values[0])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<SimNode {self.node_id} values={self.values[:3]!r}>"
