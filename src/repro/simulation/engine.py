"""The synchronous round-based simulation engine.

Each round the engine:

1. applies churn (nodes leave, replacements join and are bootstrapped);
2. lets a dynamic overlay refresh its views;
3. visits every live node in a fresh random order; each node selects one
   overlay neighbour and performs one push–pull exchange per registered
   protocol (exchanges are sequential within the round, as in PeerSim's
   cycle-driven mode — a node's later exchange sees the effects of its
   earlier ones);
4. delivers a per-node timer tick to every protocol (TTL countdowns);
5. invokes observers.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Iterable

import numpy as np

from repro.errors import SimulationError
from repro.obs.observer import NULL_HUB, ObserverHub
from repro.rngs import spawn
from repro.overlay.base import Overlay
from repro.simulation.network import NetworkAccounting
from repro.simulation.node_base import SimNode

__all__ = ["Engine", "Protocol"]


class Protocol(ABC):
    """A gossip protocol running on the engine.

    Protocols keep their per-node state in ``node.state[self.name]``.
    """

    #: unique registry name; also the key into ``SimNode.state``
    name: str = "protocol"

    @abstractmethod
    def on_node_added(self, node: SimNode, engine: "Engine") -> None:
        """Initialise per-node state (called for initial and churned-in nodes)."""

    def on_node_removed(self, node: SimNode, engine: "Engine") -> None:
        """Clean up when a node leaves (default: nothing)."""

    def before_round(self, engine: "Engine") -> None:
        """Hook at the start of each round (default: nothing)."""

    @abstractmethod
    def exchange(self, initiator: SimNode, responder: SimNode, engine: "Engine") -> tuple[int, int]:
        """One push–pull exchange; returns (request_bytes, response_bytes)."""

    def after_node_round(self, node: SimNode, engine: "Engine") -> None:
        """Per-node timer tick at the end of each round (default: nothing)."""

    def after_round(self, engine: "Engine") -> None:
        """Hook at the end of each round (default: nothing)."""


class Engine:
    """Synchronous gossip simulator."""

    def __init__(
        self,
        overlay: Overlay,
        protocols: list[Protocol],
        rng: np.random.Generator,
        churn=None,
        network: NetworkAccounting | None = None,
        observers: Iterable[Callable[["Engine"], None]] = (),
        loss_rate: float = 0.0,
        sanitize: bool | None = None,
        obs: ObserverHub | None = None,
    ):
        names = [p.name for p in protocols]
        if len(set(names)) != len(names):
            raise SimulationError(f"duplicate protocol names: {names}")
        if not 0.0 <= loss_rate < 1.0:
            raise SimulationError(f"loss rate must be in [0, 1), got {loss_rate}")
        self.overlay = overlay
        self.protocols = list(protocols)
        # Opt-in invariant sanitizer (ADAM2_SANITIZE=1 or sanitize=True):
        # wrap every protocol so each exchange is mass-checked.
        from repro.lint.sanitizer import SanitizedProtocol, sanitize_enabled

        if sanitize_enabled(sanitize):
            self.protocols = [SanitizedProtocol(p) for p in self.protocols]
        self.rng = rng
        self.churn = churn
        self.network = network or NetworkAccounting()
        self.observers = list(observers)
        #: observability hub (:mod:`repro.obs`); default hub is disabled,
        #: so instrumentation costs one no-op context per round.
        self.obs = obs if obs is not None else NULL_HUB
        #: probability that a whole push–pull exchange is lost (models a
        #: dropped UDP request or response; gossip protocols tolerate
        #: loss by design — a lost exchange merely delays convergence).
        self.loss_rate = loss_rate
        #: exchanges dropped so far (observability for tests/experiments)
        self.exchanges_lost = 0
        self.round: int = 0
        self.nodes: dict[int, SimNode] = {}
        self._next_node_id = 0

    # ------------------------------------------------------------------
    # Population management
    # ------------------------------------------------------------------

    def allocate_node_id(self) -> int:
        node_id = self._next_node_id
        self._next_node_id += 1
        return node_id

    def add_node(self, values: float | np.ndarray, bootstrap: list[int] | None = None) -> SimNode:
        """Create a node, wire it into the overlay, init protocol state."""
        node_id = self.allocate_node_id()
        node = SimNode(node_id, values, spawn(self.rng), joined_round=self.round)
        self.nodes[node_id] = node
        self.overlay.add_node(node_id, bootstrap)
        for protocol in self.protocols:
            protocol.on_node_added(node, self)
        return node

    def populate(self, values: np.ndarray) -> list[SimNode]:
        """Create the initial population (overlay must already know ids).

        Used by :func:`repro.simulation.runner.build_engine`, which wires
        the overlay over pre-allocated ids; prefer that helper.
        """
        nodes = []
        for value in np.asarray(values, dtype=float):
            node_id = self.allocate_node_id()
            node = SimNode(node_id, value, spawn(self.rng), joined_round=0)
            self.nodes[node_id] = node
            nodes.append(node)
        for node in nodes:
            for protocol in self.protocols:
                protocol.on_node_added(node, self)
        return nodes

    def remove_node(self, node_id: int) -> None:
        node = self.nodes.pop(node_id, None)
        if node is None:
            raise SimulationError(f"cannot remove unknown node {node_id}")
        self.overlay.remove_node(node_id)
        for protocol in self.protocols:
            protocol.on_node_removed(node, self)

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    def live_nodes(self) -> list[SimNode]:
        return list(self.nodes.values())

    def random_node(self) -> SimNode:
        ids = list(self.nodes)
        if not ids:
            raise SimulationError("system is empty")
        return self.nodes[ids[int(self.rng.integers(0, len(ids)))]]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run_round(self) -> None:
        """Execute one full gossip round."""
        with self.obs.span("round"):
            self._run_round()

    def _run_round(self) -> None:
        if self.churn is not None:
            self.churn.apply(self)
        self.overlay.step(self.rng)
        for protocol in self.protocols:
            protocol.before_round(self)

        ids = list(self.nodes)
        order = self.rng.permutation(len(ids))
        for idx in order:
            node_id = ids[int(idx)]
            node = self.nodes.get(node_id)
            if node is None:  # removed mid-round by a protocol hook
                continue
            peer_id = self.overlay.select_neighbour(node_id, self.rng)
            if peer_id is None:
                continue
            peer = self.nodes.get(peer_id)
            if peer is None or peer is node:
                continue
            if self.loss_rate > 0.0 and self.rng.random() < self.loss_rate:
                self.exchanges_lost += 1
                continue
            for protocol in self.protocols:
                req_bytes, resp_bytes = protocol.exchange(node, peer, self)
                self.network.record_exchange(node_id, peer_id, req_bytes, resp_bytes)

        for node in list(self.nodes.values()):
            for protocol in self.protocols:
                protocol.after_node_round(node, self)
        for protocol in self.protocols:
            protocol.after_round(self)
        self.network.end_round()
        self.round += 1
        for observer in self.observers:
            observer(self)

    def run(self, rounds: int) -> None:
        """Execute ``rounds`` consecutive rounds."""
        if rounds < 0:
            raise SimulationError(f"cannot run {rounds} rounds")
        for _ in range(rounds):
            self.run_round()

    def attribute_values(self) -> np.ndarray:
        """All attribute values of live nodes (the ground-truth population)."""
        if not self.nodes:
            raise SimulationError("system is empty")
        return np.concatenate([node.values for node in self.nodes.values()])
