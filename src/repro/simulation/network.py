"""Network cost accounting.

The paper's cost evaluation (§VII-I) counts messages and bytes per node:
every gossip exchange is one request plus one response, so each node sends
and receives two messages per round on average (one exchange it starts,
one it answers).  :class:`NetworkAccounting` tracks totals and per-node
tallies so experiments can report the 40 kB/instance and 120 kB/estimate
figures of the paper.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

__all__ = ["NetworkAccounting", "TrafficSummary"]


@dataclass(frozen=True, slots=True)
class TrafficSummary:
    """Aggregate traffic statistics over a simulation period."""

    messages_total: int
    bytes_total: int
    rounds: int
    node_count: int

    @property
    def messages_per_node(self) -> float:
        return self.messages_total / self.node_count if self.node_count else 0.0

    @property
    def bytes_per_node(self) -> float:
        return self.bytes_total / self.node_count if self.node_count else 0.0

    @property
    def bytes_per_node_per_round(self) -> float:
        if not self.node_count or not self.rounds:
            return 0.0
        return self.bytes_total / (self.node_count * self.rounds)


class NetworkAccounting:
    """Counts messages and payload bytes sent by each node."""

    def __init__(self) -> None:
        self.messages_sent: defaultdict[int, int] = defaultdict(int)
        self.bytes_sent: defaultdict[int, int] = defaultdict(int)
        self.rounds_observed = 0

    def record_exchange(self, initiator: int, responder: int, request_bytes: int, response_bytes: int) -> None:
        """Record one request/response pair."""
        self.messages_sent[initiator] += 1
        self.bytes_sent[initiator] += int(request_bytes)
        self.messages_sent[responder] += 1
        self.bytes_sent[responder] += int(response_bytes)

    def end_round(self) -> None:
        self.rounds_observed += 1

    def reset(self) -> None:
        self.messages_sent.clear()
        self.bytes_sent.clear()
        self.rounds_observed = 0

    def summary(self, node_count: int | None = None) -> TrafficSummary:
        nodes = node_count if node_count is not None else len(self.messages_sent)
        return TrafficSummary(
            messages_total=sum(self.messages_sent.values()),
            bytes_total=sum(self.bytes_sent.values()),
            rounds=self.rounds_observed,
            node_count=max(nodes, 1) if (self.messages_sent or nodes) else 0,
        )
