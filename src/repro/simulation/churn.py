"""Churn models (paper §VII-G).

The paper models churn by replacing a fixed fraction of nodes per round:
a departing node vanishes with all its protocol state, and a fresh node
joins with a new attribute value drawn from the same distribution,
bootstrapped by its initial neighbours.  The reference rate — gossip
period 1 s, mean session 15 min — is about 0.1 % of nodes per round.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import ConfigurationError
from repro.overlay.bootstrap import bootstrap_ids
from repro.workloads.base import AttributeWorkload

__all__ = ["ChurnModel", "NoChurn", "ReplacementChurn"]


class ChurnModel(ABC):
    """Mutates the engine population at the start of each round."""

    @abstractmethod
    def apply(self, engine) -> None:
        """Remove/add nodes on ``engine`` for this round."""


class NoChurn(ChurnModel):
    """Static membership."""

    def apply(self, engine) -> None:
        return None


class ReplacementChurn(ChurnModel):
    """Replace a fraction of nodes per round, keeping N constant.

    Args:
        rate: expected fraction of nodes replaced per round (e.g. 0.001
            for the paper's reference churn of 0.1 %/round).
        workload: distribution from which replacement nodes draw their
            attribute values.
        rng: generator driving victim selection and sampling.
        bootstrap_contacts: how many live peers a joiner is introduced to.
    """

    def __init__(
        self,
        rate: float,
        workload: AttributeWorkload,
        rng: np.random.Generator,
        bootstrap_contacts: int = 5,
    ):
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(f"churn rate must be in [0, 1], got {rate}")
        if bootstrap_contacts < 1:
            raise ConfigurationError("bootstrap_contacts must be >= 1")
        self.rate = rate
        self.workload = workload
        self.rng = rng
        self.bootstrap_contacts = bootstrap_contacts
        #: total nodes replaced so far (for observers/tests)
        self.replaced = 0

    def apply(self, engine) -> None:
        if self.rate <= 0.0 or engine.node_count < 3:
            return
        n = engine.node_count
        k = int(self.rng.binomial(n, self.rate))
        k = min(k, n - 2)  # never empty the system
        if k == 0:
            return
        ids = list(engine.nodes)
        victims = self.rng.choice(len(ids), size=k, replace=False)
        for v in victims:
            engine.remove_node(ids[int(v)])
        live = list(engine.nodes)
        values = self.workload.sample(k, self.rng)
        for value in values:
            contacts = bootstrap_ids(live, self.bootstrap_contacts, self.rng)
            engine.add_node(value, bootstrap=contacts)
        self.replaced += k
