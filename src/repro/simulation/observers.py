"""Per-round observation hooks."""

from __future__ import annotations

from typing import Any, Callable

__all__ = ["Observer", "RoundRecorder"]

#: An observer is any callable invoked with the engine after each round.
Observer = Callable[[Any], None]


class RoundRecorder:
    """Record a per-round measurement into a list.

    Args:
        probe: function of the engine returning the value to record.
        every: record every ``every``-th round (1 = every round).
    """

    def __init__(self, probe: Callable[[Any], Any], every: int = 1):
        if every < 1:
            raise ValueError("every must be >= 1")
        self.probe = probe
        self.every = every
        self.rounds: list[int] = []
        self.values: list[Any] = []

    def __call__(self, engine) -> None:
        if engine.round % self.every != 0:
            return
        self.rounds.append(engine.round)
        self.values.append(self.probe(engine))

    def last(self) -> Any:
        if not self.values:
            raise ValueError("no observations recorded yet")
        return self.values[-1]
