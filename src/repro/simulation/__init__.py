"""Round-based gossip simulation engine (PeerSim replacement).

The paper evaluates Adam2 in PeerSim's cycle-driven mode: in every round
each node initiates one gossip exchange with a random overlay neighbour,
exchanges proceed sequentially within the round, and protocols get a
per-round timer tick.  This package reproduces that model with
object-per-node fidelity; the vectorised large-N engine lives in
:mod:`repro.fastsim`.
"""

from repro.simulation.churn import ChurnModel, NoChurn, ReplacementChurn
from repro.simulation.engine import Engine, Protocol
from repro.simulation.network import NetworkAccounting
from repro.simulation.node_base import SimNode
from repro.simulation.observers import Observer, RoundRecorder
from repro.simulation.runner import build_engine, run_until

__all__ = [
    "Engine",
    "Protocol",
    "SimNode",
    "NetworkAccounting",
    "ChurnModel",
    "NoChurn",
    "ReplacementChurn",
    "Observer",
    "RoundRecorder",
    "build_engine",
    "run_until",
    "run_adam2",
]


def run_adam2(config, workload, **kwargs):
    """Deprecated: use ``repro.api.run(config, workload, backend="round")``."""
    import warnings

    warnings.warn(
        "repro.simulation.run_adam2 is deprecated; use repro.api.run(..., backend='round')",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.api import run

    return run(config, workload, backend="round", **kwargs)
