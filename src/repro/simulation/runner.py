"""Convenience helpers for building and running engines."""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

from repro.errors import SimulationError
from repro.rngs import spawn
from repro.overlay.base import Overlay
from repro.overlay.random_graph import FullMeshOverlay, RandomGraphOverlay
from repro.overlay.cyclon import CyclonOverlay
from repro.overlay.peer_sampling import PeerSamplingOverlay
from repro.simulation.engine import Engine, Protocol
from repro.workloads.base import AttributeWorkload

__all__ = ["build_engine", "run_until"]


def build_engine(
    workload: AttributeWorkload,
    n_nodes: int,
    protocols: list[Protocol],
    rng: np.random.Generator,
    overlay: str | Overlay = "mesh",
    degree: int = 20,
    churn=None,
    observers: Iterable = (),
    loss_rate: float = 0.0,
    sanitize: bool | None = None,
    obs=None,
) -> Engine:
    """Build an engine with an initial population drawn from a workload.

    Args:
        workload: source of attribute values.
        n_nodes: initial population size.
        protocols: protocols to register.
        rng: experiment root generator (children are spawned from it).
        overlay: ``"mesh"`` (idealised uniform sampling), ``"random"``
            (static random graph of ``degree``), ``"sampling"``
            (Newscast peer sampling with view size ``degree``),
            ``"cyclon"`` (Cyclon shuffle peer sampling), or a
            ready :class:`~repro.overlay.base.Overlay` instance.
        degree: link/view size for the graph overlays.
        churn: optional churn model.
        observers: per-round observer callables.
        sanitize: enable the invariant sanitizer (default: follow the
            ``ADAM2_SANITIZE`` env var).
        obs: observability hub (:class:`repro.obs.ObserverHub`).
    """
    if n_nodes < 2:
        raise SimulationError("need at least 2 nodes")
    ids = list(range(n_nodes))
    if isinstance(overlay, Overlay):
        overlay_obj = overlay
    elif overlay == "mesh":
        overlay_obj = FullMeshOverlay(ids)
    elif overlay == "random":
        overlay_obj = RandomGraphOverlay(ids, degree=degree, rng=spawn(rng))
    elif overlay == "sampling":
        overlay_obj = PeerSamplingOverlay(ids, capacity=degree, rng=spawn(rng))
    elif overlay == "cyclon":
        overlay_obj = CyclonOverlay(ids, capacity=degree, rng=spawn(rng))
    else:
        raise SimulationError(f"unknown overlay kind {overlay!r}")
    engine = Engine(
        overlay=overlay_obj,
        protocols=protocols,
        rng=spawn(rng),
        churn=churn,
        observers=observers,
        loss_rate=loss_rate,
        sanitize=sanitize,
        obs=obs,
    )
    values = workload.sample(n_nodes, spawn(rng))
    engine.populate(values)
    return engine


def run_until(engine: Engine, predicate: Callable[[Engine], bool], max_rounds: int = 10_000) -> int:
    """Run rounds until ``predicate(engine)`` holds; returns rounds run.

    Raises:
        SimulationError: if the predicate never holds within
            ``max_rounds`` rounds.
    """
    for executed in range(max_rounds):
        if predicate(engine):
            return executed
        engine.run_round()
    if predicate(engine):
        return max_rounds
    raise SimulationError(f"predicate not satisfied within {max_rounds} rounds")
