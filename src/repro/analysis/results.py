"""Generic experiment result container.

Every experiment produces an :class:`ExperimentResult`: an identifying
name, the parameters it ran with, and a list of uniform row dicts — the
same rows the paper's corresponding table or figure plots.  Keeping the
shape generic lets the reporting, benchmark and CLI layers treat all
experiments identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import ReproError

__all__ = ["ExperimentResult"]


@dataclass
class ExperimentResult:
    """Structured outcome of one experiment run."""

    name: str
    description: str = ""
    params: dict[str, Any] = field(default_factory=dict)
    rows: list[dict[str, Any]] = field(default_factory=list)

    def add_row(self, **fields: Any) -> None:
        self.rows.append(fields)

    def columns(self) -> list[str]:
        """Union of row keys, in first-appearance order."""
        seen: dict[str, None] = {}
        for row in self.rows:
            for key in row:
                seen.setdefault(key)
        return list(seen)

    def column(self, key: str) -> list[Any]:
        """Extract one column (missing cells raise)."""
        try:
            return [row[key] for row in self.rows]
        except KeyError:
            raise ReproError(f"column {key!r} missing from result {self.name!r}") from None

    def filter(self, **match: Any) -> "ExperimentResult":
        """Rows whose fields equal all of ``match``."""
        rows = [r for r in self.rows if all(r.get(k) == v for k, v in match.items())]
        return ExperimentResult(self.name, self.description, dict(self.params), rows)

    def __len__(self) -> int:
        return len(self.rows)
