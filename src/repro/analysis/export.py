"""CSV export/import for experiment results.

Figures are typically plotted outside this library (gnuplot, matplotlib,
spreadsheets); :func:`write_csv` dumps any :class:`ExperimentResult` into
a plain CSV with a commented header carrying the experiment parameters,
and :func:`read_csv` round-trips it.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.errors import ReproError
from repro.analysis.results import ExperimentResult

__all__ = ["write_csv", "read_csv"]


def write_csv(result: ExperimentResult, path: str | Path) -> None:
    """Write a result's rows as CSV (params in a ``#`` header line)."""
    path = Path(path)
    columns = result.columns()
    with path.open("w", encoding="utf-8", newline="") as fh:
        meta = {"name": result.name, "description": result.description, "params": result.params}
        fh.write(f"# {json.dumps(meta)}\n")
        writer = csv.DictWriter(fh, fieldnames=columns, restval="")
        writer.writeheader()
        for row in result.rows:
            writer.writerow(row)


def read_csv(path: str | Path) -> ExperimentResult:
    """Load a result written by :func:`write_csv`.

    Cells are parsed back to int/float where possible; empty cells are
    dropped from their row (matching the sparse-row semantics of
    :class:`ExperimentResult`).
    """
    path = Path(path)
    if not path.exists():
        raise ReproError(f"no such result file: {path}")
    with path.open("r", encoding="utf-8") as fh:
        first = fh.readline()
        if not first.startswith("#"):
            raise ReproError(f"{path} is missing the metadata header")
        try:
            meta = json.loads(first.lstrip("# ").strip())
        except json.JSONDecodeError as exc:
            raise ReproError(f"malformed metadata header in {path}") from exc
        reader = csv.DictReader(fh)
        result = ExperimentResult(
            name=meta.get("name", path.stem),
            description=meta.get("description", ""),
            params=meta.get("params", {}),
        )
        for raw in reader:
            row = {}
            for key, cell in raw.items():
                if cell == "" or cell is None:
                    continue
                row[key] = _parse(cell)
            result.add_row(**row)
    return result


def _parse(cell: str):
    for caster in (int, float):
        try:
            return caster(cell)
        except ValueError:
            continue
    return cell
