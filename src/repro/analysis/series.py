"""Named (x, y) series, the unit of a figure reproduction."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ReproError

__all__ = ["Series"]


@dataclass
class Series:
    """One curve of a figure: a label and matching x/y sequences."""

    label: str
    x: list[float] = field(default_factory=list)
    y: list[float] = field(default_factory=list)

    def append(self, x: float, y: float) -> None:
        self.x.append(float(x))
        self.y.append(float(y))

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ReproError(f"series {self.label!r}: x and y lengths differ")

    def __len__(self) -> int:
        return len(self.x)

    def final(self) -> float:
        if not self.y:
            raise ReproError(f"series {self.label!r} is empty")
        return self.y[-1]

    def min_y(self) -> float:
        if not self.y:
            raise ReproError(f"series {self.label!r} is empty")
        return float(np.min(self.y))

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        return np.asarray(self.x, dtype=float), np.asarray(self.y, dtype=float)
