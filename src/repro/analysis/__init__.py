"""Result containers and plain-text reporting for experiments."""

from repro.analysis.results import ExperimentResult
from repro.analysis.series import Series
from repro.analysis.report import format_table, format_series
from repro.analysis.export import read_csv, write_csv

__all__ = ["ExperimentResult", "Series", "format_table", "format_series", "write_csv", "read_csv"]
