"""Plain-text rendering of experiment results (no plotting dependency).

The benchmark harness and the CLI print the same rows/series the paper's
tables and figures report; these helpers format them as aligned ASCII so
``EXPERIMENTS.md`` can embed them verbatim.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.analysis.results import ExperimentResult
from repro.analysis.series import Series

__all__ = ["format_table", "format_series", "format_value"]


def format_value(value: Any) -> str:
    """Human-friendly cell formatting (scientific for small floats)."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if value == 0:
        return "0"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    if abs(value) >= 0.01:
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return f"{value:.3e}"


def format_table(result: ExperimentResult) -> str:
    """Render an :class:`ExperimentResult` as an aligned ASCII table."""
    lines = [f"== {result.name} =="]
    if result.description:
        lines.append(result.description)
    if result.params:
        lines.append("params: " + ", ".join(f"{k}={v}" for k, v in result.params.items()))
    columns = result.columns()
    if not columns:
        lines.append("(no rows)")
        return "\n".join(lines)
    cells = [[format_value(row.get(col, "")) for col in columns] for row in result.rows]
    widths = [max(len(col), *(len(r[i]) for r in cells)) if cells else len(col) for i, col in enumerate(columns)]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(series_list: Iterable[Series], x_label: str = "x") -> str:
    """Render several series as one table keyed by x."""
    series_list = list(series_list)
    xs: dict[float, None] = {}
    for series in series_list:
        for x in series.x:
            xs.setdefault(x)
    result = ExperimentResult(name="series")
    for x in xs:
        row: dict[str, Any] = {x_label: x}
        for series in series_list:
            try:
                row[series.label] = series.y[series.x.index(x)]
            except ValueError:
                row[series.label] = ""
        result.add_row(**row)
    # Drop the decorative header the table formatter would add.
    return "\n".join(format_table(result).splitlines()[1:])
