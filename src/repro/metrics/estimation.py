"""Accuracy of the confidence estimation itself (paper §VII-H).

The paper evaluates dynamic confidence estimation by the *relative*
difference between a node's self-assessment and its true error:
``|Err(p) − EstErr(p)| / Err(p)``, averaged over nodes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EstimationError

__all__ = ["confidence_estimation_error"]


def confidence_estimation_error(
    true_errors: np.ndarray,
    estimated_errors: np.ndarray,
    floor: float = 1e-12,
) -> float:
    """Mean relative error of the nodes' error self-assessments.

    Args:
        true_errors: per-node true error metric values (``Err_a(p)`` or
            ``Err_m(p)``).
        estimated_errors: the corresponding self-assessments
            (``EstErr_a(p)`` / ``EstErr_m(p)``).
        floor: nodes whose true error is below this are skipped (the
            relative metric is undefined at zero error).
    """
    true_errors = np.asarray(true_errors, dtype=float)
    estimated_errors = np.asarray(estimated_errors, dtype=float)
    if true_errors.shape != estimated_errors.shape:
        raise EstimationError("error arrays must have matching shapes")
    mask = true_errors > floor
    if not mask.any():
        raise EstimationError("all true errors are below the floor; relative metric undefined")
    rel = np.abs(true_errors[mask] - estimated_errors[mask]) / true_errors[mask]
    return float(rel.mean())
