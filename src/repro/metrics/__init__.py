"""Evaluation metrics: the paper's error definitions and cost accounting."""

from repro.metrics.error import (
    aggregate_errors,
    cdf_errors,
    error_grid,
    errors_at_points,
    matrix_errors,
)
from repro.metrics.cost import CostModel, instance_cost
from repro.metrics.convergence import ConvergenceTrace, fit_exponential_rate
from repro.metrics.estimation import confidence_estimation_error

__all__ = [
    "error_grid",
    "cdf_errors",
    "errors_at_points",
    "matrix_errors",
    "aggregate_errors",
    "CostModel",
    "instance_cost",
    "ConvergenceTrace",
    "fit_exponential_rate",
    "confidence_estimation_error",
]
