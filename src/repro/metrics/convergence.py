"""Per-round convergence traces and exponential-rate fitting.

The paper's Figure 6 shows the error at the interpolation points decaying
"at an almost perfectly exponential rate" once the instance has reached
all nodes.  :func:`fit_exponential_rate` quantifies that: a least-squares
fit of ``log(err)`` against the round index over a chosen window.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import EstimationError
from repro.types import ErrorPair

__all__ = ["ConvergenceTrace", "fit_exponential_rate"]


@dataclass
class ConvergenceTrace:
    """Error metrics sampled once per round during an instance.

    Four parallel series, exactly the four curves of the paper's
    Figure 6: maximum/average error over the entire CDF domain and
    restricted to the interpolation points.
    """

    rounds: list[int] = field(default_factory=list)
    max_entire: list[float] = field(default_factory=list)
    avg_entire: list[float] = field(default_factory=list)
    max_points: list[float] = field(default_factory=list)
    avg_points: list[float] = field(default_factory=list)

    def record(self, round_: int, entire: ErrorPair, at_points: ErrorPair) -> None:
        self.rounds.append(int(round_))
        self.max_entire.append(entire.maximum)
        self.avg_entire.append(entire.average)
        self.max_points.append(at_points.maximum)
        self.avg_points.append(at_points.average)

    def __len__(self) -> int:
        return len(self.rounds)

    def final(self) -> tuple[ErrorPair, ErrorPair]:
        if not self.rounds:
            raise EstimationError("empty convergence trace")
        return (
            ErrorPair(self.max_entire[-1], self.avg_entire[-1]),
            ErrorPair(self.max_points[-1], self.avg_points[-1]),
        )


def fit_exponential_rate(rounds: np.ndarray, errors: np.ndarray, floor: float = 1e-14) -> float:
    """Per-round decay factor of an exponentially converging error series.

    Fits ``log(err) ~ a + b * round`` over the samples above ``floor`` and
    returns ``exp(b)`` — e.g. 0.5 means the error halves every round.

    Raises:
        EstimationError: with fewer than two usable samples.
    """
    rounds = np.asarray(rounds, dtype=float)
    errors = np.asarray(errors, dtype=float)
    if rounds.shape != errors.shape:
        raise EstimationError("rounds and errors must have matching shapes")
    mask = errors > floor
    if mask.sum() < 2:
        raise EstimationError("need at least two samples above the floor to fit a rate")
    x = rounds[mask]
    y = np.log(errors[mask])
    slope = np.polyfit(x, y, 1)[0]
    return float(np.exp(slope))
