"""Communication cost model (paper §VII-I).

The paper's accounting: a gossip message carries the ``λ`` interpolation
pairs (~16 bytes each, so ~800 bytes at λ=50); each node sends two and
receives two messages per round (one exchange it starts, one it answers);
an instance of 25 rounds therefore costs ~50 messages / ~40 kB sent per
node, and a 3-instance converged estimate ~150 messages / ~120 kB —
independent of the system size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.core.config import Adam2Config

__all__ = ["CostModel", "instance_cost"]


@dataclass(frozen=True, slots=True)
class CostModel:
    """Predicted per-node cost of a CDF estimation campaign.

    Attributes:
        message_bytes: size of one gossip message.
        messages_sent_per_round: average messages a node sends per round
            (2 for symmetric push–pull: one request + one response).
        rounds_per_instance: instance duration.
        instances: instances until convergence (3 in the paper).
    """

    message_bytes: int
    messages_sent_per_round: float = 2.0
    rounds_per_instance: int = 25
    instances: int = 3

    def __post_init__(self) -> None:
        if self.message_bytes <= 0 or self.rounds_per_instance <= 0 or self.instances <= 0:
            raise ConfigurationError("cost model parameters must be positive")

    @property
    def messages_per_instance(self) -> float:
        """Messages sent per node per instance."""
        return self.messages_sent_per_round * self.rounds_per_instance

    @property
    def bytes_per_instance(self) -> float:
        """Bytes sent per node per instance."""
        return self.messages_per_instance * self.message_bytes

    @property
    def total_messages(self) -> float:
        return self.messages_per_instance * self.instances

    @property
    def total_bytes(self) -> float:
        """Bytes sent per node for a full converged estimate."""
        return self.bytes_per_instance * self.instances

    def bandwidth_bytes_per_second(self, gossip_period_s: float = 1.0) -> float:
        """Average upstream bandwidth while an instance is running."""
        if gossip_period_s <= 0:
            raise ConfigurationError("gossip period must be positive")
        return self.messages_sent_per_round * self.message_bytes / gossip_period_s

    def estimation_time_seconds(self, gossip_period_s: float = 1.0) -> float:
        """Wall-clock time for a full converged estimate."""
        if gossip_period_s <= 0:
            raise ConfigurationError("gossip period must be positive")
        return self.instances * self.rounds_per_instance * gossip_period_s


def instance_cost(config: Adam2Config, instances: int = 3) -> CostModel:
    """Build the paper's cost model from a protocol configuration."""
    return CostModel(
        message_bytes=config.message_bytes(),
        rounds_per_instance=config.rounds_per_instance,
        instances=instances,
    )
