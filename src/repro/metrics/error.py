"""The paper's CDF approximation error metrics (§III).

``Err_m(p) = max_x |F(x) − F_p(x)|`` — the Kolmogorov–Smirnov maximum
vertical distance, aggregated over peers with ``max`` (an upper bound on
any peer's error).  ``Err_a(p) = Σ_x |F(x) − F_p(x)| / (max − min)`` — the
average vertical distance over the discrete attribute domain, aggregated
over peers with ``avg``.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import EstimationError
from repro.rngs import make_rng
from repro.types import ErrorPair
from repro.core.cdf import EmpiricalCDF, EstimatedCDF
from repro.core.interpolation import interpolate_matrix

__all__ = [
    "error_grid",
    "cdf_errors",
    "errors_at_points",
    "matrix_errors",
    "aggregate_errors",
]

#: Default cap on evaluation-grid size for huge attribute domains.
DEFAULT_MAX_GRID = 200_001


def error_grid(minimum: float, maximum: float, max_points: int = DEFAULT_MAX_GRID) -> np.ndarray:
    """The discrete evaluation domain for the error metrics.

    For integer-valued attributes the paper sums ``|F − F_p|`` over every
    attribute value between the minimum and the maximum; we use every
    integer in ``[minimum, maximum]`` when that fits in ``max_points``,
    otherwise a uniform grid of ``max_points`` points (indistinguishable
    in practice: both Riemann-sum the same area).
    """
    if maximum < minimum:
        raise EstimationError(f"invalid domain [{minimum}, {maximum}]")
    if maximum == minimum:
        return np.asarray([minimum], dtype=float)
    lo = float(np.ceil(minimum))
    hi = float(np.floor(maximum))
    span = hi - lo
    if span >= 0 and span + 1 <= max_points:
        grid = np.arange(lo, hi + 1.0)
        # Always include the exact extremes (they may be non-integer).
        extra = [v for v in (minimum, maximum) if v < lo or v > hi]
        if extra:
            grid = np.unique(np.concatenate((grid, np.asarray(extra))))
        return grid
    return np.linspace(minimum, maximum, max_points)


def cdf_errors(truth: EmpiricalCDF, estimate: EstimatedCDF, grid: np.ndarray | None = None) -> ErrorPair:
    """``(Err_m(p), Err_a(p))`` of one node's estimate vs the truth."""
    if grid is None:
        grid = error_grid(truth.minimum, truth.maximum)
    residual = np.abs(truth.evaluate(grid) - estimate.evaluate(grid))
    return ErrorPair(maximum=float(residual.max()), average=float(residual.mean()))


def errors_at_points(truth: EmpiricalCDF, thresholds: np.ndarray, fractions: np.ndarray) -> ErrorPair:
    """Error restricted to the interpolation points themselves.

    This is the "interpolation points" series of the paper's Figure 6:
    the aggregated fractions are compared against the exact CDF values at
    the thresholds, with no interpolation involved.
    """
    thresholds = np.asarray(thresholds, dtype=float)
    fractions = np.asarray(fractions, dtype=float)
    if thresholds.size == 0:
        raise EstimationError("no interpolation points to evaluate")
    residual = np.abs(truth.evaluate(thresholds) - fractions)
    return ErrorPair(maximum=float(residual.max()), average=float(residual.mean()))


def matrix_errors(
    truth: EmpiricalCDF,
    thresholds: np.ndarray,
    fractions: np.ndarray,
    minimum: np.ndarray,
    maximum: np.ndarray,
    grid: np.ndarray | None = None,
    node_sample: int | None = None,
    rng: np.random.Generator | None = None,
    sample_seed: int = 0,
) -> tuple[ErrorPair, ErrorPair]:
    """System-wide errors for many nodes sharing one threshold set.

    Returns the paper's two aggregates as ``(entire_cdf, at_points)``
    pairs, where ``entire_cdf`` holds ``Err_m = max_p Err_m(p)`` and
    ``Err_a = avg_p Err_a(p)`` over the full attribute domain, and
    ``at_points`` the same aggregates restricted to the thresholds.

    Args:
        node_sample: evaluate the (expensive) entire-CDF metrics on a
            random subsample of nodes of this size; the at-points metrics
            are always exact over all nodes.  The paper observes a
            cross-node standard deviation below 1e-5, so sampling does
            not change the reported values.
        rng: generator used to draw the node subsample; pass the
            run-seeded generator so the subsample replays with the run.
        sample_seed: seed for the subsample generator when no ``rng`` is
            given — deterministic standalone use stays replayable rather
            than silently pinning every caller to one hard-coded stream.
    """
    fractions = np.asarray(fractions, dtype=float)
    n = fractions.shape[0]
    if n == 0:
        raise EstimationError("no nodes to evaluate")
    if grid is None:
        grid = error_grid(truth.minimum, truth.maximum)

    true_at_thresholds = truth.evaluate(thresholds)
    residual_points = np.abs(fractions - true_at_thresholds[None, :])
    at_points = ErrorPair(
        maximum=float(residual_points.max(axis=1).max()),
        average=float(residual_points.mean(axis=1).mean()),
    )

    if node_sample is not None and node_sample < n:
        rng = rng or make_rng(sample_seed)
        idx = rng.choice(n, size=node_sample, replace=False)
    else:
        idx = np.arange(n)
    estimates = interpolate_matrix(thresholds, fractions[idx], np.asarray(minimum)[idx], np.asarray(maximum)[idx], grid)
    residual = np.abs(estimates - truth.evaluate(grid)[None, :])
    entire = ErrorPair(
        maximum=float(residual.max(axis=1).max()),
        average=float(residual.mean(axis=1).mean()),
    )
    return entire, at_points


def aggregate_errors(
    truth: EmpiricalCDF,
    estimates: Iterable[EstimatedCDF],
    grid: np.ndarray | None = None,
) -> ErrorPair:
    """Aggregate per-node errors as the paper does: max of Err_m, avg of Err_a."""
    if grid is None:
        grid = error_grid(truth.minimum, truth.maximum)
    true_values = truth.evaluate(grid)
    max_err = 0.0
    avg_errs: list[float] = []
    count = 0
    for estimate in estimates:
        residual = np.abs(true_values - estimate.evaluate(grid))
        max_err = max(max_err, float(residual.max()))
        avg_errs.append(float(residual.mean()))
        count += 1
    if count == 0:
        raise EstimationError("no estimates to aggregate")
    return ErrorPair(maximum=max_err, average=float(np.mean(avg_errs)))
