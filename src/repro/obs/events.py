"""Structured observability events.

Every event is a small frozen dataclass with a stable ``type`` tag and a
:meth:`to_dict` projection used by the JSONL trace sink.  Events carry
only *simulation-derived* quantities (rounds, masses, counts) — never
wall-clock readings — so a trace of the same seeded run is byte-identical
across machines and re-runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

__all__ = [
    "EVENT_TYPES",
    "Event",
    "InstanceCompleted",
    "InstanceStarted",
    "METRIC_NAMES",
    "METRIC_NAME_TEMPLATES",
    "QueryServed",
    "RoundSample",
    "RunCompleted",
    "RunStarted",
    "SPAN_NAMES",
]

# ---------------------------------------------------------------------
# Name registry
#
# The single source of truth for every name the observability layer may
# emit.  Dashboards, trace consumers and the divergence/restart alarms
# key on these strings; an emission site that invents its own name forks
# the namespace silently.  ``adam2-lint`` rule ADM013 checks every
# ``counter()``/``gauge()``/``histogram()``/``span()`` call site outside
# :mod:`repro.obs` against these sets — add the name here *first*, then
# emit it.
# ---------------------------------------------------------------------

#: stable ``type`` tags of the structured events below
EVENT_TYPES = frozenset({
    "run_start",
    "instance_start",
    "round",
    "instance_end",
    "run_end",
    "query",
})

#: every registered counter/gauge/histogram name
METRIC_NAMES = frozenset({
    "runs_total",
    "instances_total",
    "rounds_total",
    "messages_total",
    "bytes_total",
    "weight_sum",
    "mass_sum",
    "reached",
    "instance_err_avg",
    "queries_total",
    "query_cache_hits_total",
    "query_cache_misses_total",
    "query_errors_total",
    "queries_unavailable_total",
    "query_latency_s",
    "service_cycles_total",
    "service_restarts_total",
    "service_tick",
    "persist_snapshots_written_total",
    "persist_bytes_written_total",
    "persist_snapshots_recovered_total",
    "persist_records_corrupt_total",
    "persist_bytes_truncated_total",
    "persist_compactions_total",
    "persist_write_errors_total",
    "persist_snapshots_retired_total",
    "persist_restarts_total",
    "persist_segments",
    "persist_recovery_s",
    "http_requests_total",
    "http_errors_total",
})

#: templated metric families (``{placeholder}`` marks the variable part)
METRIC_NAME_TEMPLATES = frozenset({
    "queries_{op}_total",
})

#: every registered span name
SPAN_NAMES = frozenset({
    "run",
    "instance",
    "round",
})


@dataclass(frozen=True, slots=True)
class RunStarted:
    """A backend run begins (one facade ``run()`` call)."""

    type = "run_start"

    backend: str
    n_nodes: int
    instances: int
    rounds: int
    seed: int
    points: int

    def to_dict(self) -> dict[str, object]:
        return {
            "type": self.type,
            "backend": self.backend,
            "n_nodes": self.n_nodes,
            "instances": self.instances,
            "rounds": self.rounds,
            "seed": self.seed,
            "points": self.points,
        }


@dataclass(frozen=True, slots=True)
class InstanceStarted:
    """An aggregation instance starts (thresholds chosen by the initiator)."""

    type = "instance_start"

    instance: int
    thresholds: tuple[float, ...]
    v_thresholds: tuple[float, ...] = ()

    def to_dict(self) -> dict[str, object]:
        return {
            "type": self.type,
            "instance": self.instance,
            "thresholds": list(self.thresholds),
            "v_thresholds": list(self.v_thresholds),
        }


@dataclass(frozen=True, slots=True)
class RoundSample:
    """Per-round protocol probe for one aggregation instance.

    Attributes:
        instance: index of the instance within the run.
        round: 1-based gossip round within the instance (for the async
            backend: the virtual gossip period).
        mass_sum: total fraction mass over all peers holding the
            instance, summed over interpolation points; conserved by the
            symmetric exchange, so drift flags a conservation bug.
        weight_sum: total size weight over all peers (conserved at 1.0).
        reached: number of peers the instance has reached.
        spread: mean (over interpolation points) standard deviation of
            the per-peer fractions — the variance diagnostic whose decay
            rate characterises epidemic averaging.
        convergence_rate: per-round spread decay factor
            ``spread_t / spread_{t-1}`` (0.5 = halving per round);
            ``None`` on the first sample or when the spread has hit zero.
        messages: messages exchanged for this instance this round.
        bytes: payload bytes exchanged for this instance this round.
    """

    type = "round"

    instance: int
    round: int
    mass_sum: float
    weight_sum: float
    reached: int
    spread: float
    convergence_rate: float | None
    messages: int
    bytes: int

    def to_dict(self) -> dict[str, object]:
        return {
            "type": self.type,
            "instance": self.instance,
            "round": self.round,
            "mass_sum": self.mass_sum,
            "weight_sum": self.weight_sum,
            "reached": self.reached,
            "spread": self.spread,
            "convergence_rate": self.convergence_rate,
            "messages": self.messages,
            "bytes": self.bytes,
        }


@dataclass(frozen=True, slots=True)
class InstanceCompleted:
    """An aggregation instance terminated (TTL expired everywhere)."""

    type = "instance_end"

    instance: int
    rounds: int
    reached: int
    err_max: float | None
    err_avg: float | None
    messages: int
    bytes: int

    def to_dict(self) -> dict[str, object]:
        return {
            "type": self.type,
            "instance": self.instance,
            "rounds": self.rounds,
            "reached": self.reached,
            "err_max": self.err_max,
            "err_avg": self.err_avg,
            "messages": self.messages,
            "bytes": self.bytes,
        }


@dataclass(frozen=True, slots=True)
class QueryServed:
    """The estimation service answered one query.

    Unlike the run-lifecycle events, a query event may carry a wall-clock
    *duration* (``latency_s``): the service is a real serving surface, so
    its traces are latency-bearing by design and — like the net backend's
    — not byte-identical across re-runs.  Deterministic simulation traces
    are unaffected (simulators never emit queries).

    Attributes:
        op: query operation (``cdf``, ``quantile``, ``fraction``, ``size``).
        version: estimate-store version the answer was served from.
        cache_hit: whether the point-query cache supplied the answer.
        ok: False when the query failed (bad argument, empty store).
        error: error class tag when ``ok`` is False.
        latency_s: service-side wall-clock latency, ``None`` when the
            query engine runs without a clock (deterministic tests).
    """

    type = "query"

    op: str
    version: int | None
    cache_hit: bool
    ok: bool = True
    error: str | None = None
    latency_s: float | None = None

    def to_dict(self) -> dict[str, object]:
        return {
            "type": self.type,
            "op": self.op,
            "version": self.version,
            "cache_hit": self.cache_hit,
            "ok": self.ok,
            "error": self.error,
            "latency_s": self.latency_s,
        }


@dataclass(frozen=True, slots=True)
class RunCompleted:
    """The run finished; totals over all instances."""

    type = "run_end"

    instances: int
    messages: int
    bytes: int

    def to_dict(self) -> dict[str, object]:
        return {
            "type": self.type,
            "instances": self.instances,
            "messages": self.messages,
            "bytes": self.bytes,
        }


Event = Union[RunStarted, InstanceStarted, RoundSample, InstanceCompleted, RunCompleted, QueryServed]
