"""Ready-made observers: in-memory capture, JSONL traces, stdout summary."""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO

from repro.obs.events import (
    Event,
    InstanceCompleted,
    InstanceStarted,
    QueryServed,
    RoundSample,
    RunCompleted,
    RunStarted,
)
from repro.obs.observer import RunObserver

__all__ = ["JsonlSink", "MemorySink", "StdoutSummarySink"]


class MemorySink(RunObserver):
    """Capture every event in order, plus per-type views (for tests/analysis)."""

    def __init__(self) -> None:
        self.events: list[Event] = []
        self.runs: list[RunStarted] = []
        self.instances: list[InstanceStarted] = []
        self.rounds: list[RoundSample] = []
        self.completed: list[InstanceCompleted] = []
        self.finished_runs: list[RunCompleted] = []
        self.queries: list[QueryServed] = []

    def on_run_start(self, event: RunStarted) -> None:
        self.events.append(event)
        self.runs.append(event)

    def on_instance_start(self, event: InstanceStarted) -> None:
        self.events.append(event)
        self.instances.append(event)

    def on_round(self, event: RoundSample) -> None:
        self.events.append(event)
        self.rounds.append(event)

    def on_instance_end(self, event: InstanceCompleted) -> None:
        self.events.append(event)
        self.completed.append(event)

    def on_run_end(self, event: RunCompleted) -> None:
        self.events.append(event)
        self.finished_runs.append(event)

    def on_query(self, event: QueryServed) -> None:
        self.events.append(event)
        self.queries.append(event)

    def clear(self) -> None:
        self.events.clear()
        self.runs.clear()
        self.instances.clear()
        self.rounds.clear()
        self.completed.clear()
        self.finished_runs.clear()
        self.queries.clear()


class JsonlSink(RunObserver):
    """Stream every event as one JSON object per line.

    The sink stays open across multiple runs (a figure experiment may
    drive many backend runs through one trace file); each line carries a
    ``run`` sequence number assigned at ``run_start``.  Events contain
    only simulation-derived values, so the trace of a seeded run is
    byte-identical across re-runs.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._fh: IO[str] | None = self.path.open("w", encoding="utf-8")
        self._run = -1

    def _write(self, payload: dict[str, object]) -> None:
        if self._fh is None:
            raise ValueError(f"trace sink {self.path} is closed")
        payload["run"] = self._run
        self._fh.write(json.dumps(payload, separators=(",", ":")) + "\n")

    def on_run_start(self, event: RunStarted) -> None:
        self._run += 1
        self._write(event.to_dict())

    def on_instance_start(self, event: InstanceStarted) -> None:
        self._write(event.to_dict())

    def on_round(self, event: RoundSample) -> None:
        self._write(event.to_dict())

    def on_instance_end(self, event: InstanceCompleted) -> None:
        self._write(event.to_dict())

    def on_run_end(self, event: RunCompleted) -> None:
        self._write(event.to_dict())
        if self._fh is not None:
            self._fh.flush()

    def on_query(self, event: QueryServed) -> None:
        # Queries are served outside any run; their lines carry the last
        # run's sequence number (-1 before the first run starts).
        self._write(event.to_dict())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class StdoutSummarySink(RunObserver):
    """Print a compact per-run summary when each run completes."""

    def __init__(self) -> None:
        self._header: RunStarted | None = None
        self._instances: list[InstanceCompleted] = []

    def on_run_start(self, event: RunStarted) -> None:
        self._header = event
        self._instances = []

    def on_instance_end(self, event: InstanceCompleted) -> None:
        self._instances.append(event)

    def on_run_end(self, event: RunCompleted) -> None:
        header = self._header
        label = f"{header.backend} n={header.n_nodes} seed={header.seed}" if header else "run"
        print(f"[obs] {label}: {event.instances} instance(s), "
              f"{event.messages} messages, {event.bytes} bytes")
        for done in self._instances:
            err_m = "n/a" if done.err_max is None else f"{done.err_max:.4f}"
            err_a = "n/a" if done.err_avg is None else f"{done.err_avg:.5f}"
            print(f"[obs]   instance {done.instance}: rounds={done.rounds} "
                  f"reached={done.reached} err_max={err_m} err_avg={err_a} "
                  f"messages={done.messages}")
