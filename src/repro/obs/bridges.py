"""Probe computation bridging engines to observability events.

The vectorised fastsim computes its probes inline from its arrays; the
object-per-node backends (round engine, async engine) share the helpers
here, which walk per-node :class:`~repro.core.instance.InstanceState`
objects for one aggregation instance.

:class:`RateTracker` derives the per-round convergence factor from the
spread series — Jelasity et al.'s variance-reduction-rate diagnostic for
epidemic averaging — and is shared by all three backends.
"""

from __future__ import annotations

from typing import Hashable, Iterable

import numpy as np

from repro.core.node import Adam2Node
from repro.obs.events import RoundSample

__all__ = ["RateTracker", "instance_round_sample"]


class RateTracker:
    """Turns a per-round spread series into per-round decay factors."""

    __slots__ = ("_previous",)

    def __init__(self) -> None:
        self._previous: dict[Hashable, float] = {}

    def rate(self, key: Hashable, spread: float) -> float | None:
        """Decay factor ``spread_t / spread_{t-1}`` (None when undefined)."""
        previous = self._previous.get(key)
        self._previous[key] = spread
        if previous is None or not previous > 0.0:
            return None
        return spread / previous


def instance_round_sample(
    nodes: Iterable[Adam2Node],
    instance_id: Hashable,
    *,
    instance_index: int,
    round_index: int,
    messages: int,
    bytes_: int,
    tracker: RateTracker,
) -> RoundSample:
    """Probe one instance's state across an object-per-node population.

    Mass and weight sums are taken over the raw (count-based) fractions
    and weights, which the symmetric exchange conserves; the spread is
    the mean per-point standard deviation across reached peers.
    """
    mass_sum = 0.0
    weight_sum = 0.0
    rows: list[np.ndarray] = []
    for node in nodes:
        state = node.instances.get(instance_id)
        if state is None:
            continue
        mass_sum += float(state.h.fractions.sum())
        weight_sum += state.weight
        rows.append(state.h.fractions)
    if len(rows) > 1:
        spread = float(np.std(np.stack(rows), axis=0).mean())
    else:
        spread = 0.0
    return RoundSample(
        instance=instance_index,
        round=round_index,
        mass_sum=mass_sum,
        weight_sum=weight_sum,
        reached=len(rows),
        spread=spread,
        convergence_rate=tracker.rate(instance_id, spread),
        messages=messages,
        bytes=bytes_,
    )
