"""The observer interface and the hub that engines talk to.

:class:`RunObserver` is the subscriber interface: five lifecycle hooks
mirroring the run hierarchy (run, instance, round) plus :meth:`close`.
All hooks default to no-ops, so sinks override only what they need.

:class:`ObserverHub` is the single object an engine receives.  It fans
events out to observers, maintains a :class:`MetricsRegistry`, and owns
a :class:`SpanRegistry` for profiling.  Two independent switches keep
the disabled path at a single branch per round:

* ``probes_enabled`` — true when at least one observer is attached;
  engines skip *computing* probe quantities entirely otherwise.
* ``timing_enabled`` — true when the hub was built with
  ``instrument=True``; engines only open wall-clock spans then.
"""

from __future__ import annotations

from contextlib import AbstractContextManager, nullcontext
from typing import Iterable

from repro.obs.events import (
    InstanceCompleted,
    InstanceStarted,
    QueryServed,
    RoundSample,
    RunCompleted,
    RunStarted,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.spans import SpanRegistry

__all__ = ["NULL_HUB", "ObserverHub", "RunObserver"]


class RunObserver:
    """Base observer: every hook is a no-op; override what you need."""

    def on_run_start(self, event: RunStarted) -> None:
        """A backend run begins."""

    def on_instance_start(self, event: InstanceStarted) -> None:
        """An aggregation instance starts."""

    def on_round(self, event: RoundSample) -> None:
        """A gossip round (or async gossip period) completed."""

    def on_instance_end(self, event: InstanceCompleted) -> None:
        """An aggregation instance terminated."""

    def on_run_end(self, event: RunCompleted) -> None:
        """The run finished."""

    def on_query(self, event: QueryServed) -> None:
        """The estimation service answered one query."""

    def close(self) -> None:
        """Release any resources (files, handles)."""


class ObserverHub:
    """Dispatches events to observers and aggregates metrics/spans.

    Args:
        observers: subscribers to fan events out to.
        instrument: enable wall-clock span timing (profiling runs).
        metrics: share an existing registry (default: a fresh one).
        spans: share an existing span registry (default: a fresh one).
    """

    __slots__ = (
        "observers",
        "metrics",
        "spans",
        "probes_enabled",
        "timing_enabled",
        "_query_instruments",
        "_query_op_counters",
        "_round_instruments",
    )

    def __init__(
        self,
        observers: Iterable[RunObserver] = (),
        *,
        instrument: bool = False,
        metrics: MetricsRegistry | None = None,
        spans: SpanRegistry | None = None,
    ) -> None:
        self.observers: tuple[RunObserver, ...] = tuple(observers)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.spans = spans if spans is not None else SpanRegistry()
        self.probes_enabled = bool(self.observers)
        self.timing_enabled = bool(instrument)
        # The serving path emits one QueryServed per query at tens of
        # thousands of qps; registry name lookups per event are a
        # measurable fraction of that budget, so the instruments are
        # resolved once and kept.
        self._query_instruments: (
            tuple[Counter, Counter, Counter, Counter, Counter, Histogram] | None
        ) = None
        self._query_op_counters: dict[str, Counter] = {}
        # Same reasoning for the round loop: a million-node sweep emits
        # one RoundSample per round per instance, and six registry
        # lookups per probe were measurable against a vectorised round.
        self._round_instruments: (
            tuple[Counter, Counter, Counter, Gauge, Gauge, Gauge] | None
        ) = None

    @property
    def enabled(self) -> bool:
        """Whether the hub does anything at all."""
        return self.probes_enabled or self.timing_enabled

    # ------------------------------------------------------------------
    # Event emission (call only when ``probes_enabled``)
    # ------------------------------------------------------------------

    def run_started(self, event: RunStarted) -> None:
        self.metrics.counter("runs_total").inc()
        for observer in self.observers:
            observer.on_run_start(event)

    def instance_started(self, event: InstanceStarted) -> None:
        self.metrics.counter("instances_total").inc()
        for observer in self.observers:
            observer.on_instance_start(event)

    def round_sample(self, event: RoundSample) -> None:
        cached = self._round_instruments
        if cached is None:
            metrics = self.metrics
            cached = self._round_instruments = (
                metrics.counter("rounds_total"),
                metrics.counter("messages_total"),
                metrics.counter("bytes_total"),
                metrics.gauge("weight_sum"),
                metrics.gauge("mass_sum"),
                metrics.gauge("reached"),
            )
        rounds, messages, bytes_, weight, mass, reached = cached
        rounds.inc()
        messages.inc(event.messages)
        bytes_.inc(event.bytes)
        weight.set(event.weight_sum)
        mass.set(event.mass_sum)
        reached.set(event.reached)
        for observer in self.observers:
            observer.on_round(event)

    def instance_completed(self, event: InstanceCompleted) -> None:
        if event.err_avg is not None:
            self.metrics.histogram("instance_err_avg").observe(event.err_avg)
        for observer in self.observers:
            observer.on_instance_end(event)

    def run_completed(self, event: RunCompleted) -> None:
        for observer in self.observers:
            observer.on_run_end(event)

    def query_served(self, event: QueryServed) -> None:
        """Record one served query (service query layer).

        Unlike the run-lifecycle hooks this updates metrics even with no
        observers attached: the serving path wants hit/miss and latency
        aggregates available from any hub, and a query is orders of
        magnitude cheaper than a simulation round, so there is no
        disabled-path budget to protect.
        """
        cached = self._query_instruments
        if cached is None:
            metrics = self.metrics
            cached = self._query_instruments = (
                metrics.counter("queries_total"),
                metrics.counter("query_cache_hits_total"),
                metrics.counter("query_cache_misses_total"),
                metrics.counter("query_errors_total"),
                metrics.counter("queries_unavailable_total"),
                metrics.histogram("query_latency_s"),
            )
        total, cache_hits, cache_misses, errors, unavailable, latency = cached
        total.inc()
        op_counter = self._query_op_counters.get(event.op)
        if op_counter is None:
            op_counter = self._query_op_counters[event.op] = self.metrics.counter(
                f"queries_{event.op}_total"
            )
        op_counter.inc()
        if event.cache_hit:
            cache_hits.inc()
        else:
            cache_misses.inc()
        if not event.ok:
            errors.inc()
            # Queries rejected because nothing is published (or the
            # requested version was evicted) get their own counter: a
            # restarted service answering "unavailable" is an
            # operational signal distinct from caller mistakes.
            if event.error == "unavailable":
                unavailable.inc()
        if event.latency_s is not None:
            latency.observe(event.latency_s)
        for observer in self.observers:
            observer.on_query(event)

    # ------------------------------------------------------------------
    # Profiling spans
    # ------------------------------------------------------------------

    def span(self, name: str) -> AbstractContextManager[None]:
        """A timing span when instrumented, else a free no-op context."""
        if self.timing_enabled:
            return self.spans.span(name)
        return nullcontext()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Close all attached observers (owned by whoever built the hub)."""
        for observer in self.observers:
            observer.close()

    def snapshot(self) -> dict[str, object]:
        """Metrics + span aggregates as plain JSON-serialisable data."""
        data = self.metrics.snapshot()
        data["spans"] = self.spans.snapshot()
        return data


#: A shared, permanently disabled hub for default arguments.
NULL_HUB = ObserverHub()
