"""repro.obs — structured observability for every simulation backend.

The subsystem has four layers, composed by :class:`ObserverHub`:

* **events** (:mod:`repro.obs.events`): frozen dataclasses describing the
  run lifecycle (``run > instance > round``) plus per-round protocol
  probes (mass sum, weight sum, convergence rate, message/byte counts).
* **metrics** (:mod:`repro.obs.metrics`): counters, gauges and histograms
  aggregated across a run, snapshotable to plain JSON.
* **spans** (:mod:`repro.obs.spans`): hierarchical wall-clock timing
  (``run / instance / round / exchange``) for profiling; disabled by
  default so simulated time stays decoupled from the host clock.
* **sinks** (:mod:`repro.obs.sinks`): ready-made observers — in-memory
  capture, JSONL trace files, and a stdout summary.

Engines accept an :class:`ObserverHub`; with no observers attached the
hub is disabled and instrumentation costs a single branch per round.
"""

from repro.obs.events import (
    Event,
    InstanceCompleted,
    InstanceStarted,
    QueryServed,
    RoundSample,
    RunCompleted,
    RunStarted,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.observer import NULL_HUB, ObserverHub, RunObserver
from repro.obs.profile import (
    peak_rss_bytes,
    profile_backends,
    profile_scaling,
    write_benchmark,
)
from repro.obs.sinks import JsonlSink, MemorySink, StdoutSummarySink
from repro.obs.spans import QUERY_SPAN, SpanRegistry, SpanStats, wall_clock

__all__ = [
    "Counter",
    "Event",
    "Gauge",
    "Histogram",
    "InstanceCompleted",
    "InstanceStarted",
    "JsonlSink",
    "MemorySink",
    "MetricsRegistry",
    "NULL_HUB",
    "ObserverHub",
    "QUERY_SPAN",
    "QueryServed",
    "RoundSample",
    "RunCompleted",
    "RunObserver",
    "RunStarted",
    "SpanRegistry",
    "SpanStats",
    "StdoutSummarySink",
    "peak_rss_bytes",
    "profile_backends",
    "profile_scaling",
    "wall_clock",
    "write_benchmark",
]
