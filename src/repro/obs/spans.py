"""Hierarchical wall-clock timing spans.

A :class:`SpanRegistry` times nested regions of a run — the canonical
hierarchy is ``run / instance / round / exchange`` — and aggregates the
durations per path.  Spans read the host clock, so they are **off by
default** everywhere: engines only open spans when an
:class:`~repro.obs.observer.ObserverHub` was created with
``instrument=True`` (the profiling path).  Simulation *logic* never
branches on span data, keeping simulated behaviour machine-independent.
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

__all__ = ["QUERY_SPAN", "SpanRegistry", "SpanStats", "wall_clock"]

#: separator between levels of the span hierarchy in snapshot keys
SEP = "/"

#: span kind the service query layer times request handling under —
#: a serving-side sibling of the ``run / instance / round`` hierarchy
QUERY_SPAN = "query"


def wall_clock() -> float:
    """The host's monotonic clock (seconds; ``time.perf_counter``).

    The one sanctioned wall-clock accessor for serving-side latency
    measurement outside :mod:`repro.net`: the read itself lives here in
    :mod:`repro.obs` (clock-exempt by design — observability measures the
    host, it never steers simulated behaviour), so callers such as the
    service query layer stay free of direct host-clock calls and ADM007/
    ADM008 keep their teeth against clock reads in simulation logic.
    """
    return time.perf_counter()


@dataclass
class SpanStats:
    """Aggregate timing of one span path."""

    count: int = 0
    total_seconds: float = 0.0
    min_seconds: float = math.inf
    max_seconds: float = 0.0

    def add(self, duration: float) -> None:
        self.count += 1
        self.total_seconds += duration
        self.min_seconds = min(self.min_seconds, duration)
        self.max_seconds = max(self.max_seconds, duration)

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0

    def snapshot(self) -> dict[str, float | int]:
        return {
            "count": self.count,
            "total_seconds": self.total_seconds,
            "mean_seconds": self.mean_seconds,
            "min_seconds": self.min_seconds if self.count else 0.0,
            "max_seconds": self.max_seconds,
        }


class SpanRegistry:
    """Aggregates nested span timings keyed by their slash-joined path."""

    __slots__ = ("_stats", "_stack")

    def __init__(self) -> None:
        self._stats: dict[str, SpanStats] = {}
        self._stack: list[str] = []

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time a region; nests under any currently open span."""
        self._stack.append(name)
        path = SEP.join(self._stack)
        started = time.perf_counter()
        try:
            yield
        finally:
            duration = time.perf_counter() - started
            self._stack.pop()
            stats = self._stats.get(path)
            if stats is None:
                stats = self._stats[path] = SpanStats()
            stats.add(duration)

    def stats(self, path: str) -> SpanStats | None:
        """Aggregate stats for one span path (``None`` if never opened)."""
        return self._stats.get(path)

    def snapshot(self) -> dict[str, dict[str, float | int]]:
        return {path: s.snapshot() for path, s in sorted(self._stats.items())}
