"""Counters, gauges and histograms for run-level metrics.

All instruments are plain in-process objects owned by a
:class:`MetricsRegistry`; a snapshot projects the whole registry into
JSON-serialisable dictionaries (the ``--metrics-out`` CLI payload).
"""

from __future__ import annotations

import math

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {amount})")
        self.value += amount

    def snapshot(self) -> float:
        return self.value


class Gauge:
    """A value that can move in either direction (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """Streaming distribution summary with powers-of-two buckets.

    Records count/sum/min/max exactly and bins observations into
    log2-spaced buckets (keyed by the bucket's upper bound) — enough to
    reconstruct latency/size distributions without storing samples.
    """

    __slots__ = ("name", "count", "total", "minimum", "maximum", "buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.buckets: dict[float, int] = {}

    def observe(self, value: float) -> None:
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(f"histogram {self.name!r} observed non-finite value {value}")
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if value <= 0:
            bound = 0.0
        else:
            # ceil(log2(value)) via frexp: value = m * 2**e with
            # m in [0.5, 1), so the bound is 2**e unless value is an
            # exact power of two (m == 0.5), which keeps its own bucket.
            mantissa, exponent = math.frexp(value)
            bound = math.ldexp(1.0, exponent - 1 if mantissa == 0.5 else exponent)
        self.buckets[bound] = self.buckets.get(bound, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict[str, object]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
            "mean": self.mean,
            "buckets": {str(bound): n for bound, n in sorted(self.buckets.items())},
        }


class MetricsRegistry:
    """Named instruments, created on first use."""

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    def snapshot(self) -> dict[str, object]:
        """Project every instrument into plain JSON-serialisable data."""
        return {
            "counters": {name: c.snapshot() for name, c in sorted(self._counters.items())},
            "gauges": {name: g.snapshot() for name, g in sorted(self._gauges.items())},
            "histograms": {name: h.snapshot() for name, h in sorted(self._histograms.items())},
        }
