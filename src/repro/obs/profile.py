"""Cross-backend profiling: machine-readable wall-time benchmarks.

:func:`profile_backends` runs the same seeded workload through each
registered backend at several population sizes with span timing enabled
and reduces the span statistics to one record per (backend, size) pair.
:func:`write_benchmark` serialises the result as ``BENCH_backends.json``
— the artifact the CI benchmark smoke job publishes.

The record *schema* is deterministic (fixed keys, sorted entries); the
wall-time values naturally vary with the host.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from repro.core.config import Adam2Config
from repro.obs.observer import ObserverHub
from repro.obs.spans import SEP
from repro.workloads.base import AttributeWorkload

__all__ = ["profile_backends", "write_benchmark"]

#: the paper-benchmark population sizes
DEFAULT_SIZES = (1_000, 10_000)

#: span path engines time each gossip round under
_ROUND_PATH = SEP.join(("run", "instance", "round"))
_RUN_PATH = "run"


def profile_backends(
    workload: AttributeWorkload,
    config: Adam2Config,
    *,
    sizes: Sequence[int] = DEFAULT_SIZES,
    backends: Iterable[str] = ("fast", "round", "async"),
    instances: int = 1,
    seed: int = 0,
) -> dict[str, object]:
    """Time every backend at every size; returns the benchmark document.

    Each entry reports total run wall time, per-round wall time (mean
    over all timed rounds) and the raw span aggregates, so regressions
    can be localised to the round kernel vs. setup/measurement overhead.
    """
    from repro.api import run  # late import: repro.api depends on repro.obs

    entries: list[dict[str, object]] = []
    for backend in backends:
        for n_nodes in sizes:
            hub = ObserverHub(instrument=True)
            result = run(
                config,
                workload,
                backend=backend,
                n_nodes=int(n_nodes),
                instances=instances,
                seed=seed,
                hub=hub,
            )
            run_stats = hub.spans.stats(_RUN_PATH)
            round_stats = hub.spans.stats(_ROUND_PATH)
            entries.append({
                "backend": backend,
                "n_nodes": int(n_nodes),
                "instances": instances,
                "rounds_per_instance": config.rounds_per_instance,
                "points": config.points,
                "seed": seed,
                "rounds_timed": 0 if round_stats is None else round_stats.count,
                "wall_time_s": 0.0 if run_stats is None else run_stats.total_seconds,
                "time_per_round_s": (
                    0.0 if round_stats is None else round_stats.mean_seconds
                ),
                "final_err_avg": result.final_errors.average,
                "spans": hub.spans.snapshot(),
            })
    entries.sort(key=lambda e: (str(e["backend"]), int(e["n_nodes"])))  # type: ignore[arg-type]
    return {
        "benchmark": "adam2-backends",
        "sizes": [int(n) for n in sizes],
        "entries": entries,
    }


def write_benchmark(document: dict[str, object], path: str | Path) -> Path:
    """Write the benchmark document as pretty, key-sorted JSON."""
    path = Path(path)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path
