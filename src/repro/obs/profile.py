"""Cross-backend profiling: machine-readable wall-time benchmarks.

:func:`profile_backends` runs the same seeded workload through each
registered backend at several population sizes with span timing enabled
and reduces the span statistics to one record per (backend, size) pair.
:func:`profile_scaling` is the large-``N`` companion: it sweeps the fast
simulator's execution modes (naive sequential baseline, batched
float64/float32, sharded) up to million-node populations and records
wall time, peak RSS, and traffic per node for each point.
:func:`write_benchmark` serialises the result as ``BENCH_backends.json``
— the artifact the CI benchmark smoke job publishes.

The record *schema* is deterministic (fixed keys, sorted entries); the
wall-time values naturally vary with the host.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import resource
import sys
import time
from pathlib import Path
from typing import Iterable, Sequence

from repro.core.config import Adam2Config
from repro.obs.observer import ObserverHub
from repro.obs.spans import SEP
from repro.workloads.base import AttributeWorkload

__all__ = [
    "config_fingerprint",
    "peak_rss_bytes",
    "profile_backends",
    "profile_scaling",
    "write_benchmark",
]

#: the paper-benchmark population sizes
DEFAULT_SIZES = (1_000, 10_000)

#: real-socket populations: one OS socket per node, so the net backend
#: is profiled at cluster scale rather than simulation scale
DEFAULT_NET_SIZES = (32, 64)

#: the N-scaling sweep sizes (the paper's headline range)
DEFAULT_SCALING_SIZES = (1_000, 10_000, 100_000, 1_000_000)

#: population ceiling for the naive sequential baseline in the scaling
#: sweep — the Python per-node loop is linear at ~100 s per million
#: node-rounds, so anything past this is recorded as skipped
DEFAULT_NAIVE_CAP = 1_000_000


def peak_rss_bytes() -> int:
    """Peak resident set size of this process tree so far, in bytes.

    ``ru_maxrss`` is kilobytes on Linux but bytes on macOS; the
    children's maximum covers shard worker processes.  The value is
    monotone over the process lifetime, so callers comparing
    configurations should order runs from small to large.
    """
    self_rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    children_rss = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    scale = 1 if sys.platform == "darwin" else 1024
    return int(max(self_rss, children_rss)) * scale

#: span path engines time each gossip round under
_ROUND_PATH = SEP.join(("run", "instance", "round"))
_RUN_PATH = "run"


def config_fingerprint(
    config: Adam2Config, *, instances: int, seed: int, workload: AttributeWorkload
) -> str:
    """Stable hash of everything that shapes a benchmark's workload.

    Two benchmark documents are comparable iff their fingerprints match:
    same protocol parameters, instance count, seed, and workload.  Wall
    times from different fingerprints measure different work.
    """
    identity = {
        "config": dataclasses.asdict(config),
        "instances": int(instances),
        "seed": int(seed),
        "workload": repr(workload),
    }
    digest = hashlib.sha256(
        json.dumps(identity, sort_keys=True).encode("utf-8")
    )
    return digest.hexdigest()[:16]


def profile_backends(
    workload: AttributeWorkload,
    config: Adam2Config,
    *,
    sizes: Sequence[int] = DEFAULT_SIZES,
    backends: Iterable[str] = ("fast", "round", "async", "net"),
    net_sizes: Sequence[int] = DEFAULT_NET_SIZES,
    instances: int = 1,
    seed: int = 0,
) -> dict[str, object]:
    """Time every backend at every size; returns the benchmark document.

    Each entry reports total run wall time, per-round wall time (mean
    over all timed rounds) and the raw span aggregates, so regressions
    can be localised to the round kernel vs. setup/measurement overhead.

    The ``net`` backend binds one real UDP socket per node, so it is
    profiled at the (smaller) ``net_sizes``; in sandboxes that forbid
    socket binding it is skipped gracefully and recorded under the
    document's ``skipped`` list instead of failing the whole benchmark.
    """
    from repro.api import run  # late import: repro.api depends on repro.obs

    entries: list[dict[str, object]] = []
    skipped: list[dict[str, object]] = []
    for backend in backends:
        backend_sizes = net_sizes if backend == "net" else sizes
        for n_nodes in backend_sizes:
            hub = ObserverHub(instrument=True)
            options: dict[str, object] = {}
            if backend == "net":
                options["gossip_period"] = 0.02
            try:
                result = run(
                    config,
                    workload,
                    backend=backend,
                    n_nodes=int(n_nodes),
                    instances=instances,
                    seed=seed,
                    hub=hub,
                    **options,
                )
            except (OSError, PermissionError) as exc:
                # A sandbox that forbids socket binding fails the net
                # backend at bind time; record the skip and keep the
                # simulator baselines comparable.
                skipped.append({
                    "backend": backend,
                    "n_nodes": int(n_nodes),
                    "reason": f"{type(exc).__name__}: {exc}",
                })
                continue
            run_stats = hub.spans.stats(_RUN_PATH)
            round_stats = hub.spans.stats(_ROUND_PATH)
            entries.append({
                "backend": backend,
                "n_nodes": int(n_nodes),
                "instances": instances,
                "rounds_per_instance": config.rounds_per_instance,
                "points": config.points,
                "seed": seed,
                "rounds_timed": 0 if round_stats is None else round_stats.count,
                "wall_time_s": 0.0 if run_stats is None else run_stats.total_seconds,
                "time_per_round_s": (
                    0.0 if round_stats is None else round_stats.mean_seconds
                ),
                "final_err_avg": result.final_errors.average,
                "peak_rss_bytes": peak_rss_bytes(),
                "spans": hub.spans.snapshot(),
            })
    entries.sort(key=lambda e: (str(e["backend"]), int(e["n_nodes"])))  # type: ignore[arg-type]
    return {
        "benchmark": "adam2-backends",
        "config": dataclasses.asdict(config),
        "config_fingerprint": config_fingerprint(
            config, instances=instances, seed=seed, workload=workload
        ),
        "sizes": [int(n) for n in sizes],
        "net_sizes": [int(n) for n in net_sizes],
        "entries": entries,
        "skipped": skipped,
    }


def profile_scaling(
    workload: AttributeWorkload,
    config: Adam2Config,
    *,
    sizes: Sequence[int] = DEFAULT_SCALING_SIZES,
    shards: int = 8,
    shard_mix: float | None = None,
    seed: int = 0,
    naive_cap: int = DEFAULT_NAIVE_CAP,
) -> dict[str, object]:
    """N-scaling sweep over the fast simulator's execution modes.

    Four modes per size, each timed over one *warm* instance (an untimed
    warm-up instance first absorbs buffer allocation and, for the shard
    driver, worker start-up — except for ``naive``, whose Python loop
    dwarfs its setup):

    * ``naive`` — the per-node sequential kernel (PeerSim-faithful
      reference; the linear baseline the batched modes are judged
      against), skipped above ``naive_cap`` nodes;
    * ``batched`` — the vectorised matching kernel on the float64
      ``(N, λ)`` batch;
    * ``batched-f32`` — the same with the float32 state (half the
      memory traffic);
    * ``sharded-f32`` — the multiprocessing shard driver, float32,
      ``shards`` workers (cache-sized partitions + sampled cross-shard
      exchange).

    Entries record wall time, per-round time, peak RSS, and the traffic
    columns (messages and protocol bytes per node).  Sizes are profiled
    in ascending order so the monotone RSS counter stays attributable.
    """
    from repro.fastsim.adam2 import Adam2Simulation
    from repro.fastsim.shard import DEFAULT_SHARD_MIX, ShardedAdam2

    entries: list[dict[str, object]] = []
    skipped: list[dict[str, object]] = []
    rounds = config.rounds_per_instance
    mix = DEFAULT_SHARD_MIX if shard_mix is None else shard_mix

    def record(
        mode: str, n_nodes: int, dtype: str, wall: float, result: object, **extra: object
    ) -> None:
        entries.append({
            "mode": mode,
            "n_nodes": int(n_nodes),
            "dtype": dtype,
            "rounds_per_instance": rounds,
            "points": config.points,
            "seed": seed,
            "wall_time_s": wall,
            "time_per_round_s": wall / rounds,
            "peak_rss_bytes": peak_rss_bytes(),
            "messages_per_node": result.messages_total / n_nodes,  # type: ignore[attr-defined]
            "bytes_per_node": result.bytes_total / n_nodes,  # type: ignore[attr-defined]
            "final_err_avg": result.errors_entire.average,  # type: ignore[attr-defined]
            **extra,
        })

    for n_nodes in sorted(int(n) for n in sizes):
        if n_nodes <= naive_cap:
            sim = Adam2Simulation(
                workload, n_nodes, config, seed=seed, exchange="sequential"
            )
            start = time.perf_counter()
            outcome = sim.run_instance()
            record("naive", n_nodes, "float64", time.perf_counter() - start, outcome)
        else:
            skipped.append({
                "mode": "naive",
                "n_nodes": n_nodes,
                "reason": f"sequential baseline capped at {naive_cap} nodes",
            })
        for mode, dtype in (("batched", "float64"), ("batched-f32", "float32")):
            sim = Adam2Simulation(
                workload, n_nodes, config, seed=seed, exchange="matching", dtype=dtype
            )
            sim.run_instance()  # warm-up: allocates the reused batch/buffers
            start = time.perf_counter()
            outcome = sim.run_instance()
            record(mode, n_nodes, dtype, time.perf_counter() - start, outcome)
        if n_nodes >= 2 * shards:
            with ShardedAdam2(
                workload, n_nodes, config, seed=seed,
                shards=shards, shard_mix=mix, dtype="float32",
            ) as sharded:
                sharded.run_instance()  # warm-up: starts and warms the workers
                start = time.perf_counter()
                outcome = sharded.run_instance()
                record(
                    "sharded-f32", n_nodes, "float32",
                    time.perf_counter() - start, outcome,
                    shards=shards, shard_mix=mix,
                    cross_rows_total=outcome.cross_rows_total,
                )
        else:
            skipped.append({
                "mode": "sharded-f32",
                "n_nodes": n_nodes,
                "reason": f"population too small for {shards} shards",
            })
    entries.sort(key=lambda e: (int(e["n_nodes"]), str(e["mode"])))  # type: ignore[arg-type]
    return {
        "sizes": [int(n) for n in sorted(int(n) for n in sizes)],
        "shards": int(shards),
        "shard_mix": mix,
        "naive_cap": int(naive_cap),
        "entries": entries,
        "skipped": skipped,
    }


def write_benchmark(document: dict[str, object], path: str | Path) -> Path:
    """Write the benchmark document as pretty, key-sorted JSON."""
    path = Path(path)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path
