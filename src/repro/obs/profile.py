"""Cross-backend profiling: machine-readable wall-time benchmarks.

:func:`profile_backends` runs the same seeded workload through each
registered backend at several population sizes with span timing enabled
and reduces the span statistics to one record per (backend, size) pair.
:func:`write_benchmark` serialises the result as ``BENCH_backends.json``
— the artifact the CI benchmark smoke job publishes.

The record *schema* is deterministic (fixed keys, sorted entries); the
wall-time values naturally vary with the host.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path
from typing import Iterable, Sequence

from repro.core.config import Adam2Config
from repro.obs.observer import ObserverHub
from repro.obs.spans import SEP
from repro.workloads.base import AttributeWorkload

__all__ = ["config_fingerprint", "profile_backends", "write_benchmark"]

#: the paper-benchmark population sizes
DEFAULT_SIZES = (1_000, 10_000)

#: real-socket populations: one OS socket per node, so the net backend
#: is profiled at cluster scale rather than simulation scale
DEFAULT_NET_SIZES = (32, 64)

#: span path engines time each gossip round under
_ROUND_PATH = SEP.join(("run", "instance", "round"))
_RUN_PATH = "run"


def config_fingerprint(
    config: Adam2Config, *, instances: int, seed: int, workload: AttributeWorkload
) -> str:
    """Stable hash of everything that shapes a benchmark's workload.

    Two benchmark documents are comparable iff their fingerprints match:
    same protocol parameters, instance count, seed, and workload.  Wall
    times from different fingerprints measure different work.
    """
    identity = {
        "config": dataclasses.asdict(config),
        "instances": int(instances),
        "seed": int(seed),
        "workload": repr(workload),
    }
    digest = hashlib.sha256(
        json.dumps(identity, sort_keys=True).encode("utf-8")
    )
    return digest.hexdigest()[:16]


def profile_backends(
    workload: AttributeWorkload,
    config: Adam2Config,
    *,
    sizes: Sequence[int] = DEFAULT_SIZES,
    backends: Iterable[str] = ("fast", "round", "async", "net"),
    net_sizes: Sequence[int] = DEFAULT_NET_SIZES,
    instances: int = 1,
    seed: int = 0,
) -> dict[str, object]:
    """Time every backend at every size; returns the benchmark document.

    Each entry reports total run wall time, per-round wall time (mean
    over all timed rounds) and the raw span aggregates, so regressions
    can be localised to the round kernel vs. setup/measurement overhead.

    The ``net`` backend binds one real UDP socket per node, so it is
    profiled at the (smaller) ``net_sizes``; in sandboxes that forbid
    socket binding it is skipped gracefully and recorded under the
    document's ``skipped`` list instead of failing the whole benchmark.
    """
    from repro.api import run  # late import: repro.api depends on repro.obs

    entries: list[dict[str, object]] = []
    skipped: list[dict[str, object]] = []
    for backend in backends:
        backend_sizes = net_sizes if backend == "net" else sizes
        for n_nodes in backend_sizes:
            hub = ObserverHub(instrument=True)
            options: dict[str, object] = {}
            if backend == "net":
                options["gossip_period"] = 0.02
            try:
                result = run(
                    config,
                    workload,
                    backend=backend,
                    n_nodes=int(n_nodes),
                    instances=instances,
                    seed=seed,
                    hub=hub,
                    **options,
                )
            except (OSError, PermissionError) as exc:
                # A sandbox that forbids socket binding fails the net
                # backend at bind time; record the skip and keep the
                # simulator baselines comparable.
                skipped.append({
                    "backend": backend,
                    "n_nodes": int(n_nodes),
                    "reason": f"{type(exc).__name__}: {exc}",
                })
                continue
            run_stats = hub.spans.stats(_RUN_PATH)
            round_stats = hub.spans.stats(_ROUND_PATH)
            entries.append({
                "backend": backend,
                "n_nodes": int(n_nodes),
                "instances": instances,
                "rounds_per_instance": config.rounds_per_instance,
                "points": config.points,
                "seed": seed,
                "rounds_timed": 0 if round_stats is None else round_stats.count,
                "wall_time_s": 0.0 if run_stats is None else run_stats.total_seconds,
                "time_per_round_s": (
                    0.0 if round_stats is None else round_stats.mean_seconds
                ),
                "final_err_avg": result.final_errors.average,
                "spans": hub.spans.snapshot(),
            })
    entries.sort(key=lambda e: (str(e["backend"]), int(e["n_nodes"])))  # type: ignore[arg-type]
    return {
        "benchmark": "adam2-backends",
        "config": dataclasses.asdict(config),
        "config_fingerprint": config_fingerprint(
            config, instances=instances, seed=seed, workload=workload
        ),
        "sizes": [int(n) for n in sizes],
        "net_sizes": [int(n) for n in net_sizes],
        "entries": entries,
        "skipped": skipped,
    }


def write_benchmark(document: dict[str, object], path: str | Path) -> Path:
    """Write the benchmark document as pretty, key-sorted JSON."""
    path = Path(path)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path
