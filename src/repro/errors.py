"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError`, so callers
can catch a single base class.  Lower-level substrates define subclasses
here rather than locally, which keeps failure handling uniform across the
simulator, the overlay and the protocol layers.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A configuration value is invalid or inconsistent."""


class ProtocolError(ReproError):
    """A protocol invariant was violated (malformed message, bad merge)."""


class SimulationError(ReproError):
    """The simulation engine was driven into an invalid state."""


class OverlayError(ReproError):
    """Overlay/membership operation failed (e.g. no neighbours available)."""


class WorkloadError(ReproError):
    """A workload/trace could not be generated or parsed."""


class EstimationError(ReproError):
    """A CDF estimate is unusable (e.g. queried before any instance ran)."""


class ServiceError(ReproError):
    """The estimation service cannot satisfy a request (:mod:`repro.service`).

    ``code`` classifies the failure for frontends: ``"bad_request"``
    (caller error — invalid arguments), ``"unavailable"`` (no estimate
    published yet, or the requested version was evicted), or
    ``"server_error"`` (anything else).  The TCP endpoint maps the code
    straight onto its wire-level error field.
    """

    def __init__(self, message: str, *, code: str = "bad_request") -> None:
        super().__init__(message)
        self.code = code


class PersistError(ReproError):
    """A durable snapshot-log operation failed (:mod:`repro.persist`).

    Raised for unusable log directories, invalid policies, and records
    that cannot be decoded.  Recovery itself never raises it for
    *corruption* — torn tails are truncated and corrupt records skipped
    (and counted) so a crashed service always restarts.
    """


class NetworkError(ReproError):
    """A real-network operation failed (:mod:`repro.net` runtime)."""


class CodecError(NetworkError):
    """A wire datagram could not be encoded within budget or decoded."""


class TransportTimeout(NetworkError):
    """A request exhausted its retries without receiving a response."""
