"""Array state of one vectorised aggregation instance.

The fast simulator keeps a whole instance in three arrays (see
:mod:`repro.fastsim.exchange` for the invariants the kernels rely on);
:class:`InstanceArrays` builds and manipulates them:

* ``averaged`` — ``(n, k + v + 1)``: the ``k`` interpolation-fraction
  columns, ``v`` verification-fraction columns, and the size weight;
* ``extremes`` — ``(n, 2)``: per-node (minimum, maximum) estimates;
* ``joined`` — ``(n,)`` bool, with the invariant that an unjoined node's
  rows always hold exactly its initial state.

:class:`BatchState` is the large-``n`` counterpart: one preallocated
``(N, λ)`` state tensor (``λ = k + v + 1`` columns over all thresholds)
plus the extremes/join/exclusion arrays, *reused* across consecutive
instances — :meth:`BatchState.begin_instance` refills the tensor in
place instead of reallocating ~``N·λ`` floats per instance, and an
optional float32 mode halves the working set for million-node runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, ProtocolError

__all__ = ["BatchState", "InstanceArrays", "resolve_dtype"]

#: accepted spellings of the batch dtypes
_DTYPES = {
    "float64": np.float64,
    "float32": np.float32,
    "f8": np.float64,
    "f4": np.float32,
}


def resolve_dtype(dtype: str | np.dtype | type) -> np.dtype:
    """Resolve a user-facing dtype spelling to float32/float64, loudly."""
    if isinstance(dtype, str):
        try:
            return np.dtype(_DTYPES[dtype])
        except KeyError:
            raise ConfigurationError(
                f"unknown state dtype {dtype!r}; expected one of {sorted(_DTYPES)}"
            ) from None
    resolved = np.dtype(dtype)
    if resolved not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise ConfigurationError(
            f"state dtype must be float32 or float64, got {resolved}"
        )
    return resolved


class BatchState:
    """The preallocated ``(N, λ)`` state batch of the fast simulator.

    Owns every per-node array an instance needs — the averaged-quantity
    tensor, the extremes matrix, and the joined/excluded/participants
    masks — allocated once and refilled in place for each consecutive
    instance.  Column layout of ``averaged`` matches
    :class:`InstanceArrays`: ``k`` interpolation fractions, ``v``
    verification fractions, then the size weight.

    Args:
        n: population size.
        width: total columns ``k + v + 1``.
        dtype: ``float64`` (reference) or ``float32`` (half the memory
            traffic; mass-conservation checks scale their tolerance to
            the dtype's epsilon).
    """

    def __init__(self, n: int, width: int, dtype: str | np.dtype | type = np.float64):
        if n < 2:
            raise ProtocolError("need a population of at least 2 nodes")
        if width < 1:
            raise ProtocolError("state width must be at least 1")
        self.n = int(n)
        self.width = int(width)
        self.dtype = resolve_dtype(dtype)
        self.averaged = np.empty((self.n, self.width), dtype=self.dtype)
        self.extremes = np.empty((self.n, 2), dtype=self.dtype)
        self.joined = np.empty(self.n, dtype=bool)
        self.excluded = np.empty(self.n, dtype=bool)
        self.participants = np.empty(self.n, dtype=bool)

    @classmethod
    def ensure(
        cls,
        current: "BatchState | None",
        n: int,
        width: int,
        dtype: str | np.dtype | type = np.float64,
    ) -> "BatchState":
        """Reuse ``current`` when it matches, else allocate a fresh batch.

        The instance loop calls this once per instance; in the common
        case (fixed config → fixed ``k``/``v``) it returns the same
        object every time and nothing is allocated.
        """
        resolved = resolve_dtype(dtype)
        if (
            current is not None
            and current.n == n
            and current.width == width
            and current.dtype == resolved
        ):
            return current
        return cls(n, width, resolved)

    def begin_instance(
        self, values: np.ndarray, all_t: np.ndarray, initiator: int | None
    ) -> None:
        """Refill the batch in place for a fresh instance.

        Every row becomes the node's initial indicator state over the
        concatenated (interpolation + verification) thresholds with
        weight 0; only the initiator is joined and carries the unit
        size weight.  ``initiator=None`` leaves every row unjoined — the
        shard-driver case where another shard hosts the initiator and
        this partition joins through cross-shard exchanges.
        """
        if all_t.size + 1 != self.width:
            raise ProtocolError(
                f"threshold count {all_t.size} does not match batch width {self.width}"
            )
        if initiator is not None and not 0 <= initiator < self.n:
            raise ProtocolError(f"initiator {initiator} out of range")
        # Indicator fill: the bool comparison result is cast elementwise
        # into the preallocated float tensor — no (n, λ) temporary.
        np.less_equal(
            values[:, None], all_t[None, :], out=self.averaged[:, : self.width - 1]
        )
        self.averaged[:, -1] = 0.0
        self.extremes[:, 0] = values
        self.extremes[:, 1] = values
        self.joined[:] = False
        self.excluded[:] = False
        self.participants[:] = True
        if initiator is not None:
            self.averaged[initiator, -1] = 1.0
            self.joined[initiator] = True

    def reset_rows(self, indices: np.ndarray, values: np.ndarray, all_t: np.ndarray) -> None:
        """Reset a set of rows to fresh-node initial state (churn), vectorised.

        The replacement nodes get their new attribute's indicator state,
        weight 0, own-value extremes, and drop out of the running
        instance (unjoined, excluded from it and its metrics).
        """
        # Fancy indices: scatter-assign (an ``out=`` view would be a copy).
        self.averaged[indices, : self.width - 1] = values[:, None] <= all_t[None, :]
        self.averaged[indices, -1] = 0.0
        self.extremes[indices, 0] = values
        self.extremes[indices, 1] = values
        self.joined[indices] = False
        self.excluded[indices] = True
        self.participants[indices] = False

    def refresh_pending(self, values: np.ndarray, all_t: np.ndarray) -> None:
        """Re-evaluate unjoined rows against drifted attribute values.

        Nodes evaluate their attribute at join time (paper §VII-F);
        under drift the pending rows must track the live values so their
        eventual join contributes the current indicator state.
        """
        pending = ~self.joined
        if not pending.any():
            return
        fresh = values[pending]
        self.averaged[pending, : self.width - 1] = fresh[:, None] <= all_t[None, :]
        self.extremes[pending, 0] = fresh
        self.extremes[pending, 1] = fresh


@dataclass
class InstanceArrays:
    """The dense state of one aggregation instance."""

    thresholds: np.ndarray
    v_thresholds: np.ndarray
    averaged: np.ndarray
    extremes: np.ndarray
    joined: np.ndarray

    @classmethod
    def create(
        cls,
        values: np.ndarray,
        thresholds: np.ndarray,
        v_thresholds: np.ndarray | None = None,
        initiator: int = 0,
    ) -> "InstanceArrays":
        """Initialise the arrays for a population of single-value nodes.

        Every row starts as the node's indicator state (so the unjoined
        invariant holds from the start); only the initiator is joined and
        carries the unit size weight.
        """
        values = np.asarray(values, dtype=float)
        if values.ndim != 1 or values.size < 2:
            raise ProtocolError("need a 1-D population of at least 2 values")
        thresholds = np.sort(np.asarray(thresholds, dtype=float))
        v_thresholds = (
            np.sort(np.asarray(v_thresholds, dtype=float))
            if v_thresholds is not None
            else np.empty(0)
        )
        if not 0 <= initiator < values.size:
            raise ProtocolError(f"initiator {initiator} out of range")
        n = values.size
        all_t = np.concatenate((thresholds, v_thresholds))
        averaged = np.empty((n, all_t.size + 1), dtype=float)
        averaged[:, :-1] = values[:, None] <= all_t[None, :]
        averaged[:, -1] = 0.0
        averaged[initiator, -1] = 1.0
        joined = np.zeros(n, dtype=bool)
        joined[initiator] = True
        return cls(
            thresholds=thresholds,
            v_thresholds=v_thresholds,
            averaged=averaged,
            extremes=np.stack((values, values), axis=1),
            joined=joined,
        )

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return int(self.averaged.shape[0])

    @property
    def k(self) -> int:
        """Number of interpolation points."""
        return int(self.thresholds.size)

    @property
    def fractions(self) -> np.ndarray:
        """The interpolation-fraction columns (clipped view copy)."""
        return np.clip(self.averaged[:, : self.k], 0.0, 1.0)

    @property
    def v_fractions(self) -> np.ndarray:
        return np.clip(self.averaged[:, self.k : self.k + self.v_thresholds.size], 0.0, 1.0)

    @property
    def weights(self) -> np.ndarray:
        return self.averaged[:, -1]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def reset_node(self, index: int, value: float) -> None:
        """Reset one row to a fresh node's initial state (churn)."""
        all_t = np.concatenate((self.thresholds, self.v_thresholds))
        self.averaged[index, :-1] = value <= all_t
        self.averaged[index, -1] = 0.0
        self.extremes[index] = (value, value)
        self.joined[index] = False

    def conserved_mass(self) -> np.ndarray:
        """Per-column sums over joined rows plus initial mass of unjoined.

        Under the symmetric exchange kernels this vector is invariant —
        the property the convergence proof rests on; exposed for tests.
        """
        return self.averaged.sum(axis=0)
