"""Array state of one vectorised aggregation instance.

The fast simulator keeps a whole instance in three arrays (see
:mod:`repro.fastsim.exchange` for the invariants the kernels rely on);
:class:`InstanceArrays` builds and manipulates them:

* ``averaged`` — ``(n, k + v + 1)``: the ``k`` interpolation-fraction
  columns, ``v`` verification-fraction columns, and the size weight;
* ``extremes`` — ``(n, 2)``: per-node (minimum, maximum) estimates;
* ``joined`` — ``(n,)`` bool, with the invariant that an unjoined node's
  rows always hold exactly its initial state.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ProtocolError

__all__ = ["InstanceArrays"]


@dataclass
class InstanceArrays:
    """The dense state of one aggregation instance."""

    thresholds: np.ndarray
    v_thresholds: np.ndarray
    averaged: np.ndarray
    extremes: np.ndarray
    joined: np.ndarray

    @classmethod
    def create(
        cls,
        values: np.ndarray,
        thresholds: np.ndarray,
        v_thresholds: np.ndarray | None = None,
        initiator: int = 0,
    ) -> "InstanceArrays":
        """Initialise the arrays for a population of single-value nodes.

        Every row starts as the node's indicator state (so the unjoined
        invariant holds from the start); only the initiator is joined and
        carries the unit size weight.
        """
        values = np.asarray(values, dtype=float)
        if values.ndim != 1 or values.size < 2:
            raise ProtocolError("need a 1-D population of at least 2 values")
        thresholds = np.sort(np.asarray(thresholds, dtype=float))
        v_thresholds = (
            np.sort(np.asarray(v_thresholds, dtype=float))
            if v_thresholds is not None
            else np.empty(0)
        )
        if not 0 <= initiator < values.size:
            raise ProtocolError(f"initiator {initiator} out of range")
        n = values.size
        all_t = np.concatenate((thresholds, v_thresholds))
        averaged = np.empty((n, all_t.size + 1), dtype=float)
        averaged[:, :-1] = values[:, None] <= all_t[None, :]
        averaged[:, -1] = 0.0
        averaged[initiator, -1] = 1.0
        joined = np.zeros(n, dtype=bool)
        joined[initiator] = True
        return cls(
            thresholds=thresholds,
            v_thresholds=v_thresholds,
            averaged=averaged,
            extremes=np.stack((values, values), axis=1),
            joined=joined,
        )

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return int(self.averaged.shape[0])

    @property
    def k(self) -> int:
        """Number of interpolation points."""
        return int(self.thresholds.size)

    @property
    def fractions(self) -> np.ndarray:
        """The interpolation-fraction columns (clipped view copy)."""
        return np.clip(self.averaged[:, : self.k], 0.0, 1.0)

    @property
    def v_fractions(self) -> np.ndarray:
        return np.clip(self.averaged[:, self.k : self.k + self.v_thresholds.size], 0.0, 1.0)

    @property
    def weights(self) -> np.ndarray:
        return self.averaged[:, -1]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def reset_node(self, index: int, value: float) -> None:
        """Reset one row to a fresh node's initial state (churn)."""
        all_t = np.concatenate((self.thresholds, self.v_thresholds))
        self.averaged[index, :-1] = value <= all_t
        self.averaged[index, -1] = 0.0
        self.extremes[index] = (value, value)
        self.joined[index] = False

    def conserved_mass(self) -> np.ndarray:
        """Per-column sums over joined rows plus initial mass of unjoined.

        Under the symmetric exchange kernels this vector is invariant —
        the property the convergence proof rests on; exposed for tests.
        """
        return self.averaged.sum(axis=0)
