"""Multiprocessing shard driver for the fast simulator.

Partitions the population across worker processes so gossip state larger
than one core's appetite (or, with enough cores, one machine's share of
it) can still run round-synchronously:

* each worker owns one contiguous shard — a private
  :class:`~repro.fastsim.state.BatchState` slice plus
  :class:`~repro.fastsim.exchange.ExchangeBuffers` scratch — and runs
  the intra-shard gossip (one :func:`~repro.fastsim.exchange.matching_round`
  per round) entirely locally;
* per round, only a *sampled* set of cross-shard partner rows travels
  over ``multiprocessing`` queues (the same explicit, picklable feed
  discipline as :mod:`repro.net.service_worker`): each shard contributes
  ``shard_mix · shard_size`` uniformly drawn rows, the coordinator runs
  one matching round over the pooled rows — reusing the very kernel
  whose symmetry makes the step mass-conserving — and scatters the
  averaged rows back.

Mass accounting under sharding: a shard's column sums legitimately change
every round (cross pairs move mass between shards), so workers check only
local per-row invariants (:func:`repro.lint.sanitizer.check_shard_invariants`)
while the coordinator asserts *global* conservation over the summed
shard masses (:func:`repro.lint.sanitizer.check_mass_totals`).

The driver intentionally supports the static-population regime only
(no churn, no drift, no per-round convergence traces): it exists for
N-scaling, where those features' per-round full-state access would
defeat the partitioning.  Error metrics are computed from additive
per-shard partials (see :func:`repro.fastsim.adam2.points_residual_stats`)
plus one coordinator-side node sample, never a full-state gather.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.rngs import derive, make_rng, spawn
from repro.types import ErrorPair
from repro.core.cdf import EmpiricalCDF, EstimatedCDF
from repro.core.config import Adam2Config
from repro.fastsim.adam2 import (
    assemble_error_pairs,
    entire_domain_stats,
    points_residual_stats,
    select_instance_points,
)
from repro.fastsim.exchange import ExchangeBuffers, matching_round
from repro.fastsim.state import BatchState, resolve_dtype
from repro.metrics.error import error_grid
from repro.obs.events import InstanceCompleted, InstanceStarted, RoundSample
from repro.obs.observer import NULL_HUB, ObserverHub
from repro.workloads.base import AttributeWorkload

if TYPE_CHECKING:
    from multiprocessing.context import BaseContext

__all__ = [
    "ShardInstanceResult",
    "ShardRunResult",
    "ShardedAdam2",
    "partition_population",
]

#: default fraction of each shard contributing cross-shard rows per round
DEFAULT_SHARD_MIX = 0.125

#: cap on cross rows per shard per round — bounds queue traffic at large N
#: (168-byte float64 rows: 4096 rows ≈ 0.7 MB each way per shard per round)
CROSS_ROW_CAP = 4096

_JOIN_TIMEOUT = 10.0


def partition_population(n: int, shards: int) -> list[tuple[int, int]]:
    """Contiguous ``[start, stop)`` shard bounds, sizes differing by ≤ 1.

    Every shard must hold at least two nodes (a matching round needs a
    pair), which bounds the shard count for tiny populations.
    """
    if shards < 1:
        raise ConfigurationError("need at least one shard")
    if n < 2 * shards:
        raise ConfigurationError(
            f"population of {n} cannot fill {shards} shards with >= 2 nodes each"
        )
    base, extra = divmod(n, shards)
    bounds = []
    start = 0
    for index in range(shards):
        stop = start + base + (1 if index < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


# ---------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------


def _shard_worker_main(
    shard_id: int,
    seed: int,
    values: np.ndarray,
    width: int,
    dtype_name: str,
    join_mode: str,
    sanitize: bool,
    commands: Any,
    results: Any,
) -> None:
    """One shard's event loop: react to coordinator commands until ``None``.

    All state the worker needs arrives through explicit picklable args
    and queue messages; nothing is shared.  The worker's gossip stream is
    derived deterministically from the run seed and its shard id, so a
    seeded sharded run is reproducible regardless of scheduling.
    """
    from repro.lint.sanitizer import check_shard_invariants

    dtype = resolve_dtype(dtype_name)
    n = int(values.size)
    rng = derive(seed, "shard-gossip", shard_id)
    cross_rng = derive(seed, "shard-cross", shard_id)
    batch = BatchState(n, width, dtype)
    buffers = ExchangeBuffers(n, width, dtype)
    k = 0

    try:
        while True:
            command = commands.get()
            if command is None:
                break
            op = command[0]
            if op == "begin":
                _, all_t, k, initiator, want_stats = command
                batch.begin_instance(values, all_t.astype(np.float64), initiator)
                results.put((
                    "mass", shard_id, batch.averaged.sum(axis=0, dtype=np.float64)
                ))
            elif op == "cross":
                count = min(int(command[1]), n)
                idx = cross_rng.choice(n, size=count, replace=False)
                results.put((
                    "cross",
                    shard_id,
                    idx,
                    batch.averaged[idx].copy(),
                    batch.extremes[idx].copy(),
                    batch.joined[idx].copy(),
                ))
            elif op == "apply":
                _, idx, rows, ext, joined_rows, round_index = command
                batch.averaged[idx] = rows
                batch.extremes[idx] = ext
                batch.joined[idx] = joined_rows
                active = matching_round(
                    batch.averaged, batch.extremes, batch.joined, rng,
                    join_mode, buffers=buffers,
                )
                if sanitize:
                    check_shard_invariants(
                        batch.averaged, k,
                        round_index=round_index, instance=shard_id,
                    )
                # The aggregate scans below cost a full pass over the
                # shard state; ship them only when someone will look
                # (sanitizer mass check, observer probes) so the quiet
                # path stays pure round work.
                col_sums = (
                    batch.averaged.sum(axis=0, dtype=np.float64) if sanitize else None
                )
                reached = int(batch.joined.sum())
                frac_sum = frac_sumsq = None
                if want_stats:
                    frac = batch.averaged[batch.joined, :k]
                    frac_sum = frac.sum(axis=0, dtype=np.float64)
                    frac_sumsq = np.square(frac, dtype=np.float64).sum(axis=0)
                    if col_sums is None:
                        col_sums = batch.averaged.sum(axis=0, dtype=np.float64)
                results.put((
                    "round", shard_id, int(active), col_sums,
                    reached, frac_sum, frac_sumsq,
                ))
            elif op == "finish":
                _, true_at_t, sample_idx = command
                joined = batch.joined
                reached = int(joined.sum())
                frac = np.clip(batch.averaged[joined, :k], 0.0, 1.0)
                points_max, points_sum = points_residual_stats(
                    frac.astype(np.float64, copy=False), true_at_t
                )
                payload = {
                    "reached": reached,
                    "missing": n - reached,
                    "points_max": points_max,
                    "points_sum": points_sum,
                    "frac_sum": frac.sum(axis=0, dtype=np.float64),
                    "weight_sum": float(
                        batch.averaged[joined, -1].sum(dtype=np.float64)
                    ),
                    "minimum": float(batch.extremes[joined, 0].min()) if reached else np.inf,
                    "maximum": float(batch.extremes[joined, 1].max()) if reached else -np.inf,
                    "sample_fractions": batch.averaged[sample_idx, :k].astype(np.float64),
                    "sample_joined": batch.joined[sample_idx].copy(),
                    "sample_minima": batch.extremes[sample_idx, 0].astype(np.float64),
                    "sample_maxima": batch.extremes[sample_idx, 1].astype(np.float64),
                }
                results.put(("finish", shard_id, payload))
            else:  # pragma: no cover - protocol bug
                results.put(("error", shard_id, f"unknown command {op!r}"))
                break
    except Exception as exc:  # pragma: no cover - surfaced by coordinator
        results.put(("error", shard_id, f"{type(exc).__name__}: {exc}"))


# ---------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------


@dataclass
class ShardInstanceResult:
    """Outcome of one sharded aggregation instance.

    Unlike :class:`repro.fastsim.adam2.FastInstanceResult` this carries
    no per-node arrays — at the population sizes the shard driver exists
    for, the consensus estimate plus aggregate error pairs are the
    result; full state stays inside the workers.
    """

    instance_index: int
    thresholds: np.ndarray
    v_thresholds: np.ndarray
    estimate: EstimatedCDF
    errors_entire: ErrorPair
    errors_points: ErrorPair
    reached: int
    n_nodes: int
    shards: int
    cross_rows_total: int
    messages_total: int = 0
    bytes_total: int = 0

    def mean_estimate(self) -> EstimatedCDF:
        return self.estimate


@dataclass
class ShardRunResult:
    """Outcome of a multi-instance sharded campaign."""

    instances: list[ShardInstanceResult] = field(default_factory=list)

    @property
    def final(self) -> ShardInstanceResult:
        if not self.instances:
            raise SimulationError("no instances were run")
        return self.instances[-1]

    @property
    def estimate(self) -> EstimatedCDF:
        return self.final.estimate

    @property
    def final_errors(self) -> ErrorPair:
        return self.final.errors_entire

    def errors_by_instance(self) -> tuple[list[float], list[float]]:
        return (
            [r.errors_entire.maximum for r in self.instances],
            [r.errors_entire.average for r in self.instances],
        )


# ---------------------------------------------------------------------
# Coordinator
# ---------------------------------------------------------------------


class ShardedAdam2:
    """Coordinator of a population partitioned across worker processes.

    Args:
        workload: attribute distribution for the population.
        n_nodes: population size.
        config: protocol parameters.
        seed: run seed; sharded runs are deterministic given it (worker
            streams derive from it and the shard id).
        shards: worker process count; every shard needs ≥ 2 nodes.
        shard_mix: fraction of each shard's nodes contributing to the
            cross-shard exchange pool per round (the only inter-process
            traffic; higher mixes converge faster and ship more rows).
        neighbour_sample: neighbour values visible to the coordinator's
            threshold selection.
        node_sample: node subsample for entire-domain error metrics,
            gathered across shards proportionally.
        sanitize: run invariant checks (default: ``ADAM2_SANITIZE``) —
            local row invariants inside each worker, global mass
            conservation at the coordinator.
        dtype: shard state precision (``float32`` halves queue traffic
            and worker memory).
        obs: observability hub; per-round probes are assembled from the
            workers' aggregate replies, so observers cost no extra
            state gathers.

    Use as a context manager, or call :meth:`close` — worker processes
    outlive individual instances so consecutive instances reuse them.
    """

    def __init__(
        self,
        workload: AttributeWorkload,
        n_nodes: int,
        config: Adam2Config,
        seed: int = 0,
        shards: int = 2,
        shard_mix: float = DEFAULT_SHARD_MIX,
        neighbour_sample: int | None = None,
        node_sample: int = 64,
        sanitize: bool | None = None,
        dtype: str = "float64",
        obs: ObserverHub | None = None,
    ):
        if not 0.0 < shard_mix <= 1.0:
            raise ConfigurationError(f"shard_mix must be in (0, 1], got {shard_mix}")
        self.workload = workload
        self.config = config
        self.n_nodes = n_nodes
        self.seed = seed
        self.shards = shards
        self.shard_mix = shard_mix
        self.bounds = partition_population(n_nodes, shards)
        self.dtype = resolve_dtype(dtype)
        self.rng = make_rng(seed)
        self._value_rng = spawn(self.rng)
        self._select_rng = spawn(self.rng)
        self._measure_rng = spawn(self.rng)
        self._cross_rng = spawn(self.rng)
        self.values = workload.sample(n_nodes, self._value_rng)
        self.neighbour_sample = neighbour_sample or max(config.points, 20)
        self.node_sample = node_sample
        from repro.lint.sanitizer import sanitize_enabled

        self._sanitize = sanitize_enabled(sanitize)
        self._obs = obs if obs is not None else NULL_HUB
        self.previous: EstimatedCDF | None = None
        self.instances_run = 0
        self._width = config.points + config.verification_points + 1
        self._processes: list[Any] = []
        self._commands: list[Any] = []
        self._results: Any = None

    # -- lifecycle -----------------------------------------------------

    def __enter__(self) -> "ShardedAdam2":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _mp_context(self) -> "BaseContext":
        methods = multiprocessing.get_all_start_methods()
        # fork is cheapest and inherits nothing we rely on (all worker
        # state travels through explicit, picklable args).
        return multiprocessing.get_context(
            "fork" if "fork" in methods else methods[0]
        )

    def _ensure_workers(self) -> None:
        if self._processes:
            return
        ctx = self._mp_context()
        self._results = ctx.Queue()
        for shard_id, (start, stop) in enumerate(self.bounds):
            commands = ctx.Queue()
            process = ctx.Process(
                target=_shard_worker_main,
                args=(
                    shard_id,
                    self.seed,
                    self.values[start:stop].copy(),
                    self._width,
                    self.dtype.name,
                    self.config.join_mode,
                    self._sanitize,
                    commands,
                    self._results,
                ),
                daemon=True,
                name=f"adam2-shard-{shard_id}",
            )
            process.start()
            self._commands.append(commands)
            self._processes.append(process)

    def close(self) -> None:
        """Stop the worker processes (idempotent)."""
        for commands in self._commands:
            try:
                commands.put(None)
            except (OSError, ValueError):  # pragma: no cover - queue closed
                pass
        for process in self._processes:
            process.join(timeout=_JOIN_TIMEOUT)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=_JOIN_TIMEOUT)
        self._processes = []
        self._commands = []
        self._results = None

    # -- collection helpers --------------------------------------------

    def _collect(self, tag: str) -> list[tuple[Any, ...]]:
        """One reply of kind ``tag`` from every shard, in shard order."""
        replies: list[tuple[Any, ...] | None] = [None] * self.shards
        for _ in range(self.shards):
            message = self._results.get(timeout=_JOIN_TIMEOUT * 60)
            if message[0] == "error":
                raise SimulationError(f"shard {message[1]} failed: {message[2]}")
            if message[0] != tag:  # pragma: no cover - protocol bug
                raise SimulationError(
                    f"expected {tag!r} reply, got {message[0]!r} from shard {message[1]}"
                )
            replies[message[1]] = message
        return [r for r in replies if r is not None]

    def _broadcast(self, command: tuple[Any, ...]) -> None:
        for commands in self._commands:
            commands.put(command)

    # -- the instance loop ---------------------------------------------

    def run_instance(
        self,
        rounds: int | None = None,
        selection: str | None = None,
        bootstrap: str | None = None,
    ) -> ShardInstanceResult:
        """Execute one aggregation instance across the shards."""
        rounds = rounds if rounds is not None else self.config.rounds_per_instance
        if rounds < 1:
            raise ConfigurationError("an instance needs at least one round")
        self._ensure_workers()
        cfg = self.config
        n = self.n_nodes

        thresholds, v_thresholds = select_instance_points(
            cfg, self.previous, self.values, self._select_rng,
            neighbour_sample=self.neighbour_sample,
            selection=selection, bootstrap=bootstrap,
        )
        k = thresholds.size
        all_t = np.concatenate((thresholds, v_thresholds))

        initiator = int(self._select_rng.integers(0, n))
        shard_of_initiator, local_initiator = self._locate(initiator)
        want_stats = self._obs.probes_enabled
        for shard_id, commands in enumerate(self._commands):
            commands.put((
                "begin", all_t, k,
                local_initiator if shard_id == shard_of_initiator else None,
                want_stats,
            ))
        masses = self._collect("mass")
        expected_mass = np.sum([m[2] for m in masses], axis=0)

        hub = self._obs
        probes = hub if hub.probes_enabled else None
        if probes is not None:
            probes.instance_started(InstanceStarted(
                instance=self.instances_run,
                thresholds=tuple(float(t) for t in thresholds),
                v_thresholds=tuple(float(t) for t in v_thresholds),
            ))

        messages = 0
        cross_rows_total = 0
        from repro.lint.sanitizer import check_mass_totals

        for round_index in range(rounds):
            with hub.span("round"):
                cross_active, cross_rows = self._cross_exchange(round_index)
                stats = self._collect("round")
            cross_rows_total += cross_rows
            local_active = sum(s[2] for s in stats)
            messages += 2 * (local_active + cross_active)
            if self._sanitize:
                total_mass = np.sum([s[3] for s in stats], axis=0)
                check_mass_totals(
                    total_mass, expected_mass,
                    backend="fastsim.shard",
                    round_index=round_index,
                    instance=self.instances_run,
                    dtype=self.dtype,
                )
            if probes is not None:
                probes.round_sample(self._round_sample(
                    stats, k, round_index, 2 * (local_active + cross_active)
                ))

        result = self._finish(thresholds, v_thresholds, rounds, messages, cross_rows_total)
        if probes is not None:
            probes.instance_completed(InstanceCompleted(
                instance=self.instances_run,
                rounds=rounds,
                reached=result.reached,
                err_max=result.errors_entire.maximum,
                err_avg=result.errors_entire.average,
                messages=messages,
                bytes=result.bytes_total,
            ))
        self.previous = result.estimate
        self.instances_run += 1
        return result

    def run_instances(
        self,
        count: int,
        rounds: int | None = None,
        selection: str | None = None,
        bootstrap: str | None = None,
    ) -> ShardRunResult:
        """Run several consecutive instances over the same worker pool."""
        if count < 1:
            raise ConfigurationError("need at least one instance")
        run = ShardRunResult()
        for _ in range(count):
            run.instances.append(
                self.run_instance(rounds=rounds, selection=selection, bootstrap=bootstrap)
            )
        return run

    # -- internals -----------------------------------------------------

    def _locate(self, index: int) -> tuple[int, int]:
        for shard_id, (start, stop) in enumerate(self.bounds):
            if start <= index < stop:
                return shard_id, index - start
        raise SimulationError(f"node {index} outside every shard")  # pragma: no cover

    def _cross_counts(self) -> list[int]:
        """Cross rows per shard: ``shard_mix`` of the shard, capped.

        The cap bounds queue traffic (pickling dominates past a few
        thousand rows per shard); large shards start with proportionally
        tiny inter-shard variance, so a bounded sample still mixes the
        partitions well inside an instance's round budget.
        """
        return [
            max(2, min(int((stop - start) * self.shard_mix), CROSS_ROW_CAP))
            for start, stop in self.bounds
        ]

    def _cross_exchange(self, round_index: int) -> tuple[int, int]:
        """One coordinator-mediated exchange over pooled cross-shard rows.

        Gathers each shard's sampled rows, runs one symmetric matching
        round over the pooled matrix — mass-conserving by the kernel's
        own symmetry — and scatters the averaged rows back to their
        shards, which then run their local round.  Returns (active
        exchanges, rows shipped).
        """
        counts = self._cross_counts()
        for commands, count in zip(self._commands, counts):
            commands.put(("cross", count))
        replies = self._collect("cross")

        rows = np.concatenate([r[3] for r in replies], axis=0)
        ext = np.concatenate([r[4] for r in replies], axis=0)
        joined = np.concatenate([r[5] for r in replies], axis=0)
        active = 0
        if rows.shape[0] >= 2:
            active = matching_round(
                rows, ext, joined, self._cross_rng, self.config.join_mode
            )
        offset = 0
        for (_, shard_id, idx, *_rest), commands in zip(replies, self._commands):
            span = idx.shape[0]
            commands.put((
                "apply",
                idx,
                rows[offset : offset + span],
                ext[offset : offset + span],
                joined[offset : offset + span],
                round_index,
            ))
            offset += span
        return int(active), int(rows.shape[0])

    def _round_sample(
        self, stats: list[tuple[Any, ...]], k: int, round_index: int, round_messages: int
    ) -> RoundSample:
        """Global round probe assembled from per-shard aggregate replies.

        Workers report (Σx, Σx²) over their joined fraction rows, so the
        coordinator reconstructs the exact global mean/std without any
        row gather — the shard counterpart of the single-process probe.
        """
        reached = sum(s[4] for s in stats)
        total = np.sum([s[3] for s in stats], axis=0)
        spread = 0.0
        if reached > 1:
            frac_sum = np.sum([s[5] for s in stats], axis=0)
            frac_sumsq = np.sum([s[6] for s in stats], axis=0)
            mean = frac_sum / reached
            variance = np.maximum(frac_sumsq / reached - mean**2, 0.0)
            spread = float(np.sqrt(variance).mean())
        return RoundSample(
            instance=self.instances_run,
            round=round_index + 1,
            mass_sum=float(total[:k].sum()),
            weight_sum=float(total[-1]),
            reached=reached,
            spread=spread,
            convergence_rate=None,
            messages=round_messages,
            bytes=round_messages * self.config.message_bytes(),
        )

    def _finish(
        self,
        thresholds: np.ndarray,
        v_thresholds: np.ndarray,
        rounds: int,
        messages: int,
        cross_rows_total: int,
    ) -> ShardInstanceResult:
        """Assemble errors and the consensus estimate from shard partials."""
        truth = EmpiricalCDF(self.values)
        grid = error_grid(truth.minimum, truth.maximum)
        true_at_t = truth.evaluate(thresholds)
        k = thresholds.size

        sample = min(self.node_sample, self.n_nodes)
        global_sample = self._measure_rng.choice(self.n_nodes, size=sample, replace=False)
        for shard_id, (start, stop) in enumerate(self.bounds):
            local = global_sample[(global_sample >= start) & (global_sample < stop)] - start
            self._commands[shard_id].put(("finish", true_at_t, local))
        replies = self._collect("finish")
        parts = [r[2] for r in replies]

        reached = sum(p["reached"] for p in parts)
        missing = sum(p["missing"] for p in parts)
        points_max = max(p["points_max"] for p in parts)
        points_sum = sum(p["points_sum"] for p in parts)

        sample_joined = np.concatenate([p["sample_joined"] for p in parts])
        entire_max, entire_avg = 0.0, 0.0
        if sample_joined.any():
            sample_fractions = np.concatenate(
                [p["sample_fractions"] for p in parts], axis=0
            )[sample_joined]
            sample_minima = np.concatenate([p["sample_minima"] for p in parts])[sample_joined]
            sample_maxima = np.concatenate([p["sample_maxima"] for p in parts])[sample_joined]
            entire_max, entire_avg = entire_domain_stats(
                thresholds, sample_fractions, sample_minima, sample_maxima,
                truth.evaluate(grid), grid,
            )
        entire, points = assemble_error_pairs(
            reached, missing, points_max, points_sum, entire_max, entire_avg
        )

        if reached == 0:
            raise SimulationError("the sharded instance reached no node")
        frac_mean = np.sum([p["frac_sum"] for p in parts], axis=0) / reached
        weight_sum = float(sum(p["weight_sum"] for p in parts))
        estimate = EstimatedCDF(
            thresholds=thresholds,
            fractions=np.clip(frac_mean[:k], 0.0, 1.0),
            minimum=float(min(p["minimum"] for p in parts)),
            maximum=float(max(p["maximum"] for p in parts)),
            system_size=reached / weight_sum if weight_sum > 0 else None,
        )
        return ShardInstanceResult(
            instance_index=self.instances_run,
            thresholds=thresholds,
            v_thresholds=v_thresholds,
            estimate=estimate,
            errors_entire=entire,
            errors_points=points,
            reached=reached,
            n_nodes=self.n_nodes,
            shards=self.shards,
            cross_rows_total=cross_rows_total,
            messages_total=messages,
            bytes_total=messages * self.config.message_bytes(),
        )
