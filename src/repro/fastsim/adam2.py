"""Vectorised Adam2 simulation.

All peers of an aggregation instance share the initiator's threshold
vector, so the entire instance state is three arrays: a dense matrix of
averaged quantities (interpolation fractions, verification fractions, and
the size weight), a per-node extremes matrix, and a joined mask.  A gossip
round is a pass of one of the :mod:`repro.fastsim.exchange` kernels.

The hot path is built around one **batched state tensor per run**: a
single preallocated ``(N, λ)`` matrix (:class:`repro.fastsim.state.BatchState`,
``λ = k + v + 1`` columns over all thresholds) refilled in place for each
consecutive instance, driven through preallocated exchange scratch
(:class:`repro.fastsim.exchange.ExchangeBuffers` — in-place partner
permutations, gather/scatter row buffers).  In the steady state a round
allocates nothing proportional to ``N``, which is what lets the
``matching`` kernel reach million-node populations; the optional
``float32`` mode halves the memory traffic on top.  The multiprocessing
shard driver (:mod:`repro.fastsim.shard`) partitions this same state
across worker processes for populations beyond one core.

Churn semantics (paper §VII-G): replaced nodes get fresh attribute values
from the same distribution; nodes that enter during an instance ignore it
(they are *excluded* from the running instance and from its evaluation
metrics), and are bootstrapped with estimates from their neighbours.
Ground truth for a single instance is the population present at instance
start, so the measured error isolates what churn does to the aggregation
itself (mass loss from departed peers) rather than sampling noise from
replacement values.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.rngs import make_rng, spawn
from repro.types import ErrorPair
from repro.core.cdf import EmpiricalCDF, EstimatedCDF
from repro.core.config import Adam2Config
from repro.core.confidence import estimate_errors_matrix, select_verification_points
from repro.core.interpolation import interpolate_matrix
from repro.core.selection import get_selection
from repro.fastsim.churn import FastChurn
from repro.fastsim.exchange import ExchangeBuffers, matching_round, sequential_round
from repro.fastsim.state import BatchState, resolve_dtype
from repro.metrics.error import error_grid
from repro.metrics.convergence import ConvergenceTrace
from repro.obs.bridges import RateTracker
from repro.obs.events import InstanceCompleted, InstanceStarted, RoundSample
from repro.obs.observer import NULL_HUB, ObserverHub
from repro.workloads.base import AttributeWorkload

__all__ = [
    "Adam2Simulation",
    "FastInstanceResult",
    "FastRunResult",
    "assemble_error_pairs",
    "entire_domain_stats",
    "points_residual_stats",
    "select_instance_points",
]

_KERNELS = {"sequential": sequential_round, "matching": matching_round}


# ----------------------------------------------------------------------
# Error aggregation (shared with the shard driver)
# ----------------------------------------------------------------------
# The paper's two error metrics decompose into per-row statistics that
# combine additively, which is what lets the multiprocessing shard
# driver compute them without gathering the full (N, k) state: each
# shard reports (max, sum-of-row-means, count) partials and the parent
# assembles the same numbers this module computes single-process.


def points_residual_stats(fractions: np.ndarray, true_at_t: np.ndarray) -> tuple[float, float]:
    """Residual partials at the interpolation points over a row block.

    Returns ``(max |frac − truth|, sum over rows of mean |frac − truth|)``
    for the (already clipped) fraction rows of reached nodes.
    """
    if fractions.shape[0] == 0:
        return 0.0, 0.0
    residual = np.abs(fractions - true_at_t[None, :])
    return float(residual.max()), float(residual.mean(axis=1).sum())


def entire_domain_stats(
    thresholds: np.ndarray,
    fractions: np.ndarray,
    minima: np.ndarray,
    maxima: np.ndarray,
    truth_on_grid: np.ndarray,
    grid: np.ndarray,
) -> tuple[float, float]:
    """Entire-domain residual stats (max, mean) over sampled node rows."""
    estimates = interpolate_matrix(thresholds, fractions, minima, maxima, grid)
    residual = np.abs(estimates - truth_on_grid[None, :])
    return float(residual.max(axis=1).max()), float(residual.mean(axis=1).mean())


def assemble_error_pairs(
    n_reached: int,
    missing: int,
    points_max: float,
    points_avg_sum: float,
    entire_max: float,
    entire_avg_mean: float,
) -> tuple[ErrorPair, ErrorPair]:
    """Combine residual partials into the paper's (entire, points) pairs.

    Eligible nodes the instance has not reached count error 1 (their
    approximation is undefined — the paper's early-round plateau at 1).
    """
    total = n_reached + missing
    if total == 0:
        raise SimulationError("no eligible nodes to evaluate")
    if n_reached == 0:
        return ErrorPair(1.0, 1.0), ErrorPair(1.0, 1.0)
    points = ErrorPair(
        maximum=1.0 if missing else points_max,
        average=(points_avg_sum + missing) / total,
    )
    entire = ErrorPair(
        maximum=1.0 if missing else entire_max,
        average=(entire_avg_mean * n_reached + missing) / total,
    )
    return entire, points


def select_instance_points(
    config: Adam2Config,
    previous: EstimatedCDF | None,
    values: np.ndarray,
    select_rng: np.random.Generator,
    *,
    neighbour_sample: int,
    selection: str | None = None,
    bootstrap: str | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Choose an instance's interpolation and verification thresholds.

    The initiator refines ``previous`` (its estimate from the last
    completed instance) when it has one, else falls back to the
    bootstrap heuristic over a neighbour-value sample.  Shared by the
    single-process simulator (per-initiator previous estimates) and the
    shard driver (consensus previous estimate held by the coordinator).
    """
    pool_size = min(neighbour_sample, values.size)
    neighbour_values = values[
        select_rng.choice(values.size, size=pool_size, replace=False)
    ]
    if previous is None:
        heuristic = bootstrap or config.bootstrap
    else:
        heuristic = selection or config.selection
    thresholds = get_selection(heuristic).select(
        config.points, previous, select_rng, neighbour_values=neighbour_values
    )
    if previous is not None:
        lo, hi = previous.minimum, previous.maximum
    else:
        lo, hi = float(neighbour_values.min()), float(neighbour_values.max())
    v_thresholds = select_verification_points(
        config.verification_points, config.verification_target, previous, lo, hi
    )
    return np.sort(thresholds), np.sort(v_thresholds)


@dataclass
class FastInstanceResult:
    """Outcome of one aggregation instance in the fast simulator.

    Error pairs aggregate over the participating nodes exactly as in the
    paper: ``Err_m = max_p Err_m(p)`` and ``Err_a = avg_p Err_a(p)``.
    """

    instance_index: int
    thresholds: np.ndarray
    v_thresholds: np.ndarray
    fractions: np.ndarray
    v_fractions: np.ndarray
    weights: np.ndarray
    minimum: np.ndarray
    maximum: np.ndarray
    joined: np.ndarray
    participants: np.ndarray
    truth: EmpiricalCDF
    errors_entire: ErrorPair
    errors_points: ErrorPair
    trace: ConvergenceTrace | None = None
    confidence_sample: np.ndarray | None = None
    est_errm: np.ndarray | None = None
    est_erra: np.ndarray | None = None
    true_errm: np.ndarray | None = None
    true_erra: np.ndarray | None = None
    messages_total: int = 0
    bytes_total: int = 0

    def mean_estimate(self) -> EstimatedCDF:
        """The consensus estimate (node estimates agree to ~1e-5)."""
        mask = self.joined & self.participants
        if not mask.any():
            raise SimulationError("no participant completed the instance")
        return EstimatedCDF(
            thresholds=self.thresholds,
            fractions=self.fractions[mask].mean(axis=0, dtype=np.float64),
            minimum=float(self.minimum[mask].min()),
            maximum=float(self.maximum[mask].max()),
            system_size=float(np.median(self.size_estimates())) if self.weights[mask].max() > 0 else None,
        )

    def size_estimates(self) -> np.ndarray:
        """Per-node system-size estimates ``1/w`` (positive weights only)."""
        mask = self.joined & (self.weights > 0)
        if not mask.any():
            raise SimulationError("the initiator weight reached no surviving node")
        return 1.0 / self.weights[mask]


@dataclass
class FastRunResult:
    """Outcome of a multi-instance campaign."""

    instances: list[FastInstanceResult] = field(default_factory=list)

    @property
    def final(self) -> FastInstanceResult:
        if not self.instances:
            raise SimulationError("no instances were run")
        return self.instances[-1]

    @property
    def estimate(self) -> EstimatedCDF:
        return self.final.mean_estimate()

    @property
    def final_errors(self) -> ErrorPair:
        return self.final.errors_entire

    def errors_by_instance(self) -> tuple[list[float], list[float]]:
        """(max errors, avg errors) per instance — the Fig. 7 series."""
        return (
            [r.errors_entire.maximum for r in self.instances],
            [r.errors_entire.average for r in self.instances],
        )


class Adam2Simulation:
    """Run Adam2 over a synthetic population, vectorised.

    Args:
        workload: attribute distribution for the population (and for
            churn replacements).
        n_nodes: population size (constant under replacement churn).
        config: protocol parameters.
        seed: experiment seed; every run is deterministic given it.
        exchange: ``"sequential"`` (PeerSim-style, reference) or
            ``"matching"`` (fully vectorised, for very large n).
        churn_rate: fraction of nodes replaced per round (0 disables).
        neighbour_sample: neighbour attribute values visible to an
            initiator for the neighbour-based bootstrap.
        node_sample: node subsample size for the expensive entire-domain
            error metrics (the cross-node spread is ~1e-5, see §VII-A).
        sanitize: run the invariant sanitizer after every round
            (default: follow the ``ADAM2_SANITIZE`` env var).
        dtype: state precision, ``"float64"`` (reference) or
            ``"float32"`` (half the per-round memory traffic; the
            sanitizer scales its mass tolerance to the dtype).
        obs: observability hub (:mod:`repro.obs`); per-round probes and
            lifecycle events are emitted only when observers are
            attached, so the default costs one branch per round.
    """

    def __init__(
        self,
        workload: AttributeWorkload,
        n_nodes: int,
        config: Adam2Config,
        seed: int = 0,
        exchange: str = "sequential",
        churn_rate: float = 0.0,
        neighbour_sample: int | None = None,
        node_sample: int = 64,
        sanitize: bool | None = None,
        dtype: str = "float64",
        obs: ObserverHub | None = None,
    ):
        if n_nodes < 2:
            raise ConfigurationError("need at least 2 nodes")
        if exchange not in _KERNELS:
            raise ConfigurationError(f"unknown exchange kernel {exchange!r}; expected one of {sorted(_KERNELS)}")
        self.workload = workload
        self.config = config
        self.n_nodes = n_nodes
        self.kernel = _KERNELS[exchange]
        self.dtype = resolve_dtype(dtype)
        self.rng = make_rng(seed)
        self._value_rng = spawn(self.rng)
        self._gossip_rng = spawn(self.rng)
        self._select_rng = spawn(self.rng)
        self._measure_rng = spawn(self.rng)
        self._drift_rng = spawn(self.rng)
        self.values = workload.sample(n_nodes, self._value_rng)
        self.churn = (
            FastChurn(churn_rate, workload, spawn(self.rng)) if churn_rate > 0 else None
        )
        self.neighbour_sample = neighbour_sample or max(config.points, 20)
        self.node_sample = node_sample
        from repro.lint.sanitizer import FastsimSanitizer, sanitize_enabled

        self._sanitizer = FastsimSanitizer() if sanitize_enabled(sanitize) else None
        self._obs = obs if obs is not None else NULL_HUB
        # The (N, λ) batch and exchange scratch are sized on the first
        # instance (λ depends on the selected thresholds) and reused for
        # every one after: the steady-state instance allocates nothing
        # proportional to n beyond its result arrays.
        self._batch: BatchState | None = None
        self._buffers: ExchangeBuffers | None = None
        # Post-instance per-node estimate state (shared thresholds).
        self.prev_thresholds: np.ndarray | None = None
        self.prev_fractions: np.ndarray | None = None
        self.prev_minimum: np.ndarray | None = None
        self.prev_maximum: np.ndarray | None = None
        self.has_estimate = np.zeros(n_nodes, dtype=bool)
        self.instances_run = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def true_cdf(self) -> EmpiricalCDF:
        """Ground truth over the current live population."""
        return EmpiricalCDF(self.values)

    def run_instance(
        self,
        rounds: int | None = None,
        selection: str | None = None,
        bootstrap: str | None = None,
        track: bool = False,
        track_every: int = 1,
        confidence_sample: int | None = None,
        drift=None,
    ) -> FastInstanceResult:
        """Execute one full aggregation instance.

        Args:
            rounds: instance duration (default: config TTL).
            selection: refinement heuristic override (default: config).
            bootstrap: first-instance heuristic override (default: config).
            track: record a per-round :class:`ConvergenceTrace` (Fig. 6).
            track_every: measure every this many rounds when tracking.
            confidence_sample: additionally compute true per-node errors
                for this many nodes to evaluate confidence estimation
                (Fig. 14); requires ``config.verification_points > 0``.
            drift: optional :class:`repro.workloads.dynamic.DriftModel`
                mutating the population's values every round (§VII-F).
                Nodes evaluate their attribute only when they join, so
                already-joined contributions are *not* re-evaluated; the
                reported errors compare against the population at
                instance *end* (the error therefore includes how far the
                CDF moved during the instance, as the paper describes).
        """
        rounds = rounds if rounds is not None else self.config.rounds_per_instance
        if rounds < 1:
            raise ConfigurationError("an instance needs at least one round")
        n = self.n_nodes
        cfg = self.config

        initiator = int(self._select_rng.integers(0, n))
        thresholds, v_thresholds = self._select_points(initiator, selection, bootstrap)
        k = thresholds.size
        v = v_thresholds.size

        all_t = np.concatenate((thresholds, v_thresholds))
        # Columns: k interpolation fractions, v verification fractions, weight.
        batch = self._batch = BatchState.ensure(self._batch, n, k + v + 1, self.dtype)
        buffers = self._buffers = ExchangeBuffers.ensure(
            self._buffers, n, batch.width, batch.dtype
        )
        batch.begin_instance(self.values, all_t, initiator)
        averaged = batch.averaged
        extremes = batch.extremes
        joined = batch.joined
        excluded = batch.excluded
        participants = batch.participants

        start_values = self.values.copy()
        truth = EmpiricalCDF(start_values)
        grid = error_grid(truth.minimum, truth.maximum)
        trace = ConvergenceTrace() if track else None
        messages = 0
        sanitizer = self._sanitizer
        if sanitizer is not None:
            sanitizer.begin_instance(averaged, cfg.join_mode, instance=self.instances_run)
        hub = self._obs
        probes = hub if hub.probes_enabled else None
        rate_tracker = RateTracker() if probes is not None else None
        if probes is not None:
            probes.instance_started(InstanceStarted(
                instance=self.instances_run,
                thresholds=tuple(float(t) for t in thresholds),
                v_thresholds=tuple(float(t) for t in v_thresholds),
            ))

        for round_index in range(rounds):
            if drift is not None and not drift.is_static:
                self.values = drift.apply(self.values, self._drift_rng)
                # Unreached nodes evaluate their attribute at join time:
                # keep their pending indicator rows in sync with the
                # drifted values (paper §VII-F).
                batch.refresh_pending(self.values, all_t)
                truth = EmpiricalCDF(self.values)
                grid = error_grid(truth.minimum, truth.maximum)
            if self.churn is not None:
                self.churn.apply(
                    batch, self.values, all_t,
                    self.prev_fractions, self.prev_minimum, self.prev_maximum,
                    self.has_estimate,
                )
            if sanitizer is not None and (self.churn is not None or (drift is not None and not drift.is_static)):
                # Churn resets rows and drift re-evaluates pending ones —
                # legitimate external mass changes; rebase the invariant.
                sanitizer.rebaseline(averaged)
            with hub.span("round"):
                active = self.kernel(
                    averaged, extremes, joined, self._gossip_rng, cfg.join_mode,
                    excluded=excluded if self.churn is not None else None,
                    buffers=buffers,
                )
            if sanitizer is not None:
                sanitizer.after_round(averaged, k, round_index)
            # An exchange with an excluded peer carries no instance data;
            # approximate the active count accordingly for accounting.
            messages += 2 * active
            if probes is not None:
                probes.round_sample(self._round_sample(
                    averaged, joined, k, round_index, 2 * active, rate_tracker
                ))
            if track and (round_index + 1) % track_every == 0:
                entire, points = self._instance_errors(
                    averaged[:, :k], extremes, joined, participants & ~excluded, thresholds, truth, grid
                )
                trace.record(round_index + 1, entire, points)

        fractions = np.clip(averaged[:, :k], 0.0, 1.0)
        v_fractions = np.clip(averaged[:, k : k + v], 0.0, 1.0) if v else np.empty((n, 0))
        # The batch tensor is reused by the next instance: results must
        # own copies of everything they keep (clip already copies).
        weights = averaged[:, -1].copy()
        eligible = participants & ~excluded
        entire, points = self._instance_errors(
            fractions, extremes, joined, eligible, thresholds, truth, grid
        )
        result = FastInstanceResult(
            instance_index=self.instances_run,
            thresholds=thresholds,
            v_thresholds=v_thresholds,
            fractions=fractions,
            v_fractions=v_fractions,
            weights=weights,
            minimum=extremes[:, 0].copy(),
            maximum=extremes[:, 1].copy(),
            joined=joined.copy(),
            participants=eligible,
            truth=truth,
            errors_entire=entire,
            errors_points=points,
            trace=trace,
            messages_total=messages,
            bytes_total=messages * cfg.message_bytes(),
        )
        if v and confidence_sample:
            self._evaluate_confidence(result, confidence_sample, grid)

        if probes is not None:
            probes.instance_completed(InstanceCompleted(
                instance=self.instances_run,
                rounds=rounds,
                reached=int((joined & eligible).sum()),
                err_max=entire.maximum,
                err_avg=entire.average,
                messages=messages,
                bytes=result.bytes_total,
            ))
        self._commit_estimates(result, excluded)
        self.instances_run += 1
        return result

    def run_instances(
        self,
        count: int,
        rounds: int | None = None,
        selection: str | None = None,
        bootstrap: str | None = None,
        track_all: bool = False,
    ) -> FastRunResult:
        """Run several consecutive instances (paper Figs. 5, 7, 10, 13)."""
        if count < 1:
            raise ConfigurationError("need at least one instance")
        run = FastRunResult()
        for _ in range(count):
            run.instances.append(
                self.run_instance(rounds=rounds, selection=selection, bootstrap=bootstrap, track=track_all)
            )
        return run

    def system_errors(self, node_sample: int | None = None) -> ErrorPair:
        """Error of the *current* estimates of all nodes vs the live truth.

        This is the Fig. 13 metric: after several instances under churn,
        every node (including churned-in nodes, which were bootstrapped by
        neighbours) holds an estimate; aggregate its error against the
        current population.
        """
        if self.prev_fractions is None:
            raise SimulationError("no instance has completed yet")
        truth = self.true_cdf()
        grid = error_grid(truth.minimum, truth.maximum)
        n = self.n_nodes
        sample = min(node_sample or self.node_sample, n)
        idx = self._measure_rng.choice(n, size=sample, replace=False)
        estimates = interpolate_matrix(
            self.prev_thresholds,
            self.prev_fractions[idx],
            self.prev_minimum[idx],
            self.prev_maximum[idx],
            grid,
        )
        residual = np.abs(estimates - truth.evaluate(grid)[None, :])
        return ErrorPair(
            maximum=float(residual.max(axis=1).max()),
            average=float(residual.mean(axis=1).mean()),
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _round_sample(
        self,
        averaged: np.ndarray,
        joined: np.ndarray,
        k: int,
        round_index: int,
        round_messages: int,
        tracker: RateTracker,
    ) -> RoundSample:
        """Per-round observability probe over the joined rows.

        The weight column sums to 1.0 over joined nodes under the
        symmetric exchange (the conservation diagnostic); the fraction
        mass grows as the instance reaches new nodes and is conserved
        once fully spread.  The spread is the epidemic-averaging variance
        diagnostic whose per-round decay factor the paper's convergence
        claims are about.
        """
        reached = int(joined.sum())
        rows = averaged[joined]
        mass_sum = float(rows[:, :k].sum(dtype=np.float64))
        weight_sum = float(rows[:, -1].sum(dtype=np.float64))
        spread = float(rows[:, :k].std(axis=0).mean()) if reached > 1 else 0.0
        return RoundSample(
            instance=self.instances_run,
            round=round_index + 1,
            mass_sum=mass_sum,
            weight_sum=weight_sum,
            reached=reached,
            spread=spread,
            convergence_rate=tracker.rate(self.instances_run, spread),
            messages=round_messages,
            bytes=round_messages * self.config.message_bytes(),
        )

    def _select_points(
        self, initiator: int, selection: str | None, bootstrap: str | None
    ) -> tuple[np.ndarray, np.ndarray]:
        previous = None
        if self.has_estimate[initiator] and self.prev_fractions is not None:
            previous = EstimatedCDF(
                self.prev_thresholds,
                self.prev_fractions[initiator],
                float(self.prev_minimum[initiator]),
                float(self.prev_maximum[initiator]),
            )
        return select_instance_points(
            self.config,
            previous,
            self.values,
            self._select_rng,
            neighbour_sample=self.neighbour_sample,
            selection=selection,
            bootstrap=bootstrap,
        )

    def _instance_errors(
        self,
        fractions: np.ndarray,
        extremes: np.ndarray,
        joined: np.ndarray,
        eligible: np.ndarray,
        thresholds: np.ndarray,
        truth: EmpiricalCDF,
        grid: np.ndarray,
    ) -> tuple[ErrorPair, ErrorPair]:
        """Aggregate errors over eligible nodes, counting error 1 for
        eligible nodes the instance has not reached (their approximation
        is undefined — the paper's early-round plateau at 1)."""
        reached = joined & eligible
        missing = int((eligible & ~joined).sum())
        n_reached = int(reached.sum())
        if n_reached + missing == 0:
            raise SimulationError("no eligible nodes to evaluate")
        if n_reached == 0:
            return assemble_error_pairs(0, missing, 0.0, 0.0, 0.0, 0.0)

        frac = np.clip(fractions[reached], 0.0, 1.0)
        points_max, points_avg_sum = points_residual_stats(
            frac, truth.evaluate(thresholds)
        )

        idx_pool = np.flatnonzero(reached)
        if idx_pool.size > self.node_sample:
            idx = idx_pool[self._measure_rng.choice(idx_pool.size, size=self.node_sample, replace=False)]
        else:
            idx = idx_pool
        entire_max, entire_avg_mean = entire_domain_stats(
            thresholds, fractions[idx], extremes[idx, 0], extremes[idx, 1],
            truth.evaluate(grid), grid,
        )
        return assemble_error_pairs(
            n_reached, missing, points_max, points_avg_sum, entire_max, entire_avg_mean
        )

    def _evaluate_confidence(self, result: FastInstanceResult, sample: int, grid: np.ndarray) -> None:
        reached = np.flatnonzero(result.joined & result.participants)
        if reached.size == 0:
            raise SimulationError("no node completed the instance")
        if reached.size > sample:
            reached = reached[self._measure_rng.choice(reached.size, size=sample, replace=False)]
        est_m, est_a = estimate_errors_matrix(
            result.thresholds,
            result.fractions[reached],
            result.minimum[reached],
            result.maximum[reached],
            result.v_thresholds,
            result.v_fractions[reached],
        )
        estimates = interpolate_matrix(
            result.thresholds,
            result.fractions[reached],
            result.minimum[reached],
            result.maximum[reached],
            grid,
        )
        residual = np.abs(estimates - result.truth.evaluate(grid)[None, :])
        result.confidence_sample = reached
        result.est_errm = est_m
        result.est_erra = est_a
        result.true_errm = residual.max(axis=1)
        result.true_erra = residual.mean(axis=1)

    def _commit_estimates(self, result: FastInstanceResult, excluded: np.ndarray) -> None:
        """Store per-node estimates for refinement and Fig.-13 metrics."""
        self.prev_thresholds = result.thresholds.copy()
        fractions = result.fractions.copy()
        minimum = result.minimum.copy()
        maximum = result.maximum.copy()
        reached = result.joined & ~excluded
        if not reached.any():
            # The instance died (e.g. the initiator churned out before any
            # exchange — increasingly likely at extreme churn rates).
            # Nodes keep whatever estimates they had; the run's errors
            # already report the total failure (error 1.0).
            return
        # Nodes that ignored the instance (mid-instance joiners) are
        # bootstrapped by a random reached neighbour, as in the paper.
        stale = np.flatnonzero(~reached)
        if stale.size:
            pool = np.flatnonzero(reached)
            donors = pool[self._measure_rng.integers(0, pool.size, size=stale.size)]
            fractions[stale] = fractions[donors]
            minimum[stale] = minimum[donors]
            maximum[stale] = maximum[donors]
        self.prev_fractions = fractions
        self.prev_minimum = minimum
        self.prev_maximum = maximum
        self.has_estimate[:] = True
