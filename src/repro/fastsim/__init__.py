"""Vectorised large-N simulator for parameter sweeps.

The object-per-node engine in :mod:`repro.simulation` is the fidelity
reference; this package re-implements the same gossip semantics on NumPy
arrays so the paper's sweeps (system sizes up to 1,000,000 nodes, dozens
of configurations) run in seconds.  All nodes of an aggregation instance
share one threshold vector, so the per-node state is one batched
``(N, λ)`` matrix (:class:`~repro.fastsim.state.BatchState`, reused
across instances) and a gossip round is a pass of a kernel over
preallocated scratch (:class:`~repro.fastsim.exchange.ExchangeBuffers`).
Populations beyond one process's appetite run through the
multiprocessing shard driver (:class:`~repro.fastsim.shard.ShardedAdam2`).
"""

from repro.fastsim.adam2 import Adam2Simulation, FastInstanceResult, FastRunResult
from repro.fastsim.churn import FastChurn
from repro.fastsim.equidepth import EquiDepthSimulation, EquiDepthPhaseResult
from repro.fastsim.exchange import ExchangeBuffers, matching_round, sequential_round
from repro.fastsim.shard import ShardedAdam2, ShardInstanceResult, ShardRunResult
from repro.fastsim.state import BatchState, InstanceArrays, resolve_dtype

__all__ = [
    "Adam2Simulation",
    "FastInstanceResult",
    "FastRunResult",
    "FastChurn",
    "EquiDepthSimulation",
    "EquiDepthPhaseResult",
    "ExchangeBuffers",
    "BatchState",
    "ShardedAdam2",
    "ShardInstanceResult",
    "ShardRunResult",
    "sequential_round",
    "matching_round",
    "InstanceArrays",
    "resolve_dtype",
    "run_adam2",
]


def run_adam2(config, workload, **kwargs):
    """Deprecated: use ``repro.api.run(config, workload, backend="fast")``."""
    import warnings

    warnings.warn(
        "repro.fastsim.run_adam2 is deprecated; use repro.api.run(..., backend='fast')",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.api import run

    return run(config, workload, backend="fast", **kwargs)
