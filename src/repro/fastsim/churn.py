"""Vectorised replacement churn for the fast simulator.

Replacement churn keeps the population size constant (paper §VII-G): each
round a binomially distributed number of nodes leaves and is replaced by
fresh nodes with new attribute values from the same distribution.  In the
array representation a replacement simply resets the victim's row:
attribute value, initial indicator state, extremes, and the joined flag.

:meth:`FastChurn.apply` performs the whole round's replacement as one
vectorised mask application over a :class:`~repro.fastsim.state.BatchState`
— victim selection, value resampling, row reset, and the neighbour-donor
bootstrap of the joiners' previous estimates all operate on index arrays,
never per-node Python loops.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.fastsim.state import BatchState
from repro.workloads.base import AttributeWorkload

__all__ = ["FastChurn"]


class FastChurn:
    """Replacement churn over array state.

    Args:
        rate: expected fraction of nodes replaced per round.
        workload: distribution for replacement attribute values.
        rng: generator for victim selection and value sampling.
    """

    def __init__(self, rate: float, workload: AttributeWorkload, rng: np.random.Generator):
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(f"churn rate must be in [0, 1], got {rate}")
        self.rate = rate
        self.workload = workload
        self.rng = rng
        self.replaced_total = 0

    def select_victims(self, n: int) -> np.ndarray:
        """Indices of nodes replaced this round (may be empty)."""
        if self.rate <= 0.0:
            return np.empty(0, dtype=int)
        k = int(self.rng.binomial(n, self.rate))
        k = min(k, n - 2)  # never (almost) empty the system
        if k <= 0:
            return np.empty(0, dtype=int)
        self.replaced_total += k
        return self.rng.choice(n, size=k, replace=False)

    def fresh_values(self, k: int) -> np.ndarray:
        return self.workload.sample(k, self.rng)

    def apply(
        self,
        batch: BatchState,
        values: np.ndarray,
        all_t: np.ndarray,
        prev_fractions: np.ndarray | None = None,
        prev_minimum: np.ndarray | None = None,
        prev_maximum: np.ndarray | None = None,
        has_estimate: np.ndarray | None = None,
    ) -> np.ndarray:
        """One round of replacement churn over the batch, vectorised.

        Selects victims, samples their replacement values into
        ``values`` (the live population array, mutated in place), resets
        the victims' batch rows, and — when previous-instance estimate
        arrays are provided — bootstraps each joiner with the estimate of
        a uniformly random donor node, as in the paper.

        Returns the victim index array (empty when no node churned).
        """
        victims = self.select_victims(batch.n)
        if victims.size == 0:
            return victims
        fresh = self.fresh_values(victims.size)
        values[victims] = fresh
        batch.reset_rows(victims, fresh, all_t)
        if prev_fractions is not None:
            donors = self.rng.integers(0, batch.n, size=victims.size)
            prev_fractions[victims] = prev_fractions[donors]
            if prev_minimum is not None:
                prev_minimum[victims] = prev_minimum[donors]
            if prev_maximum is not None:
                prev_maximum[victims] = prev_maximum[donors]
            if has_estimate is not None:
                has_estimate[victims] = has_estimate[donors]
        return victims
