"""Vectorised replacement churn for the fast simulator.

Replacement churn keeps the population size constant (paper §VII-G): each
round a binomially distributed number of nodes leaves and is replaced by
fresh nodes with new attribute values from the same distribution.  In the
array representation a replacement simply resets the victim's row:
attribute value, initial indicator state, extremes, and the joined flag.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.workloads.base import AttributeWorkload

__all__ = ["FastChurn"]


class FastChurn:
    """Replacement churn over array state.

    Args:
        rate: expected fraction of nodes replaced per round.
        workload: distribution for replacement attribute values.
        rng: generator for victim selection and value sampling.
    """

    def __init__(self, rate: float, workload: AttributeWorkload, rng: np.random.Generator):
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(f"churn rate must be in [0, 1], got {rate}")
        self.rate = rate
        self.workload = workload
        self.rng = rng
        self.replaced_total = 0

    def select_victims(self, n: int) -> np.ndarray:
        """Indices of nodes replaced this round (may be empty)."""
        if self.rate <= 0.0:
            return np.empty(0, dtype=int)
        k = int(self.rng.binomial(n, self.rate))
        k = min(k, n - 2)  # never (almost) empty the system
        if k <= 0:
            return np.empty(0, dtype=int)
        self.replaced_total += k
        return self.rng.choice(n, size=k, replace=False)

    def fresh_values(self, k: int) -> np.ndarray:
        return self.workload.sample(k, self.rng)
