"""EquiDepth baseline, fast implementation (Haridasan & van Renesse '08).

Each node maintains a bounded synopsis approximating an equi-depth
histogram of the attribute values.  A phase starts with every node holding
only its own value; a gossip exchange merges the two synopses and, when
the merge exceeds the bound, reduces it back to ``synopsis_size`` entries.
Three reduction modes:

* ``"histogram"`` (default, closest to Haridasan & van Renesse): the
  synopsis is a *weighted* value list (representative value, mass).  An
  exchange halves both weights (the averaging-protocol invariant: each
  node's total mass stays 1), concatenates, and re-bins to
  ``synopsis_size`` equi-depth bins, each represented by its
  mass-midpoint value.  Repeated quantile-of-quantile re-binning is what
  keeps the error from converging: the synopsis resolution is bounded by
  the bin mass regardless of how long the phase runs.
* ``"rank"``: unweighted samples; the union's values at evenly spaced
  ranks.  Both peers keep the *same* reduced synopsis, maximising the
  sample-duplication effect the paper discusses (§VII-A).
* ``"resample"``: each peer draws its bound independently at random from
  the union (less duplication, more sampling noise).

Unlike Adam2, the synopsis does not converge towards exact CDF values at
fixed thresholds — its accuracy plateaus after a few rounds and does not
improve across phases (paper Figs. 6b and 8).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.rngs import make_rng, spawn
from repro.types import ErrorPair
from repro.core.cdf import EmpiricalCDF, EstimatedCDF
from repro.fastsim.churn import FastChurn
from repro.fastsim.exchange import random_partners
from repro.metrics.convergence import ConvergenceTrace
from repro.metrics.error import error_grid
from repro.workloads.base import AttributeWorkload

__all__ = ["EquiDepthSimulation", "EquiDepthPhaseResult", "merge_histograms"]

_MODES = ("histogram", "rank", "resample")


def merge_histograms(
    values_a: np.ndarray,
    weights_a: np.ndarray,
    values_b: np.ndarray,
    weights_b: np.ndarray,
    bound: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Merge two weighted synopses into one, re-binned to ``bound`` bins.

    Weights are halved on each side (so a node's total mass is conserved
    at 1, exactly like the averaging protocol's invariant); the union is
    then reduced to ``bound`` entries by repeatedly merging the adjacent
    pair with the smallest combined mass into its weighted-mean value —
    the standard streaming equi-depth maintenance step.  Mass is
    conserved exactly, so heavy atoms keep their mass; the resolution
    loss (merged values are weighted means, no longer actual attribute
    values) is what bounds EquiDepth's accuracy regardless of how long a
    phase runs.
    """
    values = np.concatenate((values_a, values_b))
    weights = np.concatenate((weights_a, weights_b)) * 0.5
    order = np.argsort(values, kind="stable")
    values = values[order]
    weights = weights[order]
    # Collapse exact duplicates first (free resolution).
    if values.size > 1:
        boundary = np.empty(values.size, dtype=bool)
        boundary[0] = True
        boundary[1:] = values[1:] != values[:-1]
        if not boundary.all():
            starts = np.flatnonzero(boundary)
            weights = np.add.reduceat(weights, starts)
            values = values[starts]
    while values.size > bound:
        need = values.size - bound
        pair_mass = weights[:-1] + weights[1:]
        candidates = np.argsort(pair_mass, kind="stable")
        taken = np.zeros(values.size, dtype=bool)
        merge_left: list[int] = []
        for idx in candidates:
            if need == 0:
                break
            i = int(idx)
            if taken[i] or taken[i + 1]:
                continue
            taken[i] = taken[i + 1] = True
            merge_left.append(i)
            need -= 1
        keep = np.ones(values.size, dtype=bool)
        for i in merge_left:
            mass = weights[i] + weights[i + 1]
            values[i] = (values[i] * weights[i] + values[i + 1] * weights[i + 1]) / mass
            weights[i] = mass
            keep[i + 1] = False
        values = values[keep]
        weights = weights[keep]
    return values, weights


@dataclass
class EquiDepthPhaseResult:
    """Outcome of one EquiDepth phase."""

    phase_index: int
    truth: EmpiricalCDF
    errors_entire: ErrorPair
    errors_points: ErrorPair
    trace: ConvergenceTrace | None = None
    messages_total: int = 0
    bytes_total: int = 0


class EquiDepthSimulation:
    """Run EquiDepth phases over a synthetic population.

    Args:
        workload: attribute distribution.
        n_nodes: population size.
        synopsis_size: histogram bin count / synopsis bound (comparable
            to Adam2's ``λ``; the paper uses the same number of bins as
            interpolation points for a fair comparison).
        seed: determinism seed.
        mode: synopsis reduction mode (see module docstring).
        churn_rate: replacement churn per round.
        node_sample: node subsample for the expensive error metrics.
        value_bytes: wire-size model per synopsis entry.
    """

    def __init__(
        self,
        workload: AttributeWorkload,
        n_nodes: int,
        synopsis_size: int = 50,
        seed: int = 0,
        mode: str = "histogram",
        churn_rate: float = 0.0,
        node_sample: int = 48,
        value_bytes: int = 16,
    ):
        if n_nodes < 2:
            raise ConfigurationError("need at least 2 nodes")
        if synopsis_size < 2:
            raise ConfigurationError("synopsis size must be >= 2")
        if mode not in _MODES:
            raise ConfigurationError(f"unknown reduction mode {mode!r}; expected one of {_MODES}")
        self.workload = workload
        self.n_nodes = n_nodes
        self.synopsis_size = synopsis_size
        self.mode = mode
        self.rng = make_rng(seed)
        self.values = workload.sample(n_nodes, spawn(self.rng))
        self._gossip_rng = spawn(self.rng)
        self._measure_rng = spawn(self.rng)
        self.churn = FastChurn(churn_rate, workload, spawn(self.rng)) if churn_rate > 0 else None
        self.node_sample = node_sample
        self.value_bytes = value_bytes
        self.phases_run = 0
        self._synopses: list[np.ndarray] = []
        self._weights: list[np.ndarray] = []

    # ------------------------------------------------------------------

    def true_cdf(self) -> EmpiricalCDF:
        return EmpiricalCDF(self.values)

    def run_phase(self, rounds: int = 25, track: bool = False, track_every: int = 1) -> EquiDepthPhaseResult:
        """Run one EquiDepth phase (fresh synopses, fixed duration)."""
        if rounds < 1:
            raise ConfigurationError("a phase needs at least one round")
        n = self.n_nodes
        self._synopses = [np.asarray([v]) for v in self.values]
        self._weights = [np.asarray([1.0]) for _ in range(n)]
        participants = np.ones(n, dtype=bool)
        truth = EmpiricalCDF(self.values.copy())
        grid = error_grid(truth.minimum, truth.maximum, max_points=50_001)
        trace = ConvergenceTrace() if track else None
        messages = 0

        for round_index in range(rounds):
            if self.churn is not None:
                victims = self.churn.select_victims(n)
                if victims.size:
                    fresh = self.churn.fresh_values(victims.size)
                    self.values[victims] = fresh
                    for i, value in zip(victims, fresh):
                        self._synopses[int(i)] = np.asarray([value])
                        self._weights[int(i)] = np.asarray([1.0])
                    participants[victims] = False
            messages += 2 * self._gossip_round()
            if track and (round_index + 1) % track_every == 0:
                entire, points = self._phase_errors(truth, grid, participants)
                trace.record(round_index + 1, entire, points)

        entire, points = self._phase_errors(truth, grid, participants)
        result = EquiDepthPhaseResult(
            phase_index=self.phases_run,
            truth=truth,
            errors_entire=entire,
            errors_points=points,
            trace=trace,
            messages_total=messages,
            bytes_total=messages * self.value_bytes * self.synopsis_size,
        )
        self.phases_run += 1
        return result

    def run_phases(self, count: int, rounds: int = 25) -> list[EquiDepthPhaseResult]:
        """Run several phases; each starts from scratch (paper Fig. 8)."""
        return [self.run_phase(rounds=rounds) for _ in range(count)]

    def node_estimate(self, node: int) -> EstimatedCDF:
        """The equi-depth-histogram CDF estimate of one node."""
        synopsis = self._synopses[node]
        weights = self._weights[node]
        order = np.argsort(synopsis, kind="stable")
        synopsis = synopsis[order]
        weights = weights[order]
        # Cumulative convention: a synopsis entry at value v carries the
        # estimated F(v) (mass at or below v).  Exact for pure atoms; for
        # continuous bins it overstates by at most half a bin's mass.
        cumulative = np.cumsum(weights)
        fractions = cumulative / cumulative[-1]
        return EstimatedCDF(
            thresholds=synopsis,
            fractions=fractions,
            minimum=float(synopsis[0]),
            maximum=float(synopsis[-1]),
        )

    # ------------------------------------------------------------------

    def _gossip_round(self) -> int:
        n = self.n_nodes
        order, partners = random_partners(n, self._gossip_rng)
        bound = self.synopsis_size
        synopses = self._synopses
        weights = self._weights
        mode = self.mode
        rng = self._gossip_rng
        for i in range(n):
            p = int(order[i])
            q = int(partners[i])
            if mode == "histogram":
                merged_v, merged_w = merge_histograms(
                    synopses[p], weights[p], synopses[q], weights[q], bound
                )
                synopses[p] = merged_v
                weights[p] = merged_w
                synopses[q] = merged_v.copy()
                weights[q] = merged_w.copy()
                continue
            union = np.concatenate((synopses[p], synopses[q]))
            if union.size <= bound:
                synopses[p] = union
                synopses[q] = union.copy()
            elif mode == "resample":
                synopses[p] = union[rng.choice(union.size, size=bound, replace=False)]
                synopses[q] = union[rng.choice(union.size, size=bound, replace=False)]
            else:  # rank
                union.sort()
                ranks = np.linspace(0, union.size - 1, bound).round().astype(int)
                reduced = union[ranks]
                synopses[p] = reduced
                synopses[q] = reduced.copy()
            weights[p] = np.full(synopses[p].size, 1.0 / synopses[p].size)
            weights[q] = np.full(synopses[q].size, 1.0 / synopses[q].size)
        return n

    def _phase_errors(
        self, truth: EmpiricalCDF, grid: np.ndarray, participants: np.ndarray
    ) -> tuple[ErrorPair, ErrorPair]:
        pool = np.flatnonzero(participants)
        if pool.size == 0:
            raise SimulationError("no participants to evaluate")
        if pool.size > self.node_sample:
            pool = pool[self._measure_rng.choice(pool.size, size=self.node_sample, replace=False)]
        true_grid = truth.evaluate(grid)
        max_entire = 0.0
        avg_entire: list[float] = []
        max_points = 0.0
        avg_points: list[float] = []
        for node in pool:
            estimate = self.node_estimate(int(node))
            residual = np.abs(estimate.evaluate(grid) - true_grid)
            max_entire = max(max_entire, float(residual.max()))
            avg_entire.append(float(residual.mean()))
            # Error at the synopsis "bins" themselves.
            at_bins = np.abs(truth.evaluate(estimate.thresholds) - estimate.fractions)
            max_points = max(max_points, float(at_bins.max()))
            avg_points.append(float(at_bins.mean()))
        return (
            ErrorPair(maximum=max_entire, average=float(np.mean(avg_entire))),
            ErrorPair(maximum=max_points, average=float(np.mean(avg_points))),
        )
