"""Gossip exchange kernels over array state.

State layout shared by both kernels:

* ``averaged`` — shape ``(n, k)``: all quantities that merge by averaging
  (interpolation fractions, verification fractions, the size weight).
* ``extremes`` — shape ``(n, 2)``: per-node (minimum, maximum) estimates,
  merging by min/max.
* ``joined`` — shape ``(n,)`` bool: whether the node has seen the
  instance.  **Invariant**: an unjoined node's rows hold exactly its
  initial state (indicator fractions, weight 0, own-value extremes), so
  joining is simply flipping the flag and exchanging.

Two kernels:

* :func:`sequential_round` — every node initiates one push–pull exchange
  with a uniformly random other node, sequentially in a random order
  (PeerSim cycle-driven semantics; a node's later exchanges see earlier
  effects).  This is the reference kernel.
* :func:`matching_round` — one random perfect matching per round, all
  pairs exchange simultaneously (fully vectorised).  Converges
  exponentially with a slightly smaller per-round factor (each node takes
  part in exactly one exchange per round instead of two on average);
  useful for very large ``n``.

Both kernels implement the two join semantics discussed in DESIGN.md:
``literal`` (paper Fig. 1: the joiner merges, the contacted peer ignores
the empty reply — not mass-conserving) and ``symmetric`` (the joiner
initialises first and a normal exchange follows — mass-conserving).

The ``literal`` mode is *registered* as non-mass-conserving below rather
than silently exempted: every join under it duplicates the contacted
peer's averaged mass (the joiner absorbs half of the peer's state while
the peer keeps all of it), so the column sums the convergence proof
relies on inflate with each join.  Concretely, size weights gain mass —
``sum(w)`` grows beyond 1 and per-node size estimates ``1/w`` are biased
low — and fraction columns are pulled towards the values of nodes that
joined early, over-weighting the initiator's neighbourhood.  The runtime
sanitizer (:mod:`repro.lint.sanitizer`) skips the mass-equality check
for registered modes by declaration, while still enforcing per-node
range and monotonicity invariants.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.core.config import LITERAL_JOIN_BIAS
from repro.core.conservation import register_non_conserving

__all__ = ["sequential_round", "matching_round", "random_partners"]

register_non_conserving("literal", LITERAL_JOIN_BIAS)


def random_partners(n: int, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """Random node order and a uniform partner (≠ self) for each."""
    if n < 2:
        raise SimulationError("need at least 2 nodes to gossip")
    order = rng.permutation(n)
    partners = rng.integers(0, n - 1, size=n)
    partners = partners + (partners >= order)
    return order, partners


def sequential_round(
    averaged: np.ndarray,
    extremes: np.ndarray,
    joined: np.ndarray,
    rng: np.random.Generator,
    join_mode: str = "symmetric",
    excluded: np.ndarray | None = None,
) -> int:
    """One sequential push–pull round; returns exchanges that carried data.

    Nodes flagged in ``excluded`` ignore the instance entirely (paper
    §VII-G: nodes that enter the system mid-instance): an exchange with
    an excluded peer is a no-op for both sides.
    """
    n = averaged.shape[0]
    order, partners = random_partners(n, rng)
    literal = join_mode == "literal"
    active = 0
    for i in range(n):
        p = int(order[i])
        q = int(partners[i])
        if excluded is not None and (excluded[p] or excluded[q]):
            continue
        jp = joined[p]
        jq = joined[q]
        if not (jp or jq):
            continue
        active += 1
        if literal and jp != jq:
            # Only the joiner updates; the informed peer keeps its state.
            j, s = (p, q) if not jp else (q, p)
            averaged[j] += averaged[s]
            averaged[j] *= 0.5
            lo = min(extremes[j, 0], extremes[s, 0])
            hi = max(extremes[j, 1], extremes[s, 1])
            extremes[j, 0] = lo
            extremes[j, 1] = hi
            joined[j] = True
            continue
        mean = (averaged[p] + averaged[q]) * 0.5
        averaged[p] = mean
        averaged[q] = mean
        lo = min(extremes[p, 0], extremes[q, 0])
        hi = max(extremes[p, 1], extremes[q, 1])
        extremes[p, 0] = lo
        extremes[p, 1] = hi
        extremes[q, 0] = lo
        extremes[q, 1] = hi
        joined[p] = True
        joined[q] = True
    return active


def matching_round(
    averaged: np.ndarray,
    extremes: np.ndarray,
    joined: np.ndarray,
    rng: np.random.Generator,
    join_mode: str = "symmetric",
    excluded: np.ndarray | None = None,
) -> int:
    """One random-matching round (vectorised); returns active exchanges."""
    n = averaged.shape[0]
    if n < 2:
        raise SimulationError("need at least 2 nodes to gossip")
    perm = rng.permutation(n)
    half = n // 2
    a = perm[:half]
    b = perm[half : 2 * half]
    ja = joined[a]
    jb = joined[b]
    active = ja | jb
    if excluded is not None:
        active &= ~excluded[a] & ~excluded[b]
    a = a[active]
    b = b[active]
    if a.size == 0:
        return 0
    if join_mode == "literal":
        both = joined[a] & joined[b]
        one = ~both  # exactly one joined (none-joined pairs were dropped)
        if one.any():
            ao, bo = a[one], b[one]
            joiner = np.where(joined[ao], bo, ao)
            source = np.where(joined[ao], ao, bo)
            averaged[joiner] = (averaged[joiner] + averaged[source]) * 0.5
            lo = np.minimum(extremes[joiner, 0], extremes[source, 0])
            hi = np.maximum(extremes[joiner, 1], extremes[source, 1])
            extremes[joiner, 0] = lo
            extremes[joiner, 1] = hi
            joined[joiner] = True
        a = a[both]
        b = b[both]
        if a.size == 0:
            return int(active.sum())
    mean = (averaged[a] + averaged[b]) * 0.5
    averaged[a] = mean
    averaged[b] = mean
    lo = np.minimum(extremes[a, 0], extremes[b, 0])
    hi = np.maximum(extremes[a, 1], extremes[b, 1])
    extremes[a, 0] = lo
    extremes[a, 1] = hi
    extremes[b, 0] = lo
    extremes[b, 1] = hi
    joined[a] = True
    joined[b] = True
    return int(active.sum())
