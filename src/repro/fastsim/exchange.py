"""Gossip exchange kernels over array state.

State layout shared by both kernels:

* ``averaged`` — shape ``(n, k)``: all quantities that merge by averaging
  (interpolation fractions, verification fractions, the size weight).
* ``extremes`` — shape ``(n, 2)``: per-node (minimum, maximum) estimates,
  merging by min/max.
* ``joined`` — shape ``(n,)`` bool: whether the node has seen the
  instance.  **Invariant**: an unjoined node's rows hold exactly its
  initial state (indicator fractions, weight 0, own-value extremes), so
  joining is simply flipping the flag and exchanging.

Two kernels:

* :func:`sequential_round` — every node initiates one push–pull exchange
  with a uniformly random other node, sequentially in a random order
  (PeerSim cycle-driven semantics; a node's later exchanges see earlier
  effects).  This is the reference kernel — and the *naive baseline* of
  the N-scaling benchmark: a Python loop over nodes, unusable beyond a
  few tens of thousands of nodes.
* :func:`matching_round` — one random perfect matching per round, all
  pairs exchange simultaneously (fully vectorised).  Converges
  exponentially with a slightly smaller per-round factor (each node takes
  part in exactly one exchange per round instead of two on average);
  the only kernel that reaches million-node populations.

Both kernels accept an optional :class:`ExchangeBuffers`: preallocated
per-round scratch (partner permutations, gather/scatter row buffers)
reused across rounds and instances, so the steady-state matching round
performs no heap allocation proportional to ``n``.  Buffered and
unbuffered paths consume the generator identically (an in-place shuffle
over a copied identity is exactly what ``rng.permutation`` does
internally, and the partner draw is the same ``rng.integers`` call), so
enabling buffers never changes a seeded run — a property the tests
assert bit-for-bit.

Both kernels implement the two join semantics discussed in DESIGN.md:
``literal`` (paper Fig. 1: the joiner merges, the contacted peer ignores
the empty reply — not mass-conserving) and ``symmetric`` (the joiner
initialises first and a normal exchange follows — mass-conserving).

The ``literal`` mode is *registered* as non-mass-conserving below rather
than silently exempted: every join under it duplicates the contacted
peer's averaged mass (the joiner absorbs half of the peer's state while
the peer keeps all of it), so the column sums the convergence proof
relies on inflate with each join.  Concretely, size weights gain mass —
``sum(w)`` grows beyond 1 and per-node size estimates ``1/w`` are biased
low — and fraction columns are pulled towards the values of nodes that
joined early, over-weighting the initiator's neighbourhood.  The runtime
sanitizer (:mod:`repro.lint.sanitizer`) skips the mass-equality check
for registered modes by declaration, while still enforcing per-node
range and monotonicity invariants.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.core.config import LITERAL_JOIN_BIAS
from repro.core.conservation import register_non_conserving

__all__ = [
    "ExchangeBuffers",
    "matching_round",
    "random_partners",
    "sequential_round",
]

register_non_conserving("literal", LITERAL_JOIN_BIAS)


class ExchangeBuffers:
    """Preallocated per-round scratch for the exchange kernels.

    One instance is sized for a fixed population ``n`` and state width
    (columns of the ``averaged`` matrix) and reused for every round of
    every instance: the permutation and partner draws fill preallocated
    index buffers in place, and the matching kernel gathers pair rows
    into preallocated row buffers (``np.take(..., out=...)``) instead of
    allocating ``(n/2, width)`` temporaries four times per round.

    The buffered and unbuffered paths consume the generator identically
    (`shuffle` over a copied identity is exactly what ``permutation``
    does internally), so enabling buffers never changes a seeded run.
    """

    def __init__(self, n: int, width: int, dtype: np.dtype | type = np.float64):
        if n < 2:
            raise SimulationError("need at least 2 nodes to gossip")
        if width < 1:
            raise SimulationError("state width must be at least 1")
        self.n = int(n)
        self.width = int(width)
        self.dtype = np.dtype(dtype)
        self._identity = np.arange(self.n, dtype=np.intp)
        self.order = np.empty(self.n, dtype=np.intp)
        self.partners = np.empty(self.n, dtype=np.int64)
        self._ge = np.empty(self.n, dtype=bool)
        half = self.n // 2
        # Matching-kernel row scratch: gathered pair rows and extremes.
        self.rows_a = np.empty((half, self.width), dtype=self.dtype)
        self.rows_b = np.empty((half, self.width), dtype=self.dtype)
        self.ext_a = np.empty((half, 2), dtype=self.dtype)
        self.ext_b = np.empty((half, 2), dtype=self.dtype)

    @classmethod
    def ensure(
        cls,
        current: "ExchangeBuffers | None",
        n: int,
        width: int,
        dtype: np.dtype | type = np.float64,
    ) -> "ExchangeBuffers":
        """Reuse ``current`` when it matches, else allocate fresh scratch."""
        resolved = np.dtype(dtype)
        if (
            current is not None
            and current.n == n
            and current.width == width
            and current.dtype == resolved
        ):
            return current
        return cls(n, width, resolved)

    def compatible(self, averaged: np.ndarray) -> bool:
        """Whether this scratch matches a state matrix's shape and dtype."""
        return (
            averaged.shape[0] == self.n
            and averaged.shape[1] == self.width
            and averaged.dtype == self.dtype
        )

    def permutation(self, rng: np.random.Generator) -> np.ndarray:
        """A uniform random permutation of ``0..n-1``, allocation-free.

        Identical stream consumption to ``rng.permutation(n)``: copy the
        identity, shuffle in place.
        """
        order = self.order
        order[:] = self._identity
        rng.shuffle(order)
        return order

    def uniform_partners(self, rng: np.random.Generator, order: np.ndarray) -> np.ndarray:
        """Uniform partner (≠ self) per node, adjusted in place.

        The draw itself is the same ``rng.integers`` call as the
        unbuffered path (NumPy has no ``out=`` form for bounded integer
        draws), copied into the preallocated buffer; the ≥-shift that
        keeps a node from gossiping with itself then runs in place
        instead of materialising two comparison temporaries.
        """
        partners = self.partners
        partners[:] = rng.integers(0, self.n - 1, size=self.n)
        np.greater_equal(partners, order, out=self._ge)
        np.add(partners, self._ge, out=partners)
        return partners


def random_partners(
    n: int,
    rng: np.random.Generator,
    buffers: ExchangeBuffers | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Random node order and a uniform partner (≠ self) for each.

    With ``buffers`` the permutation is shuffled in place into the
    preallocated index buffer (the order stream is identical to the
    unbuffered path) and the partner draw fills preallocated scratch —
    no per-round allocation.  Without buffers, fresh arrays are drawn
    exactly as the original implementation did.
    """
    if n < 2:
        raise SimulationError("need at least 2 nodes to gossip")
    if buffers is not None and buffers.n == n:
        order = buffers.permutation(rng)
        partners = buffers.uniform_partners(rng, order)
        return order, partners
    order = rng.permutation(n)
    partners = rng.integers(0, n - 1, size=n)
    partners = partners + (partners >= order)
    return order, partners


def sequential_round(
    averaged: np.ndarray,
    extremes: np.ndarray,
    joined: np.ndarray,
    rng: np.random.Generator,
    join_mode: str = "symmetric",
    excluded: np.ndarray | None = None,
    buffers: ExchangeBuffers | None = None,
) -> int:
    """One sequential push–pull round; returns exchanges that carried data.

    Nodes flagged in ``excluded`` ignore the instance entirely (paper
    §VII-G: nodes that enter the system mid-instance): an exchange with
    an excluded peer is a no-op for both sides.
    """
    n = averaged.shape[0]
    order, partners = random_partners(n, rng, buffers)
    literal = join_mode == "literal"
    active = 0
    for i in range(n):
        p = int(order[i])
        q = int(partners[i])
        if excluded is not None and (excluded[p] or excluded[q]):
            continue
        jp = joined[p]
        jq = joined[q]
        if not (jp or jq):
            continue
        active += 1
        if literal and jp != jq:
            # Only the joiner updates; the informed peer keeps its state.
            j, s = (p, q) if not jp else (q, p)
            averaged[j] += averaged[s]
            averaged[j] *= 0.5
            lo = min(extremes[j, 0], extremes[s, 0])
            hi = max(extremes[j, 1], extremes[s, 1])
            extremes[j, 0] = lo
            extremes[j, 1] = hi
            joined[j] = True
            continue
        mean = (averaged[p] + averaged[q]) * 0.5
        averaged[p] = mean
        averaged[q] = mean
        lo = min(extremes[p, 0], extremes[q, 0])
        hi = max(extremes[p, 1], extremes[q, 1])
        extremes[p, 0] = lo
        extremes[p, 1] = hi
        extremes[q, 0] = lo
        extremes[q, 1] = hi
        joined[p] = True
        joined[q] = True
    return active


def matching_round(
    averaged: np.ndarray,
    extremes: np.ndarray,
    joined: np.ndarray,
    rng: np.random.Generator,
    join_mode: str = "symmetric",
    excluded: np.ndarray | None = None,
    buffers: ExchangeBuffers | None = None,
) -> int:
    """One random-matching round (vectorised); returns active exchanges.

    With compatible ``buffers`` and every node joined (the steady state
    an instance spends most of its rounds in), the round is entirely
    allocation-free: permutation in place, pair rows gathered with
    ``np.take(out=...)``, means and extremes computed into preallocated
    scratch, scattered back with fancy assignment.
    """
    n = averaged.shape[0]
    if n < 2:
        raise SimulationError("need at least 2 nodes to gossip")
    buffered = buffers is not None and buffers.compatible(averaged)
    perm = buffers.permutation(rng) if buffered else rng.permutation(n)
    half = n // 2
    a = perm[:half]
    b = perm[half : 2 * half]

    if buffered and excluded is None and joined.all():
        # Steady-state fast path: every pair is active and already
        # joined, so the whole round is four takes, two reductions and
        # four scatters over the preallocated row scratch.
        assert buffers is not None
        rows_a = buffers.rows_a
        rows_b = buffers.rows_b
        np.take(averaged, a, axis=0, out=rows_a)
        np.take(averaged, b, axis=0, out=rows_b)
        np.add(rows_a, rows_b, out=rows_a)
        rows_a *= 0.5
        averaged[a] = rows_a
        averaged[b] = rows_a
        ext_a = buffers.ext_a
        ext_b = buffers.ext_b
        np.take(extremes, a, axis=0, out=ext_a)
        np.take(extremes, b, axis=0, out=ext_b)
        np.minimum(ext_a[:, 0], ext_b[:, 0], out=ext_a[:, 0])
        np.maximum(ext_a[:, 1], ext_b[:, 1], out=ext_a[:, 1])
        extremes[a] = ext_a
        extremes[b] = ext_a
        return half

    ja = joined[a]
    jb = joined[b]
    active = ja | jb
    if excluded is not None:
        active &= ~excluded[a] & ~excluded[b]
    a = a[active]
    b = b[active]
    if a.size == 0:
        return 0
    if join_mode == "literal":
        both = joined[a] & joined[b]
        one = ~both  # exactly one joined (none-joined pairs were dropped)
        if one.any():
            ao, bo = a[one], b[one]
            joiner = np.where(joined[ao], bo, ao)
            source = np.where(joined[ao], ao, bo)
            averaged[joiner] = (averaged[joiner] + averaged[source]) * 0.5
            lo = np.minimum(extremes[joiner, 0], extremes[source, 0])
            hi = np.maximum(extremes[joiner, 1], extremes[source, 1])
            extremes[joiner, 0] = lo
            extremes[joiner, 1] = hi
            joined[joiner] = True
        a = a[both]
        b = b[both]
        if a.size == 0:
            return int(active.sum())
    if buffered:
        # Partial-activity path (spreading phase, churn exclusions):
        # same take/out discipline over size-m views of the scratch.
        assert buffers is not None
        m = a.size
        rows_a = buffers.rows_a[:m]
        rows_b = buffers.rows_b[:m]
        np.take(averaged, a, axis=0, out=rows_a)
        np.take(averaged, b, axis=0, out=rows_b)
        np.add(rows_a, rows_b, out=rows_a)
        rows_a *= 0.5
        averaged[a] = rows_a
        averaged[b] = rows_a
        ext_a = buffers.ext_a[:m]
        ext_b = buffers.ext_b[:m]
        np.take(extremes, a, axis=0, out=ext_a)
        np.take(extremes, b, axis=0, out=ext_b)
        np.minimum(ext_a[:, 0], ext_b[:, 0], out=ext_a[:, 0])
        np.maximum(ext_a[:, 1], ext_b[:, 1], out=ext_a[:, 1])
        extremes[a] = ext_a
        extremes[b] = ext_a
    else:
        mean = (averaged[a] + averaged[b]) * 0.5
        averaged[a] = mean
        averaged[b] = mean
        lo = np.minimum(extremes[a, 0], extremes[b, 0])
        hi = np.maximum(extremes[a, 1], extremes[b, 1])
        extremes[a, 0] = lo
        extremes[a, 1] = hi
        extremes[b, 0] = lo
        extremes[b, 1] = hi
    joined[a] = True
    joined[b] = True
    return int(active.sum())
