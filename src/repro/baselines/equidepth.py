"""EquiDepth as a protocol on the object-per-node engine.

Same algorithm as :class:`repro.fastsim.equidepth.EquiDepthSimulation`
(see that module's docstring for the protocol description); this variant
exists so EquiDepth can run side by side with other protocols on the
:mod:`repro.simulation` engine — under its churn models, overlays and
network accounting.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.core.cdf import EstimatedCDF
from repro.fastsim.equidepth import merge_histograms
from repro.simulation.engine import Engine, Protocol
from repro.simulation.node_base import SimNode

__all__ = ["EquiDepthProtocol"]


class EquiDepthProtocol(Protocol):
    """Gossip equi-depth histogram synopses.

    Args:
        synopsis_size: synopsis bound (histogram bin count).
        value_bytes: wire-size model per synopsis entry.
    """

    name = "equidepth"

    def __init__(self, synopsis_size: int = 50, value_bytes: int = 16):
        if synopsis_size < 2:
            raise ConfigurationError("synopsis size must be >= 2")
        self.synopsis_size = synopsis_size
        self.value_bytes = value_bytes

    def on_node_added(self, node: SimNode, engine: Engine) -> None:
        node.state[self.name] = (node.values.copy(), np.full(node.values.size, 1.0 / node.values.size))

    def start_phase(self, engine: Engine) -> None:
        """Reset all synopses (a new phase, paper Fig. 8)."""
        for node in engine.nodes.values():
            self.on_node_added(node, engine)

    def exchange(self, initiator: SimNode, responder: SimNode, engine: Engine) -> tuple[int, int]:
        values_a, weights_a = initiator.state[self.name]
        values_b, weights_b = responder.state[self.name]
        merged_v, merged_w = merge_histograms(values_a, weights_a, values_b, weights_b, self.synopsis_size)
        initiator.state[self.name] = (merged_v, merged_w)
        responder.state[self.name] = (merged_v.copy(), merged_w.copy())
        payload = self.value_bytes * merged_v.size
        return payload, payload

    def estimate(self, node: SimNode) -> EstimatedCDF:
        """The node's current equi-depth CDF estimate."""
        values, weights = node.state[self.name]
        order = np.argsort(values, kind="stable")
        values = values[order]
        weights = weights[order]
        cumulative = np.cumsum(weights)
        fractions = cumulative / cumulative[-1]
        return EstimatedCDF(
            thresholds=values,
            fractions=fractions,
            minimum=float(values[0]),
            maximum=float(values[-1]),
        )

    def estimates(self, engine: Engine) -> list[EstimatedCDF]:
        return [self.estimate(node) for node in engine.nodes.values()]
