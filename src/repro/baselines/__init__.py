"""Baseline CDF estimators the paper compares against.

* :mod:`repro.baselines.equidepth` — the gossip histogram protocol of
  Haridasan & van Renesse as an engine protocol (the vectorised variant
  lives in :mod:`repro.fastsim.equidepth`).
* :mod:`repro.baselines.sampling` — random-sampling estimation in the
  style of Hall & Carzaniga's uniform sampling, with its message-cost
  model.
"""

from repro.baselines.equidepth import EquiDepthProtocol
from repro.baselines.sampling import RandomSamplingEstimator, SamplingResult

__all__ = ["EquiDepthProtocol", "RandomSamplingEstimator", "SamplingResult"]
