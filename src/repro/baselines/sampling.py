"""Random-sampling CDF estimation (paper §VII, baseline [4]).

A node obtains ``s`` uniform random attribute samples from the system —
in a real deployment via random walks (Hall & Carzaniga, Euro-Par 2009),
at one or more network messages per sample — and builds the empirical CDF
of the sample.  Accuracy scales as ``O(1/sqrt(s))`` (Dvoretzky–Kiefer–
Wolfowitz), so matching Adam2's accuracy at 100,000 nodes needs thousands
of samples and an order of magnitude more messages (paper Fig. 9, §VII-I).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.types import ErrorPair
from repro.core.cdf import EmpiricalCDF, EstimatedCDF
from repro.metrics.error import error_grid

__all__ = ["RandomSamplingEstimator", "SamplingResult"]


@dataclass(frozen=True, slots=True)
class SamplingResult:
    """Outcome of one random-sampling estimation."""

    samples: int
    estimate: EstimatedCDF
    errors: ErrorPair
    #: network messages the node had to generate to obtain the samples
    messages: int

    @property
    def bytes_sent(self) -> int:
        # One walk probe (~64 B of headers and ids) per message.
        return self.messages * 64


class RandomSamplingEstimator:
    """Estimate a population CDF from uniform random samples.

    Args:
        population: the attribute values of all nodes (sampling ground).
        messages_per_sample: cost model — network messages generated per
            obtained sample.  A random walk needs at least one message
            per hop; 1 is the most charitable possible cost for the
            baseline (the paper counts "several ... per requested
            sample").
    """

    def __init__(self, population: np.ndarray, messages_per_sample: int = 1):
        population = np.asarray(population, dtype=float)
        if population.ndim != 1 or population.size == 0:
            raise ConfigurationError("population must be a non-empty 1-D array")
        if messages_per_sample < 1:
            raise ConfigurationError("messages_per_sample must be >= 1")
        self.population = population
        self.truth = EmpiricalCDF(population)
        self.messages_per_sample = messages_per_sample

    def estimate(self, samples: int, rng: np.random.Generator) -> SamplingResult:
        """Draw ``samples`` values (with replacement — independent walks
        may land on the same node) and build the empirical estimate."""
        if samples < 1:
            raise ConfigurationError("need at least one sample")
        drawn = np.sort(self.population[rng.integers(0, self.population.size, size=samples)])
        fractions = np.arange(1, samples + 1, dtype=float) / samples
        estimate = EstimatedCDF(
            thresholds=drawn,
            fractions=fractions,
            minimum=float(drawn[0]),
            maximum=float(drawn[-1]),
        )
        # The sample estimate is the *empirical step CDF* of the sample —
        # linear smoothing between sample values would smear step risers
        # and unfairly inflate the baseline's maximum error.
        sample_cdf = EmpiricalCDF(drawn)
        grid = error_grid(self.truth.minimum, self.truth.maximum, max_points=50_001)
        residual = np.abs(self.truth.evaluate(grid) - sample_cdf.evaluate(grid))
        errors = ErrorPair(maximum=float(residual.max()), average=float(residual.mean()))
        return SamplingResult(
            samples=samples,
            estimate=estimate,
            errors=errors,
            messages=samples * self.messages_per_sample,
        )

    def sweep(self, sample_counts: list[int], rng: np.random.Generator, repeats: int = 1) -> list[SamplingResult]:
        """Estimate at several sample counts (paper Fig. 9).

        With ``repeats > 1`` the returned result at each count carries
        the mean errors over the repeats (less measurement noise).
        """
        results: list[SamplingResult] = []
        for count in sample_counts:
            runs = [self.estimate(count, rng) for _ in range(max(repeats, 1))]
            if len(runs) == 1:
                results.append(runs[0])
                continue
            mean_errors = ErrorPair(
                maximum=float(np.mean([r.errors.maximum for r in runs])),
                average=float(np.mean([r.errors.average for r in runs])),
            )
            results.append(
                SamplingResult(
                    samples=count,
                    estimate=runs[-1].estimate,
                    errors=mean_errors,
                    messages=runs[0].messages,
                )
            )
        return results
