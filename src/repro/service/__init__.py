"""repro.service — the continuous estimation service.

The paper's end goal is a *standing capability*, not a one-shot
experiment: nodes continuously re-run aggregation instances so that at
any moment an application can ask "what fraction of nodes have >= 2 GB
RAM?".  This package builds that serving layer on top of the four
:func:`repro.api.run` backends:

* **scheduler** (:mod:`repro.service.scheduler`): drives back-to-back
  aggregation cycles, applying the paper's threshold-refinement chain
  (bootstrap then HCut/MinMax/LCut) within each restart cycle, and a
  restart policy triggered by drift detection (estimate-vs-estimate
  divergence or extreme-value change).
* **store** (:mod:`repro.service.store`): immutable, versioned CDF
  snapshots with metadata (cycle id, round count, size estimate,
  self-assessed confidence, staleness clock) and bounded history.
* **query engine** (:mod:`repro.service.query`): ``cdf(x)``,
  ``quantile(q)``, ``fraction_between(a, b)`` and ``network_size()``
  answered from the latest (or a pinned) snapshot by binary search over
  the interpolation polyline, with an LRU cache for repeated point
  queries and per-query metrics through :mod:`repro.obs`.
* **protocol** (:mod:`repro.service.protocol`): the typed query
  protocol — :class:`QueryRequest`/:class:`QueryResponse` (plus batch
  envelopes with partial-failure semantics), the canonical op registry
  mapping wire ops to engine methods, and the :class:`QueryDispatcher`
  every serving surface executes through.
* **frontend**: the in-process :class:`ServiceHandle` here, plus the
  asyncio JSON-over-TCP endpoint in :mod:`repro.net.service_endpoint`
  and the SO_REUSEPORT worker pool in :mod:`repro.net.service_worker`
  (all real sockets stay under the ``repro.net`` ADM008 fence).

Build one with :func:`repro.api.serve` (or :func:`build_service`)::

    from repro.api import serve
    from repro.core.config import Adam2Config
    from repro.workloads import boinc_workload

    handle = serve(Adam2Config(points=30), boinc_workload("ram"),
                   backend="fast", n_nodes=2000, seed=7)
    handle.fraction_between(2048.0, float("inf"))   # >= 2 GB RAM
    handle.refresh()                                 # run another cycle
"""

from repro.service.bench import profile_service
from repro.service.handle import ServiceHandle, build_service
from repro.service.protocol import (
    OPS,
    BatchRequest,
    BatchResponse,
    QueryDispatcher,
    QueryRequest,
    QueryResponse,
    parse_request,
)
from repro.service.query import QueryEngine
from repro.service.scheduler import (
    ContinuousScheduler,
    SchedulerPolicy,
    estimate_divergence,
)
from repro.service.store import EstimateSnapshot, EstimateStore

__all__ = [
    "OPS",
    "BatchRequest",
    "BatchResponse",
    "ContinuousScheduler",
    "EstimateSnapshot",
    "EstimateStore",
    "QueryDispatcher",
    "QueryEngine",
    "QueryRequest",
    "QueryResponse",
    "SchedulerPolicy",
    "ServiceHandle",
    "build_service",
    "estimate_divergence",
    "parse_request",
    "profile_service",
]
