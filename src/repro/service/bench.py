"""Service benchmark: query throughput and latency percentiles.

:func:`profile_service` measures the query layer the way the CI
``bench-smoke`` job measures the backends: a deterministic mixed query
workload, wall-clock timing through :func:`repro.obs.wall_clock`, and a
machine-readable document written as ``BENCH_service.json`` by
:func:`repro.obs.write_benchmark`.

Two measurement modes:

* **in-process** — the :class:`~repro.service.query.QueryEngine` called
  directly, cache on vs. off (the headline qps number);
* **tcp** — the same mixed workload over the JSON-lines endpoint in
  :mod:`repro.net.service_endpoint`, at 1/4/16 concurrent clients.
  Sandboxes that forbid socket binding record the mode as skipped
  instead of failing the benchmark.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from repro.core.config import Adam2Config
from repro.obs import ObserverHub, wall_clock
from repro.obs.profile import config_fingerprint
from repro.rngs import make_rng
from repro.service.handle import ServiceHandle, build_service
from repro.service.query import QueryEngine
from repro.workloads.base import AttributeWorkload

__all__ = ["profile_service"]

#: concurrent TCP clients the endpoint is measured at
DEFAULT_CLIENT_COUNTS = (1, 4, 16)

#: mixed-workload operation cycle (weights chosen to exercise the cache,
#: both polyline directions, and the interval path)
_OPS = ("cdf", "quantile", "fraction", "size")


def _percentile(samples: Sequence[float], q: float) -> float:
    if not samples:
        return 0.0
    return float(np.percentile(np.asarray(samples, dtype=float), q))


def _mixed_queries(
    handle: ServiceHandle, n_queries: int, seed: int, pool_size: int
) -> list[tuple[str, tuple[float, ...]]]:
    """A deterministic mixed query workload.

    Arguments are drawn from a small pool (``pool_size`` distinct values
    per op), so a realistic fraction of queries repeat — that is what an
    LRU in front of a polyline search is for.
    """
    rng = make_rng(seed)
    snapshot = handle.store.latest()
    lo, hi = snapshot.estimate.minimum, snapshot.estimate.maximum
    span = max(hi - lo, 1.0)
    xs = lo + span * rng.random(pool_size)
    qs = rng.random(pool_size)
    queries: list[tuple[str, tuple[float, ...]]] = []
    ops = rng.integers(0, len(_OPS), size=n_queries)
    picks = rng.integers(0, pool_size, size=(n_queries, 2))
    for op_index, (i, j) in zip(ops, picks):
        op = _OPS[int(op_index)]
        if op == "cdf":
            queries.append(("cdf", (float(xs[i]),)))
        elif op == "quantile":
            queries.append(("quantile", (float(qs[i]),)))
        elif op == "fraction":
            a, b = sorted((float(xs[i]), float(xs[j])))
            queries.append(("fraction", (a, b)))
        else:
            queries.append(("size", ()))
    return queries


def _execute(
    engine: QueryEngine, queries: Sequence[tuple[str, tuple[float, ...]]]
) -> list[float]:
    """Run the workload against an engine; per-query latencies (seconds)."""
    latencies: list[float] = []
    for op, args in queries:
        started = wall_clock()
        if op == "cdf":
            engine.cdf(*args)
        elif op == "quantile":
            engine.quantile(*args)
        elif op == "fraction":
            engine.fraction_between(*args)
        else:
            engine.network_size()
        latencies.append(wall_clock() - started)
    return latencies


def _entry(
    mode: str, label: str, latencies: Sequence[float], extra: dict[str, object]
) -> dict[str, object]:
    total = float(sum(latencies))
    entry: dict[str, object] = {
        "mode": mode,
        "label": label,
        "queries": len(latencies),
        "wall_time_s": total,
        "qps": len(latencies) / total if total > 0 else 0.0,
        "p50_latency_s": _percentile(latencies, 50),
        "p99_latency_s": _percentile(latencies, 99),
    }
    entry.update(extra)
    return entry


def profile_service(
    workload: AttributeWorkload,
    config: Adam2Config,
    *,
    backend: str = "fast",
    n_nodes: int = 2000,
    n_queries: int = 20_000,
    pool_size: int = 256,
    client_counts: Sequence[int] = DEFAULT_CLIENT_COUNTS,
    tcp: bool = True,
    tcp_queries: int = 2000,
    seed: int = 0,
) -> dict[str, object]:
    """Benchmark the query layer; returns the benchmark document.

    The service is warmed with one full cycle on ``backend``; the same
    deterministic mixed workload then runs (a) in-process with the LRU
    cache enabled, (b) in-process with caching disabled, and (c) — when
    ``tcp`` — through the TCP endpoint at each of ``client_counts``
    concurrent clients.
    """
    hub = ObserverHub()
    handle = build_service(
        config,
        workload,
        backend=backend,
        n_nodes=n_nodes,
        seed=seed,
        hub=hub,
        warm_cycles=1,
    )
    queries = _mixed_queries(handle, n_queries, seed + 1, pool_size)

    entries: list[dict[str, object]] = []
    skipped: list[dict[str, object]] = []

    # (a) in-process, cache on — the engine the handle serves from
    warm = _execute(handle.engine, queries)  # populate the LRU
    hot = _execute(handle.engine, queries)
    entries.append(_entry("inproc", "cache_on", hot, {
        "cache": dict(handle.engine.cache_info()),
        "cold_qps": len(warm) / sum(warm) if sum(warm) > 0 else 0.0,
    }))

    # (b) in-process, cache off — every query searches the polyline
    uncached = QueryEngine(handle.store, cache_size=0, hub=hub)
    cold = _execute(uncached, queries)
    entries.append(_entry("inproc", "cache_off", cold, {
        "cache": dict(uncached.cache_info()),
    }))

    # (c) TCP endpoint at increasing client concurrency
    if tcp:
        tcp_entries, tcp_skips = _profile_tcp(
            handle, queries[:tcp_queries], client_counts
        )
        entries.extend(tcp_entries)
        skipped.extend(tcp_skips)

    return {
        "benchmark": "adam2-service",
        "backend": backend,
        "n_nodes": n_nodes,
        "n_queries": n_queries,
        "pool_size": pool_size,
        "config": dataclasses.asdict(config),
        "config_fingerprint": config_fingerprint(
            config, instances=1, seed=seed, workload=workload
        ),
        "entries": entries,
        "skipped": skipped,
    }


def _profile_tcp(
    handle: ServiceHandle,
    queries: Sequence[tuple[str, tuple[float, ...]]],
    client_counts: Sequence[int],
) -> tuple[list[dict[str, object]], list[dict[str, object]]]:
    """Measure the endpoint at each concurrency; skip if sockets are barred."""
    # Late import keeps repro.service importable without the net runtime
    # (and keeps every real socket under the repro.net fence).
    from repro.net.service_endpoint import measure_endpoint_qps

    entries: list[dict[str, object]] = []
    skipped: list[dict[str, object]] = []
    for clients in client_counts:
        try:
            stats = measure_endpoint_qps(handle, queries, clients=int(clients))
        except (OSError, PermissionError) as exc:
            skipped.append({
                "mode": "tcp",
                "clients": int(clients),
                "reason": f"{type(exc).__name__}: {exc}",
            })
            continue
        latencies = stats["latencies"]
        assert isinstance(latencies, list)
        entries.append(_entry("tcp", f"clients_{int(clients)}", latencies, {
            "clients": int(clients),
            "errors": stats["errors"],
        }))
    return entries, skipped
