"""Service benchmark: query throughput and latency percentiles.

:func:`profile_service` measures the query layer the way the CI
``bench-smoke`` job measures the backends: a deterministic mixed query
workload, wall-clock timing through :func:`repro.obs.wall_clock`, and a
machine-readable document written as ``BENCH_service.json`` by
:func:`repro.obs.write_benchmark`.

Three measurement modes:

* **in-process** — the :class:`~repro.service.query.QueryEngine` called
  directly, cache on vs. off (the headline qps number);
* **tcp** — the same mixed workload over the JSON-lines endpoint in
  :mod:`repro.net.service_endpoint`, at 1/4/16 concurrent clients;
* **tcp_pool** — the multi-worker serving path
  (:class:`~repro.net.service_worker.ServiceWorkerPool`) with the
  binary frame codec and batched requests, driven by closed-loop
  clients with think time (see :data:`DEFAULT_THINK_S`): a
  qps-vs-clients curve at the full worker pool and a qps-vs-workers
  curve under a saturating 16-client load;
* **persist** — the durable-serving cost model: in-process qps with the
  :mod:`repro.persist` write-behind attached vs. detached (the
  attachment must stay within a few percent — queries never touch the
  log), the publish-path cost per cycle, and a recovery entry (how many
  snapshots a cold restart recovered, how long recovery took, and the
  latency of the first post-restart query).

Sandboxes that forbid socket binding record the TCP modes as skipped
instead of failing the benchmark.  All TCP throughput numbers are
*aggregate wall-clock* qps (total ops / elapsed time across all
clients): summing per-request latencies would multiply-count the time
concurrent clients spend queued behind each other, which made earlier
revisions of this benchmark report a spurious concurrency inversion.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from repro.core.config import Adam2Config
from repro.obs import ObserverHub, wall_clock
from repro.obs.profile import config_fingerprint
from repro.rngs import make_rng
from repro.service.handle import ServiceHandle, build_service
from repro.service.query import QueryEngine
from repro.workloads.base import AttributeWorkload

__all__ = ["profile_service"]

#: concurrent TCP clients the endpoint is measured at
DEFAULT_CLIENT_COUNTS = (1, 4, 16)

#: worker-pool sizes the qps-vs-workers curve sweeps
DEFAULT_WORKER_COUNTS = (1, 2, 4)

#: worker-pool size for the qps-vs-clients curve
DEFAULT_POOL_WORKERS = 4

#: ops per batched request on the pool path
DEFAULT_BATCH_SIZE = 32

#: per-request client think time on the pool path (seconds).  The pool
#: curves model closed-loop clients *with think time*: an application
#: that issues a batch, spends ~4 ms on its own work, and asks again.
#: One such client is bounded by ``batch / (think + rtt)`` regardless of
#: server speed, so aggregate qps grows with the client count until the
#: serving side saturates — which is the scaling the curve is meant to
#: show.  (A zero-think saturation load cannot show it here: the
#: measuring clients and the server share the same CPU budget, so every
#: added client just displaces server work.)
DEFAULT_THINK_S = 0.004

#: mixed-workload operation cycle (weights chosen to exercise the cache,
#: both polyline directions, and the interval path)
_OPS = ("cdf", "quantile", "fraction", "size")


def _percentile(samples: Sequence[float], q: float) -> float:
    if not samples:
        return 0.0
    return float(np.percentile(np.asarray(samples, dtype=float), q))


def _mixed_queries(
    handle: ServiceHandle, n_queries: int, seed: int, pool_size: int
) -> list[tuple[str, tuple[float, ...]]]:
    """A deterministic mixed query workload.

    Arguments are drawn from a small pool (``pool_size`` distinct values
    per op), so a realistic fraction of queries repeat — that is what an
    LRU in front of a polyline search is for.
    """
    rng = make_rng(seed)
    snapshot = handle.store.latest()
    lo, hi = snapshot.estimate.minimum, snapshot.estimate.maximum
    span = max(hi - lo, 1.0)
    xs = lo + span * rng.random(pool_size)
    qs = rng.random(pool_size)
    queries: list[tuple[str, tuple[float, ...]]] = []
    ops = rng.integers(0, len(_OPS), size=n_queries)
    picks = rng.integers(0, pool_size, size=(n_queries, 2))
    for op_index, (i, j) in zip(ops, picks):
        op = _OPS[int(op_index)]
        if op == "cdf":
            queries.append(("cdf", (float(xs[i]),)))
        elif op == "quantile":
            queries.append(("quantile", (float(qs[i]),)))
        elif op == "fraction":
            a, b = sorted((float(xs[i]), float(xs[j])))
            queries.append(("fraction", (a, b)))
        else:
            queries.append(("size", ()))
    return queries


def _execute(
    engine: QueryEngine, queries: Sequence[tuple[str, tuple[float, ...]]]
) -> list[float]:
    """Run the workload against an engine; per-query latencies (seconds)."""
    latencies: list[float] = []
    for op, args in queries:
        started = wall_clock()
        if op == "cdf":
            engine.cdf(*args)
        elif op == "quantile":
            engine.quantile(*args)
        elif op == "fraction":
            engine.fraction_between(*args)
        else:
            engine.network_size()
        latencies.append(wall_clock() - started)
    return latencies


def _entry(
    mode: str, label: str, latencies: Sequence[float], extra: dict[str, object]
) -> dict[str, object]:
    total = float(sum(latencies))
    entry: dict[str, object] = {
        "mode": mode,
        "label": label,
        "queries": len(latencies),
        "wall_time_s": total,
        "qps": len(latencies) / total if total > 0 else 0.0,
        "p50_latency_s": _percentile(latencies, 50),
        "p99_latency_s": _percentile(latencies, 99),
    }
    entry.update(extra)
    return entry


def profile_service(
    workload: AttributeWorkload,
    config: Adam2Config,
    *,
    backend: str = "fast",
    n_nodes: int = 2000,
    n_queries: int = 20_000,
    pool_size: int = 256,
    client_counts: Sequence[int] = DEFAULT_CLIENT_COUNTS,
    worker_counts: Sequence[int] = DEFAULT_WORKER_COUNTS,
    pool_workers: int = DEFAULT_POOL_WORKERS,
    batch_size: int = DEFAULT_BATCH_SIZE,
    tcp: bool = True,
    tcp_queries: int = 2000,
    pool_queries: int = 24_000,
    persist: bool = True,
    persist_cycles: int = 6,
    seed: int = 0,
) -> dict[str, object]:
    """Benchmark the query layer; returns the benchmark document.

    The service is warmed with one full cycle on ``backend``; the same
    deterministic mixed workload then runs (a) in-process with the LRU
    cache enabled, (b) in-process with caching disabled, (c) — when
    ``tcp`` — through the single-loop TCP endpoint at each of
    ``client_counts`` concurrent clients, and (d) through the
    multi-worker pool (binary frames, ``batch_size`` ops per request,
    closed-loop clients with :data:`DEFAULT_THINK_S` think time): the
    qps-vs-clients curve at ``pool_workers`` workers and the
    qps-vs-workers curve over ``worker_counts`` under a saturating
    16-client load.  When ``persist``, the durable-serving section
    (``persist_cycles`` published cycles per leg) measures the
    write-behind attachment on/off, the publish path, and recovery.
    """
    hub = ObserverHub()
    handle = build_service(
        config,
        workload,
        backend=backend,
        n_nodes=n_nodes,
        seed=seed,
        hub=hub,
        warm_cycles=1,
    )
    queries = _mixed_queries(handle, n_queries, seed + 1, pool_size)

    entries: list[dict[str, object]] = []
    skipped: list[dict[str, object]] = []

    # (a) in-process, cache on — the engine the handle serves from
    warm = _execute(handle.engine, queries)  # populate the LRU
    hot = _execute(handle.engine, queries)
    entries.append(_entry("inproc", "cache_on", hot, {
        "cache": dict(handle.engine.cache_info()),
        "cold_qps": len(warm) / sum(warm) if sum(warm) > 0 else 0.0,
    }))

    # (b) in-process, cache off — every query searches the polyline
    uncached = QueryEngine(handle.store, cache_size=0, hub=hub)
    cold = _execute(uncached, queries)
    entries.append(_entry("inproc", "cache_off", cold, {
        "cache": dict(uncached.cache_info()),
    }))

    # (c) single-loop TCP endpoint at increasing client concurrency
    if tcp:
        tcp_entries, tcp_skips = _profile_tcp(
            handle, queries[:tcp_queries], client_counts
        )
        entries.extend(tcp_entries)
        skipped.extend(tcp_skips)

        # (d) the multi-worker pool: clients curve + workers curve.
        # Tile the workload if the pool wants more ops than n_queries —
        # repeats are realistic (that is what the LRU is for).
        tiles = -(-pool_queries // len(queries))
        pool_entries, pool_skips = _profile_pool(
            handle,
            (list(queries) * tiles)[:pool_queries],
            client_counts,
            worker_counts,
            pool_workers=pool_workers,
            batch_size=batch_size,
        )
        entries.extend(pool_entries)
        skipped.extend(pool_skips)

    # (e) durable serving: write-behind on/off, publish path, recovery
    if persist:
        entries.extend(_profile_persistence(
            workload, config,
            backend=backend, n_nodes=n_nodes, queries=queries,
            cycles=persist_cycles, seed=seed,
        ))

    return {
        "benchmark": "adam2-service",
        "backend": backend,
        "n_nodes": n_nodes,
        "n_queries": n_queries,
        "pool_size": pool_size,
        "config": dataclasses.asdict(config),
        "config_fingerprint": config_fingerprint(
            config, instances=1, seed=seed, workload=workload
        ),
        "entries": entries,
        "skipped": skipped,
    }


def _wire_entry(
    mode: str, label: str, stats: dict[str, object], extra: dict[str, object]
) -> dict[str, object]:
    """One benchmark entry from ``measure_endpoint_qps`` stats.

    Throughput is the aggregate wall-clock qps the measurement computed;
    the latency percentiles are per *request* (one batch counts once).
    """
    latencies = stats["latencies"]
    assert isinstance(latencies, list)
    entry: dict[str, object] = {
        "mode": mode,
        "label": label,
        "queries": stats["ops"],
        "wall_time_s": stats["wall_s"],
        "qps": stats["qps"],
        "p50_latency_s": _percentile(latencies, 50),
        "p99_latency_s": _percentile(latencies, 99),
        "errors": stats["errors"],
        "server": stats["server"],
    }
    entry.update(extra)
    return entry


def _profile_tcp(
    handle: ServiceHandle,
    queries: Sequence[tuple[str, tuple[float, ...]]],
    client_counts: Sequence[int],
) -> tuple[list[dict[str, object]], list[dict[str, object]]]:
    """Measure the endpoint at each concurrency; skip if sockets are barred."""
    # Late import keeps repro.service importable without the net runtime
    # (and keeps every real socket under the repro.net fence).
    from repro.net.service_endpoint import measure_endpoint_qps

    entries: list[dict[str, object]] = []
    skipped: list[dict[str, object]] = []
    for clients in client_counts:
        try:
            stats = measure_endpoint_qps(handle, queries, clients=int(clients))
        except (OSError, PermissionError) as exc:
            skipped.append({
                "mode": "tcp",
                "clients": int(clients),
                "reason": f"{type(exc).__name__}: {exc}",
            })
            continue
        entries.append(_wire_entry("tcp", f"clients_{int(clients)}", stats, {
            "clients": int(clients),
        }))
    return entries, skipped


def _profile_pool(
    handle: ServiceHandle,
    queries: Sequence[tuple[str, tuple[float, ...]]],
    client_counts: Sequence[int],
    worker_counts: Sequence[int],
    *,
    pool_workers: int,
    batch_size: int,
    think_s: float = DEFAULT_THINK_S,
) -> tuple[list[dict[str, object]], list[dict[str, object]]]:
    """The multi-worker serving path: clients curve, then workers curve.

    The clients curve runs closed-loop clients with ``think_s`` of
    think time at the full ``pool_workers`` pool; the workers curve
    holds the load at 16 such clients (saturating) and sweeps the
    worker count — ``workers=1`` routes through the single-loop
    endpoint, so that point is the no-pool baseline.
    """
    from repro.net.service_endpoint import measure_endpoint_qps

    entries: list[dict[str, object]] = []
    skipped: list[dict[str, object]] = []

    def measure(label: str, *, clients: int, workers: int) -> None:
        try:
            stats = measure_endpoint_qps(
                handle, queries, clients=clients, workers=workers,
                frame="binary", batch_size=batch_size, think_s=think_s,
            )
        except (OSError, PermissionError) as exc:
            skipped.append({
                "mode": "tcp_pool",
                "clients": clients,
                "workers": workers,
                "reason": f"{type(exc).__name__}: {exc}",
            })
            return
        entries.append(_wire_entry("tcp_pool", label, stats, {
            "clients": clients,
            "workers": workers,
            "frame": "binary",
            "batch_size": batch_size,
            "think_s": think_s,
        }))

    for clients in client_counts:
        measure(
            f"pool_clients_{int(clients)}",
            clients=int(clients), workers=pool_workers,
        )
    for workers in worker_counts:
        measure(
            f"pool_workers_{int(workers)}",
            clients=16, workers=int(workers),
        )
    return entries, skipped


def _profile_persistence(
    workload: AttributeWorkload,
    config: Adam2Config,
    *,
    backend: str,
    n_nodes: int,
    queries: Sequence[tuple[str, tuple[float, ...]]],
    cycles: int,
    seed: int,
) -> list[dict[str, object]]:
    """The durable-serving section: on/off query qps, publish cost, recovery.

    Four entries, all ``mode="persist"``:

    * ``inproc_persist_off`` — the mixed workload against a hot engine
      with no durability attached (the baseline);
    * ``inproc_persist_on`` — identical, with the write-behind log
      subscribed; queries never touch the log, so the two must agree to
      within noise (the acceptance bar is <10%);
    * ``publish`` — per-cycle publish latency with the write-behind
      attached (encode + append + fsync policy), measured over
      ``cycles`` scheduler cycles;
    * ``recovery`` — a cold restart over the written log: snapshots
      recovered, recovery seconds, and the first post-restart query
      latency (served from the recovered history, no warm cycle).
    """
    import tempfile

    entries: list[dict[str, object]] = []

    def fresh(store_dir: str | None) -> ServiceHandle:
        return build_service(
            config, workload,
            backend=backend, n_nodes=n_nodes, seed=seed,
            store_dir=store_dir, warm_cycles=1,
        )

    # Baseline: no durability attached.
    baseline = fresh(None)
    baseline.refresh(cycles)
    _execute(baseline.engine, queries)  # populate the LRU
    off = _execute(baseline.engine, queries)
    entries.append(_entry("persist", "inproc_persist_off", off, {
        "cycles": cycles,
    }))

    with tempfile.TemporaryDirectory(prefix="adam2-persist-bench-") as root:
        durable = fresh(root)
        assert durable.persistence is not None
        publish: list[float] = []
        for _ in range(cycles):
            started = wall_clock()
            durable.refresh(1)
            publish.append(wall_clock() - started)
        _execute(durable.engine, queries)  # populate the LRU
        on = _execute(durable.engine, queries)
        entries.append(_entry("persist", "inproc_persist_on", on, {
            "cycles": cycles,
            "persistence": durable.persistence.info(),
        }))
        entries.append(_entry("persist", "publish", publish, {
            "cycles": cycles,
            "bytes_logged": durable.persistence.log.size_bytes(),
        }))
        durable.close()

        # Cold restart: recovery happens inside build_service, before
        # the handle exists — the first query is served from the
        # recovered history (warm_cycles is skipped on recovery).
        build_started = wall_clock()
        restarted = fresh(root)
        build_s = wall_clock() - build_started
        assert restarted.persistence is not None
        info = restarted.persistence.info()
        first = _execute(restarted.engine, queries[:1] or [("size", ())])
        entries.append(_entry("persist", "recovery", first, {
            "recovered_snapshots": info["recovered_snapshots"],
            "recovery_s": info["recovery_s"],
            "build_s": build_s,
            "restarts": info["restarts"],
        }))
        restarted.close()
    return entries
