"""The in-process service frontend: one object tying the layers together.

:class:`ServiceHandle` composes a :class:`ContinuousScheduler`, its
:class:`EstimateStore` and a :class:`QueryEngine` behind one facade —
the in-process twin of the TCP endpoint in
:mod:`repro.net.service_endpoint` (both speak the same operations, so a
client can move between them without code changes).  Build one with
:func:`build_service` or :func:`repro.api.serve`.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Callable, Mapping

from repro.core.config import Adam2Config
from repro.errors import ServiceError
from repro.obs import NULL_HUB, ObserverHub, wall_clock
from repro.service.query import QueryEngine
from repro.service.scheduler import ContinuousScheduler, SchedulerPolicy
from repro.service.store import EstimateSnapshot, EstimateStore
from repro.workloads.base import AttributeWorkload
from repro.workloads.dynamic import DriftModel

if TYPE_CHECKING:  # runtime import stays lazy (repro.persist imports this package)
    from repro.persist import DurableEstimateStore, RetentionPolicy

__all__ = ["ServiceHandle", "build_service"]


class ServiceHandle:
    """Queries plus lifecycle control over one continuous service.

    ``persistence`` is the optional
    :class:`~repro.persist.DurableEstimateStore` write-behind attachment
    (built by :func:`build_service` when given a ``store_dir``): with it,
    every published snapshot lands in an append-only log and a restarted
    service recovers its history before serving — :meth:`close` detaches
    and seals the log.
    """

    def __init__(
        self,
        scheduler: ContinuousScheduler,
        store: EstimateStore,
        engine: QueryEngine,
        hub: ObserverHub = NULL_HUB,
        persistence: "DurableEstimateStore | None" = None,
    ) -> None:
        self.scheduler = scheduler
        self.store = store
        self.engine = engine
        self.hub = hub
        self.persistence = persistence

    # -- queries (delegated to the engine, with its cache + metrics) ----

    def cdf(self, x: float, *, version: int | None = None) -> float:
        """Estimated fraction of nodes with attribute value <= ``x``."""
        return self.engine.cdf(x, version=version)

    def quantile(self, q: float, *, version: int | None = None) -> float:
        """Smallest attribute value at estimated CDF level ``q``."""
        return self.engine.quantile(q, version=version)

    def fraction_between(
        self, a: float, b: float, *, version: int | None = None
    ) -> float:
        """Estimated fraction of nodes with attribute in ``(a, b]``."""
        return self.engine.fraction_between(a, b, version=version)

    def network_size(self, *, version: int | None = None) -> float:
        """The protocol's own estimate of the population size."""
        return self.engine.network_size(version=version)

    # -- lifecycle ------------------------------------------------------

    def refresh(self, cycles: int = 1) -> EstimateSnapshot:
        """Run more scheduler cycle(s); returns the newest snapshot."""
        snapshots = self.scheduler.run_cycles(cycles)
        return snapshots[-1] if snapshots else self.store.latest()

    def pin(self, version: int) -> EstimateSnapshot:
        """Protect a retained snapshot version from eviction."""
        return self.store.pin(version)

    def unpin(self, version: int) -> None:
        """Release a pinned version."""
        self.store.unpin(version)

    def close(self) -> None:
        """Release owned resources (detach + seal the snapshot log)."""
        if self.persistence is not None:
            self.persistence.close()

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- introspection --------------------------------------------------

    def status(self) -> dict[str, object]:
        """One JSON-serialisable view of the whole service."""
        tick = self.scheduler.tick
        try:
            newest = self.store.latest()
            latest: dict[str, object] | None = newest.meta()
            staleness: int | None = newest.staleness(tick)
        except ServiceError:
            latest, staleness = None, None
        return {
            "backend": self.scheduler.backend,
            "n_nodes": self.scheduler.n_nodes,
            "tick": tick,
            "restart_pending": self.scheduler.restart_pending,
            "latest": latest,
            "staleness": staleness,
            "versions": self.store.versions(),
            "pinned": self.store.pinned(),
            "cache": self.engine.cache_info(),
            "persistence": (
                self.persistence.info() if self.persistence is not None else None
            ),
        }

    def history(self) -> list[dict[str, object]]:
        """Metadata of every retained snapshot, oldest first."""
        return self.store.history()

    def metrics(self) -> dict[str, object]:
        """The hub's metrics/spans snapshot (queries, cycles, latency)."""
        return self.hub.snapshot()


def build_service(
    config: Adam2Config,
    workload: AttributeWorkload,
    *,
    backend: str = "fast",
    n_nodes: int = 1000,
    seed: int = 0,
    policy: SchedulerPolicy | None = None,
    drift: DriftModel | None = None,
    max_history: int = 8,
    cache_size: int = 1024,
    hub: ObserverHub = NULL_HUB,
    clock: Callable[[], float] = wall_clock,
    warm_cycles: int = 1,
    store_dir: str | os.PathLike[str] | None = None,
    fsync: str = "rotate",
    retention: "RetentionPolicy | None" = None,
    compact_every: int = 64,
    options: Mapping[str, object] | None = None,
) -> ServiceHandle:
    """Assemble a service and (by default) warm it with one cycle.

    Args:
        config: protocol parameters for every cycle.
        workload: initial population source (the scheduler owns the
            values afterwards; ``drift`` evolves them between cycles).
        backend: facade backend (``fast``/``round``/``async``/``net``).
        n_nodes: population size.
        seed: master seed — cycles and drift derive from it.
        policy: scheduler knobs (default :class:`SchedulerPolicy`).
        drift: optional between-cycle population drift.
        max_history: snapshot versions the store retains.
        cache_size: query LRU entries (0 disables caching).
        hub: observability hub shared by scheduler and query engine.
        clock: latency/staleness clock (injectable for tests).
        warm_cycles: cycles to run before returning, so the handle can
            answer queries immediately; 0 returns a cold service.  When
            ``store_dir`` recovery yields at least one snapshot, warming
            is skipped — the recovered history answers the first query
            without waiting on a fresh cycle.
        store_dir: directory for the durable snapshot log; ``None``
            (the default) serves purely in-memory.  Setting it attaches
            a :class:`~repro.persist.DurableEstimateStore`: recovery
            runs *before* warm-up, so a restarted service serves the
            last durably published estimate instantly.
        fsync: snapshot-log durability policy
            (``always``/``rotate``/``never``; only with ``store_dir``).
        retention: time-faded compaction policy for the log (default
            :class:`~repro.persist.RetentionPolicy`).
        compact_every: appended snapshots between compaction passes;
            ``0`` disables automatic compaction.
        options: backend-specific options for every cycle's run.
    """
    store = EstimateStore(max_history=max_history)
    persistence: "DurableEstimateStore | None" = None
    if store_dir is not None:
        # Late import: repro.persist imports this package, so a
        # module-level import here would be circular.
        from repro.persist import DurableEstimateStore
        from repro.persist.log import SnapshotLog

        log = SnapshotLog(store_dir, fsync=fsync)
        persistence = DurableEstimateStore(
            store,
            log,
            retention=retention,
            compact_every=compact_every,
            hub=hub,
            clock=clock,
        )
    scheduler = ContinuousScheduler(
        config,
        workload,
        store,
        backend=backend,
        n_nodes=n_nodes,
        seed=seed,
        policy=policy,
        drift=drift,
        hub=hub,
        options=options,
    )
    engine = QueryEngine(store, cache_size=cache_size, hub=hub, clock=clock)
    handle = ServiceHandle(
        scheduler, store, engine, hub=hub, persistence=persistence
    )
    if persistence is not None and persistence.recovered_snapshots > 0:
        warm_cycles = 0  # recovered history serves the first query
    if warm_cycles > 0:
        scheduler.run_cycles(warm_cycles)
    return handle
