"""The typed query protocol: one source of truth for the query surface.

Before this module existed the service spoke three parallel ad-hoc dict
shapes — the endpoint's hand-rolled request parsing, the client's
convenience-method payload builders, and the bench harness's
``_query_payload`` helper — and the wire op names (``"fraction"``,
``"size"``) drifted from the engine method names (``fraction_between``,
``network_size``) with the mapping re-derived at every site.  This
module consolidates all of it:

* :data:`OPS` — the canonical op registry.  Every operation the service
  answers has exactly one :class:`OpSpec` naming its wire op, its
  :class:`~repro.service.query.QueryEngine` method, its numeric argument
  fields, and its stable binary op code (used by the length-prefixed
  frame codec in :mod:`repro.net.frames`).
* :class:`QueryRequest` / :class:`QueryResponse` — typed, frozen
  request/response values with ``from_wire`` / ``to_wire`` converters
  that produce and accept exactly the legacy JSON-lines dict shapes, so
  old clients keep working unchanged.
* :class:`BatchRequest` / :class:`BatchResponse` — one request carrying
  many ops (``{"op": "batch", "ops": [...]}``) with *partial-failure*
  semantics: a malformed or failing sub-op yields an error result in its
  slot and never poisons its siblings.
* :class:`QueryDispatcher` — executes parsed requests against a
  :class:`~repro.service.query.QueryEngine` plus a :class:`ControlPlane`
  (status/history/pin/unpin provider), emitting the same
  :class:`~repro.obs.events.QueryServed` trace events the single-loop
  endpoint always emitted.  The asyncio endpoint, the SO_REUSEPORT
  worker processes, and the threaded fallback all serve through one
  dispatcher instance per engine view.

This module is host-independent — no sockets, no host clocks (latency
reads go through :func:`repro.obs.wall_clock`) — so it stays outside the
ADM008 fence and is importable from every tier.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Mapping, Protocol, Sequence

from repro.errors import ServiceError
from repro.obs import NULL_HUB, ObserverHub, QueryServed, wall_clock
from repro.service.store import EstimateSnapshot

if TYPE_CHECKING:  # runtime import would be circular (query imports protocol)
    from repro.service.query import QueryEngine

__all__ = [
    "BATCH_OP",
    "CONTROL_OPS",
    "ENGINE_OPS",
    "MAX_BATCH_OPS",
    "OPS",
    "BatchRequest",
    "BatchResponse",
    "ControlPlane",
    "InvalidOp",
    "OpSpec",
    "QueryDispatcher",
    "QueryRequest",
    "QueryResponse",
    "canonical_op",
    "parse_request",
]

#: the batch envelope op (not an OpSpec: it carries other ops, not args)
BATCH_OP = "batch"

#: hard cap on sub-ops per batch envelope (one request line / frame)
MAX_BATCH_OPS = 512


@dataclass(frozen=True, slots=True)
class OpSpec:
    """One operation of the query surface.

    Attributes:
        wire_op: canonical wire name (``"fraction"``), the one spelled in
            JSON requests.
        engine_method: :class:`QueryEngine`/:class:`ServiceHandle` method
            name (``"fraction_between"``); ``None`` for control ops.
        fields: numeric argument field names, in call order.
        code: stable binary op code for the frame codec (never reuse).
        control: True for control-plane ops the engine never sees.
        needs_version: True when ``version`` is a required field.
    """

    wire_op: str
    engine_method: str | None
    fields: tuple[str, ...]
    code: int
    control: bool = False
    needs_version: bool = False


#: the canonical op registry, keyed by wire op name
OPS: dict[str, OpSpec] = {
    spec.wire_op: spec
    for spec in (
        OpSpec("cdf", "cdf", ("x",), 1),
        OpSpec("quantile", "quantile", ("q",), 2),
        OpSpec("fraction", "fraction_between", ("a", "b"), 3),
        OpSpec("size", "network_size", (), 4),
        OpSpec("status", None, (), 5, control=True),
        OpSpec("history", None, (), 6, control=True),
        OpSpec("pin", None, (), 7, control=True, needs_version=True),
        OpSpec("unpin", None, (), 8, control=True, needs_version=True),
    )
}

#: binary op code for the batch envelope (frame codec only)
BATCH_CODE = 15

#: ops answered by the query engine
ENGINE_OPS = frozenset(spec.wire_op for spec in OPS.values() if not spec.control)
#: control-plane ops answered by the service itself
CONTROL_OPS = frozenset(spec.wire_op for spec in OPS.values() if spec.control)

#: engine-method-name -> wire-op aliases (``fraction_between`` -> ``fraction``)
_METHOD_ALIASES: dict[str, str] = {
    spec.engine_method: spec.wire_op
    for spec in OPS.values()
    if spec.engine_method is not None and spec.engine_method != spec.wire_op
}

#: op code -> spec, for the binary frame codec
OPS_BY_CODE: dict[int, OpSpec] = {spec.code: spec for spec in OPS.values()}


def canonical_op(name: str) -> str:
    """The canonical wire op for ``name`` (wire op or engine method name).

    ``canonical_op("fraction_between") == "fraction"``; unknown names
    raise a ``bad_request`` :class:`~repro.errors.ServiceError` listing
    the supported surface.
    """
    if name in OPS or name == BATCH_OP:
        return name
    alias = _METHOD_ALIASES.get(name)
    if alias is not None:
        return alias
    supported = ", ".join(sorted(OPS) + [BATCH_OP])
    raise ServiceError(
        f"unknown op {name!r}; supported: {supported}", code="bad_request"
    )


def _strict_number(value: object, op: str, key: str) -> float:
    """A real JSON number — booleans and non-numerics are rejected."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ServiceError(
            f"op {op!r} needs numeric field {key!r}", code="bad_request"
        )
    return float(value)


def _strict_version(value: object, *, required_by: str | None = None) -> int | None:
    if value is None:
        if required_by is not None:
            raise ServiceError(
                f"op {required_by!r} needs integer field 'version'",
                code="bad_request",
            )
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise ServiceError("'version' must be an integer", code="bad_request")
    return value


@dataclass(frozen=True, slots=True)
class QueryRequest:
    """One typed query: canonical op, positional numeric args, version.

    Construct directly (``QueryRequest("cdf", (1.5,))``), through the
    named constructors (:meth:`cdf`, :meth:`fraction_between`, ...), or
    from a legacy wire dict with :func:`parse_request`.  Engine-method
    names are accepted and canonicalised (``QueryRequest("network_size")``
    becomes op ``"size"``), so callers never re-derive the wire mapping.
    """

    op: str
    args: tuple[float, ...] = ()
    version: int | None = None
    request_id: int | str | None = None

    def __post_init__(self) -> None:
        op = canonical_op(self.op)
        if op == BATCH_OP:
            raise ServiceError(
                "a batch envelope is a BatchRequest, not a QueryRequest",
                code="bad_request",
            )
        spec = OPS[op]
        args = tuple(float(a) for a in self.args)
        if len(args) != len(spec.fields):
            raise ServiceError(
                f"op {op!r} takes {len(spec.fields)} argument(s) "
                f"({', '.join(spec.fields) or 'none'}), got {len(args)}",
                code="bad_request",
            )
        if spec.needs_version:
            _strict_version(self.version, required_by=op)
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "args", args)

    @property
    def spec(self) -> OpSpec:
        return OPS[self.op]

    # -- named constructors (the client convenience surface) -----------

    @classmethod
    def cdf(cls, x: float, *, version: int | None = None,
            request_id: int | str | None = None) -> "QueryRequest":
        return cls("cdf", (x,), version, request_id)

    @classmethod
    def quantile(cls, q: float, *, version: int | None = None,
                 request_id: int | str | None = None) -> "QueryRequest":
        return cls("quantile", (q,), version, request_id)

    @classmethod
    def fraction_between(cls, a: float, b: float, *, version: int | None = None,
                         request_id: int | str | None = None) -> "QueryRequest":
        return cls("fraction", (a, b), version, request_id)

    @classmethod
    def network_size(cls, *, version: int | None = None,
                     request_id: int | str | None = None) -> "QueryRequest":
        return cls("size", (), version, request_id)

    @classmethod
    def status(cls, *, request_id: int | str | None = None) -> "QueryRequest":
        return cls("status", (), None, request_id)

    @classmethod
    def history(cls, *, request_id: int | str | None = None) -> "QueryRequest":
        return cls("history", (), None, request_id)

    @classmethod
    def pin(cls, version: int, *, request_id: int | str | None = None) -> "QueryRequest":
        return cls("pin", (), version, request_id)

    @classmethod
    def unpin(cls, version: int, *, request_id: int | str | None = None) -> "QueryRequest":
        return cls("unpin", (), version, request_id)

    # -- wire conversion -------------------------------------------------

    def to_wire(self) -> dict[str, Any]:
        """The legacy JSON-lines request dict for this query."""
        payload: dict[str, Any] = {"op": self.op}
        for key, value in zip(self.spec.fields, self.args):
            payload[key] = value
        if self.version is not None:
            payload["version"] = self.version
        if self.request_id is not None:
            payload["id"] = self.request_id
        return payload


@dataclass(frozen=True, slots=True)
class InvalidOp:
    """A batch slot whose sub-op failed to parse.

    Parsing a batch envelope never raises for a malformed *member* —
    the slot is preserved so its siblings still execute and the caller
    sees a positional error result (partial-failure semantics).
    """

    op: str
    code: str
    message: str


@dataclass(frozen=True, slots=True)
class BatchRequest:
    """One request carrying many ops, answered positionally.

    Sub-requests carry no ids of their own: results are matched by
    position in :attr:`BatchResponse.results`.
    """

    items: tuple["QueryRequest | InvalidOp", ...]
    request_id: int | str | None = None

    def __post_init__(self) -> None:
        if not self.items:
            raise ServiceError("batch carries no ops", code="bad_request")
        if len(self.items) > MAX_BATCH_OPS:
            raise ServiceError(
                f"batch carries {len(self.items)} ops; the cap is {MAX_BATCH_OPS}",
                code="bad_request",
            )

    def to_wire(self) -> dict[str, Any]:
        ops: list[dict[str, Any]] = []
        for item in self.items:
            if isinstance(item, InvalidOp):
                raise ServiceError(
                    "cannot serialise a batch holding unparseable slots",
                    code="bad_request",
                )
            sub = item.to_wire()
            sub.pop("id", None)
            ops.append(sub)
        payload: dict[str, Any] = {"op": BATCH_OP, "ops": ops}
        if self.request_id is not None:
            payload["id"] = self.request_id
        return payload


@dataclass(frozen=True, slots=True)
class QueryResponse:
    """One typed answer, convertible to/from the legacy response dict.

    Engine answers carry :attr:`value` (and echo the *requested*
    ``version``, matching the legacy wire contract); control answers
    carry :attr:`payload` (``{"status": {...}}``, ``{"pinned": 3}``,
    ...); failures carry :attr:`error` (the class tag) and
    :attr:`message`.
    """

    ok: bool
    value: float | None = None
    version: int | None = None
    error: str | None = None
    message: str | None = None
    request_id: int | str | None = None
    payload: Mapping[str, Any] | None = None

    @classmethod
    def success(cls, value: float, *, version: int | None = None,
                request_id: int | str | None = None) -> "QueryResponse":
        return cls(ok=True, value=value, version=version, request_id=request_id)

    @classmethod
    def control(cls, payload: Mapping[str, Any], *,
                request_id: int | str | None = None) -> "QueryResponse":
        return cls(ok=True, payload=payload, request_id=request_id)

    @classmethod
    def failure(cls, code: str, message: str, *,
                request_id: int | str | None = None) -> "QueryResponse":
        return cls(ok=False, error=code, message=message, request_id=request_id)

    def result(self) -> float:
        """The value, or the failure re-raised as :class:`ServiceError`."""
        if not self.ok:
            raise ServiceError(
                self.message or "request failed",
                code=self.error or "server_error",
            )
        if self.value is None:
            raise ServiceError(
                "response carries no value (control op?)", code="bad_request"
            )
        return self.value

    def to_wire(self) -> dict[str, Any]:
        """The legacy JSON-lines response dict for this answer."""
        if not self.ok:
            wire: dict[str, Any] = {
                "ok": False,
                "error": self.error or "server_error",
                "message": self.message or "",
            }
        elif self.payload is not None:
            wire = {"ok": True, **self.payload}
        else:
            wire = {"ok": True, "value": self.value}
            if self.version is not None:
                wire["version"] = self.version
        if self.request_id is not None:
            wire["id"] = self.request_id
        return wire

    @classmethod
    def from_wire(cls, payload: Mapping[str, Any]) -> "QueryResponse":
        """Parse a legacy response dict back into a typed response."""
        request_id = payload.get("id")
        if not payload.get("ok"):
            return cls.failure(
                str(payload.get("error", "server_error")),
                str(payload.get("message", "request failed")),
                request_id=request_id,
            )
        if "value" in payload:
            raw_version = payload.get("version")
            return cls.success(
                float(payload["value"]),
                version=raw_version if isinstance(raw_version, int) else None,
                request_id=request_id,
            )
        extra = {k: v for k, v in payload.items() if k not in ("ok", "id")}
        return cls.control(extra, request_id=request_id)


@dataclass(frozen=True, slots=True)
class BatchResponse:
    """Positional answers to a :class:`BatchRequest` (``ok`` per slot)."""

    results: tuple[QueryResponse, ...]
    request_id: int | str | None = None
    ok: bool = field(default=True)

    def to_wire(self) -> dict[str, Any]:
        wire: dict[str, Any] = {
            "ok": True,
            "results": [r.to_wire() for r in self.results],
        }
        if self.request_id is not None:
            wire["id"] = self.request_id
        return wire

    @classmethod
    def from_wire(cls, payload: Mapping[str, Any]) -> "BatchResponse":
        raw = payload.get("results")
        if not isinstance(raw, list):
            raise ServiceError("batch response carries no results", code="server_error")
        return cls(
            results=tuple(QueryResponse.from_wire(r) for r in raw),
            request_id=payload.get("id"),
        )


def _parse_single(
    payload: Mapping[str, Any], op: str, request_id: int | str | None
) -> QueryRequest:
    spec = OPS[op]
    args = tuple(_strict_number(payload.get(key), op, key) for key in spec.fields)
    version = _strict_version(
        payload.get("version"), required_by=op if spec.needs_version else None
    )
    return QueryRequest(op, args, version, request_id)


def parse_request(payload: Mapping[str, Any]) -> QueryRequest | BatchRequest:
    """Parse one legacy wire dict into a typed request.

    This is the *only* wire-request parser in the codebase — the
    endpoint, the worker processes, and the binary-frame JSON fallback
    all call it.  Malformed envelopes raise ``bad_request``
    :class:`~repro.errors.ServiceError`; malformed batch *members*
    become :class:`InvalidOp` slots instead (partial failure).
    """
    if not isinstance(payload, Mapping):
        raise ServiceError("request must be a JSON object", code="bad_request")
    raw_op = payload.get("op")
    if not isinstance(raw_op, str):
        raise ServiceError(
            "request needs a string 'op' field", code="bad_request"
        )
    op = canonical_op(raw_op)
    request_id = payload.get("id")
    if op != BATCH_OP:
        return _parse_single(payload, op, request_id)

    raw_ops = payload.get("ops")
    if not isinstance(raw_ops, Sequence) or isinstance(raw_ops, (str, bytes)):
        raise ServiceError(
            "batch needs an 'ops' array of request objects", code="bad_request"
        )
    items: list[QueryRequest | InvalidOp] = []
    for member in raw_ops:
        try:
            if not isinstance(member, Mapping):
                raise ServiceError(
                    "batch member must be a JSON object", code="bad_request"
                )
            if member.get("op") == BATCH_OP:
                raise ServiceError("batches do not nest", code="bad_request")
            sub = parse_request(member)
            assert isinstance(sub, QueryRequest)
            items.append(sub)
        except ServiceError as exc:
            member_op = member.get("op") if isinstance(member, Mapping) else None
            items.append(InvalidOp(
                op=member_op if isinstance(member_op, str) else "invalid",
                code=exc.code,
                message=str(exc),
            ))
    return BatchRequest(tuple(items), request_id)


class ControlPlane(Protocol):
    """The control-plane surface a dispatcher serves (handle or worker)."""

    def status(self) -> dict[str, object]: ...

    def history(self) -> list[dict[str, object]]: ...

    def pin(self, version: int) -> EstimateSnapshot: ...

    def unpin(self, version: int) -> None: ...


class QueryDispatcher:
    """Executes typed requests against one engine view + control plane.

    Every serving surface — the asyncio endpoint, each SO_REUSEPORT
    worker process, each fallback thread — owns one dispatcher around
    its own :class:`~repro.service.query.QueryEngine`.  Engine ops emit
    their trace events inside the engine; the dispatcher emits for
    everything the engine never sees (parse failures, control ops), so
    the trace accounts for every request received, exactly as the
    single-loop endpoint always guaranteed.
    """

    def __init__(
        self,
        engine: "QueryEngine",
        control: ControlPlane | None = None,
        *,
        hub: ObserverHub = NULL_HUB,
        clock: Callable[[], float] = wall_clock,
    ) -> None:
        self.engine = engine
        self.control = control
        self.hub = hub
        self._clock = clock

    # -- typed execution ------------------------------------------------

    def dispatch(
        self, request: QueryRequest | BatchRequest
    ) -> QueryResponse | BatchResponse:
        if isinstance(request, BatchRequest):
            return BatchResponse(
                results=tuple(self._dispatch_item(item) for item in request.items),
                request_id=request.request_id,
            )
        return self._dispatch_item(request)

    def _dispatch_item(self, item: QueryRequest | InvalidOp) -> QueryResponse:
        if isinstance(item, InvalidOp):
            self._emit_failure(item.op, item.code, self._clock())
            return QueryResponse.failure(item.code, item.message)
        if not item.spec.control:
            return self.engine.execute(item)
        return self._dispatch_control(item)

    def _dispatch_control(self, request: QueryRequest) -> QueryResponse:
        control = self.control
        started = self._clock()
        try:
            if control is None:
                raise ServiceError(
                    f"op {request.op!r} is not served here", code="unavailable"
                )
            payload: dict[str, Any]
            if request.op == "status":
                payload = {"status": control.status()}
            elif request.op == "history":
                payload = {"history": control.history()}
            elif request.op == "pin":
                snapshot = control.pin(request.version or 0)
                payload = {"pinned": snapshot.version}
            else:  # unpin — the registry admits no other control op
                control.unpin(request.version or 0)
                payload = {}
        except ServiceError as exc:
            self._emit_failure(request.op, exc.code, started)
            return QueryResponse.failure(
                exc.code, str(exc), request_id=request.request_id
            )
        except Exception as exc:  # the wire-level 5xx class
            self._emit_failure(request.op, "server_error", started)
            return QueryResponse.failure(
                "server_error", f"{type(exc).__name__}: {exc}",
                request_id=request.request_id,
            )
        self.hub.query_served(QueryServed(
            op=request.op, version=None, cache_hit=False, ok=True,
            latency_s=self._clock() - started,
        ))
        return QueryResponse.control(payload, request_id=request.request_id)

    # -- wire execution (legacy dict shapes) ----------------------------

    def dispatch_wire(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        """Parse + dispatch + serialise one legacy request dict."""
        started = self._clock()
        op_guess = "invalid"
        request_id: int | str | None = None
        try:
            if isinstance(payload, Mapping):
                raw_id = payload.get("id")
                if isinstance(raw_id, (int, str)):
                    request_id = raw_id
                raw_op = payload.get("op")
                if isinstance(raw_op, str):
                    op_guess = raw_op
            request = parse_request(payload)
        except ServiceError as exc:
            self._emit_failure(op_guess, exc.code, started)
            return QueryResponse.failure(
                exc.code, str(exc), request_id=request_id
            ).to_wire()
        return self.dispatch(request).to_wire()

    def failure_wire(
        self,
        op: str,
        code: str,
        message: str,
        *,
        request_id: int | str | None = None,
    ) -> dict[str, Any]:
        """Emit + serialise a transport-level failure (undecodable JSON).

        For failures that happen before a request dict even exists —
        the transport saw bytes it could not decode — so the trace still
        accounts for the connection's every request.
        """
        self._emit_failure(op, code, self._clock())
        return QueryResponse.failure(
            code, message, request_id=request_id
        ).to_wire()

    def _emit_failure(self, op: str, code: str, started: float) -> None:
        self.hub.query_served(QueryServed(
            op=op, version=None, cache_hit=False, ok=False, error=code,
            latency_s=self._clock() - started,
        ))
