"""The high-throughput query layer over the estimate store.

A :class:`QueryEngine` answers the four application queries the paper
motivates the protocol with — ``cdf(x)``, ``quantile(q)``,
``fraction_between(a, b)`` and ``network_size()`` — from the latest (or
an explicitly pinned) :class:`~repro.service.store.EstimateSnapshot`.
Point evaluations binary-search the interpolation polyline
(``np.searchsorted`` under :meth:`EstimatedCDF.evaluate` /
:func:`~repro.core.interpolation.invert_polyline`), and repeated point
queries hit a per-engine LRU cache keyed by ``(version, op, args)`` —
snapshots are immutable, so a cached answer can never go stale for its
version.

Every query emits a :class:`~repro.obs.events.QueryServed` event through
the engine's :class:`~repro.obs.observer.ObserverHub`, feeding the
``query_latency_s`` histogram and hit/miss counters.  Latency is read
through :func:`repro.obs.wall_clock` so this module never touches the
host clock directly (the ADM007/ADM008 clock fences stay meaningful).
"""

from __future__ import annotations

import math
from collections import OrderedDict
from contextlib import contextmanager
from typing import Callable, Iterator

from repro.errors import ServiceError
from repro.obs import NULL_HUB, ObserverHub, QueryServed, wall_clock
from repro.service.protocol import OPS, QueryRequest, QueryResponse
from repro.service.store import EstimateSnapshot, EstimateStore

__all__ = ["QueryEngine"]

#: cache key: (version, op, args...)
_CacheKey = tuple[object, ...]


def _finite(value: float, name: str) -> float:
    value = float(value)
    if math.isnan(value):
        raise ServiceError(f"{name} must not be NaN", code="bad_request")
    return value


class QueryEngine:
    """Answers distribution queries from versioned snapshots.

    Args:
        store: the versioned estimate store queries are served from.
        cache_size: LRU entries for repeated point queries; ``0``
            disables caching entirely.
        hub: observability hub receiving per-query events and metrics.
        clock: latency clock (seconds); injectable for deterministic
            tests, defaults to :func:`repro.obs.wall_clock`.
    """

    def __init__(
        self,
        store: EstimateStore,
        *,
        cache_size: int = 1024,
        hub: ObserverHub = NULL_HUB,
        clock: Callable[[], float] = wall_clock,
    ) -> None:
        if cache_size < 0:
            raise ServiceError("cache_size must be >= 0")
        self.store = store
        self.cache_size = cache_size
        self.hub = hub
        self._clock = clock
        self._cache: OrderedDict[_CacheKey, float] = OrderedDict()
        self._hits = 0
        self._misses = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def cdf(self, x: float, *, version: int | None = None) -> float:
        """``F(x)``: estimated fraction of nodes with attribute <= x."""
        with self._validating("cdf"):
            x = _finite(x, "x")
        return self._serve(
            "cdf", (x,), version,
            lambda snap: float(snap.estimate.evaluate(x)),
        )

    def quantile(self, q: float, *, version: int | None = None) -> float:
        """Smallest attribute value ``v`` with estimated ``F(v) >= q``."""
        with self._validating("quantile"):
            q = _finite(q, "q")
            if not 0.0 <= q <= 1.0:
                raise ServiceError(
                    f"quantile level must lie in [0, 1], got {q}",
                    code="bad_request",
                )
        return self._serve(
            "quantile", (q,), version,
            lambda snap: float(snap.estimate.quantile(q)[0]),
        )

    def fraction_between(
        self, a: float, b: float, *, version: int | None = None
    ) -> float:
        """Estimated fraction of nodes with attribute in ``(a, b]``.

        Infinite bounds are allowed (``fraction_between(2048, inf)`` is
        the paper's ">= 2 GB RAM" query).
        """
        with self._validating("fraction"):
            a = _finite(a, "a")
            b = _finite(b, "b")
            if a > b:
                raise ServiceError(
                    f"interval is empty: a={a} > b={b}", code="bad_request"
                )
        return self._serve(
            "fraction", (a, b), version,
            lambda snap: max(
                self._edge_cdf(snap, b) - self._edge_cdf(snap, a), 0.0
            ),
        )

    def network_size(self, *, version: int | None = None) -> float:
        """The protocol's network-size estimate for the served snapshot."""
        def compute(snap: EstimateSnapshot) -> float:
            if snap.size_estimate is None:
                raise ServiceError(
                    f"snapshot v{snap.version} carries no size estimate",
                    code="unavailable",
                )
            return float(snap.size_estimate)

        return self._serve("size", (), version, compute)

    def execute(self, request: QueryRequest) -> QueryResponse:
        """Answer one typed :class:`~repro.service.protocol.QueryRequest`.

        The canonical entry point for every serving surface (endpoint,
        worker processes, in-process callers): the op registry maps the
        wire op to the engine method, and engine failures come back as
        typed error responses instead of raising — the caller is a
        protocol layer, not application code.
        """
        spec = OPS[request.op]
        if spec.engine_method is None:
            return QueryResponse.failure(
                "bad_request",
                f"op {request.op!r} is a control op; the engine does not serve it",
                request_id=request.request_id,
            )
        method: Callable[..., float] = getattr(self, spec.engine_method)
        try:
            value = method(*request.args, version=request.version)
        except ServiceError as exc:
            return QueryResponse.failure(
                exc.code, str(exc), request_id=request.request_id
            )
        except Exception as exc:  # the wire-level 5xx class
            return QueryResponse.failure(
                "server_error", f"{type(exc).__name__}: {exc}",
                request_id=request.request_id,
            )
        return QueryResponse.success(
            value, version=request.version, request_id=request.request_id
        )

    # ------------------------------------------------------------------
    # Serving core
    # ------------------------------------------------------------------

    @contextmanager
    def _validating(self, op: str) -> Iterator[None]:
        """Emit a failure event when argument validation rejects a query.

        Validation runs before :meth:`_serve`, so a rejected query would
        otherwise leave no trace in the metrics — and a frontend reading
        ``queries_total`` would undercount what it actually received.
        """
        started = self._clock()
        try:
            yield
        except ServiceError as exc:
            self._emit(op, None, False, False, exc.code, started)
            raise

    def _edge_cdf(self, snapshot: EstimateSnapshot, x: float) -> float:
        """``F(x)`` through the cache, sharing keys with the cdf op.

        Interval queries draw endpoints from the same value pool as
        point queries, but their *pairs* rarely repeat — caching the
        pair alone made nearly every fraction query re-evaluate the
        polyline twice.  Evaluating each endpoint through the shared
        ``(version, "cdf", x)`` entries makes fraction misses cheap and
        pre-warms the cdf op (and vice versa).  Deliberately not
        counted as a hit/miss: the op-level lookup already did that.
        """
        key: _CacheKey = (snapshot.version, "cdf", x)
        value = self._cache.get(key)
        if value is None:
            value = float(snapshot.estimate.evaluate(x))
            self._cache_put(key, value)
        return value

    def _snapshot(self, version: int | None) -> EstimateSnapshot:
        if version is None:
            return self.store.latest()
        return self.store.get(version)

    def _serve(
        self,
        op: str,
        args: tuple[float, ...],
        version: int | None,
        compute: Callable[[EstimateSnapshot], float],
    ) -> float:
        started = self._clock()
        served_version: int | None = version
        try:
            snapshot = self._snapshot(version)
            served_version = snapshot.version
            key: _CacheKey = (snapshot.version, op, *args)
            cached = self._cache_get(key)
            if cached is not None:
                self._emit(op, served_version, True, True, None, started)
                return cached
            value = compute(snapshot)
            self._cache_put(key, value)
            self._emit(op, served_version, False, True, None, started)
            return value
        except ServiceError as exc:
            self._emit(op, served_version, False, False, exc.code, started)
            raise
        except Exception:
            self._emit(op, served_version, False, False, "server_error", started)
            raise

    def _emit(
        self,
        op: str,
        version: int | None,
        cache_hit: bool,
        ok: bool,
        error: str | None,
        started: float,
    ) -> None:
        self.hub.query_served(QueryServed(
            op=op,
            version=version,
            cache_hit=cache_hit,
            ok=ok,
            error=error,
            latency_s=self._clock() - started,
        ))

    # ------------------------------------------------------------------
    # LRU cache
    # ------------------------------------------------------------------

    def _cache_get(self, key: _CacheKey) -> float | None:
        if self.cache_size == 0:
            self._misses += 1
            return None
        value = self._cache.get(key)
        if value is None:
            self._misses += 1
            return None
        self._cache.move_to_end(key)
        self._hits += 1
        return value

    def _cache_put(self, key: _CacheKey, value: float) -> None:
        if self.cache_size == 0:
            return
        self._cache[key] = value
        self._cache.move_to_end(key)
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)

    def cache_info(self) -> dict[str, int]:
        """Hit/miss counters and current cache occupancy."""
        return {
            "hits": self._hits,
            "misses": self._misses,
            "size": len(self._cache),
            "max_size": self.cache_size,
        }

    def clear_cache(self) -> None:
        """Drop every cached answer (counters are preserved)."""
        self._cache.clear()
