"""The versioned estimate store: immutable CDF snapshots with metadata.

Every scheduler cycle publishes one :class:`EstimateSnapshot` — a frozen
record wrapping the cycle's consensus :class:`~repro.core.cdf.EstimatedCDF`
plus the serving metadata applications need to judge an answer (version,
staleness tick, size estimate, self-assessed confidence, whether the
cycle was a drift-triggered restart).  The :class:`EstimateStore` keeps a
bounded history of recent versions so queries can be pinned to a known
snapshot while the scheduler keeps publishing behind them.

The store is thread-safe: the TCP frontend serves from the event-loop
thread while scheduler cycles may run in a worker thread (the net
backend owns its own ``asyncio.run`` and must not share the endpoint's
loop).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

from repro.core.cdf import EstimatedCDF
from repro.errors import ServiceError

__all__ = ["EstimateSnapshot", "EstimateStore"]


@dataclass(frozen=True, slots=True)
class EstimateSnapshot:
    """One immutable published estimate.

    Attributes:
        version: monotonically increasing store version (1-based).
        estimate: the consensus CDF estimate of the producing cycle.
        backend: backend name the cycle ran on.
        n_nodes: population size of the producing run.
        instances: aggregation instances the cycle chained (1 for a
            steady refresh, the full refinement chain on a restart).
        rounds: gossip rounds per instance (the instance TTL).
        size_estimate: the protocol's network-size estimate ``1/w``
            (``None`` when the producing run did not aggregate one).
        confidence: self-assessed ``(EstErr_a, EstErr_m)`` from the
            paper's verification points, when the configuration enabled
            them; ``None`` otherwise.  Never derived from ground truth.
        published_tick: scheduler logical clock at publish time; the
            staleness of a served answer is the scheduler's current tick
            minus this value.
        published_at: host wall-clock seconds at publish time when the
            scheduler was given a clock (serving deployments); ``None``
            in deterministic runs.
        restarted: True when the producing cycle ran the full refinement
            chain because the restart policy fired (or it was the first).
        divergence: max CDF distance to the previously published
            estimate (the drift detector's signal); ``None`` for the
            first snapshot.
    """

    version: int
    estimate: EstimatedCDF
    backend: str
    n_nodes: int
    instances: int
    rounds: int
    size_estimate: float | None
    confidence: tuple[float, float] | None
    published_tick: int
    published_at: float | None
    restarted: bool
    divergence: float | None

    def staleness(self, tick: int) -> int:
        """Scheduler ticks elapsed since this snapshot was published."""
        return max(int(tick) - self.published_tick, 0)

    def meta(self) -> dict[str, object]:
        """JSON-serialisable metadata (everything but the polyline)."""
        return {
            "version": self.version,
            "backend": self.backend,
            "n_nodes": self.n_nodes,
            "instances": self.instances,
            "rounds": self.rounds,
            "size_estimate": self.size_estimate,
            "confidence": list(self.confidence) if self.confidence else None,
            "published_tick": self.published_tick,
            "published_at": self.published_at,
            "restarted": self.restarted,
            "divergence": self.divergence,
            "minimum": self.estimate.minimum,
            "maximum": self.estimate.maximum,
            "points": int(self.estimate.thresholds.size),
        }


class EstimateStore:
    """Bounded, versioned history of published snapshots.

    Args:
        max_history: recent versions retained.  Older versions are
            evicted on publish unless pinned; the latest snapshot is
            never evicted.

    Pinning contract: a pinned version is retained *beyond* the
    ``max_history`` budget (the store may temporarily hold more than
    ``max_history`` snapshots), stays listed by :meth:`versions` and
    :meth:`history` (flagged ``pinned: true`` there) and servable
    through :meth:`get` for as long as the pin holds.  :meth:`unpin`
    makes the version ordinarily evictable again and drains any
    pin-caused overflow immediately — oldest unpinned versions first.
    """

    def __init__(self, max_history: int = 8) -> None:
        if max_history < 1:
            raise ServiceError("max_history must be >= 1")
        self.max_history = max_history
        self._lock = threading.Lock()
        self._snapshots: OrderedDict[int, EstimateSnapshot] = OrderedDict()
        self._pinned: set[int] = set()
        self._next_version = 1
        self._published_total = 0
        self._subscribers: list[Callable[[EstimateSnapshot], None]] = []

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------

    def publish(
        self,
        estimate: EstimatedCDF,
        *,
        backend: str,
        n_nodes: int,
        instances: int,
        rounds: int,
        size_estimate: float | None = None,
        confidence: tuple[float, float] | None = None,
        published_tick: int = 0,
        published_at: float | None = None,
        restarted: bool = False,
        divergence: float | None = None,
    ) -> EstimateSnapshot:
        """Assign the next version and append an immutable snapshot."""
        with self._lock:
            snapshot = EstimateSnapshot(
                version=self._next_version,
                estimate=estimate,
                backend=backend,
                n_nodes=n_nodes,
                instances=instances,
                rounds=rounds,
                size_estimate=size_estimate,
                confidence=confidence,
                published_tick=published_tick,
                published_at=published_at,
                restarted=restarted,
                divergence=divergence,
            )
            self._next_version += 1
            self._published_total += 1
            self._snapshots[snapshot.version] = snapshot
            self._evict_locked()
            subscribers = tuple(self._subscribers)
        # Callbacks run outside the lock: a subscriber that re-enters the
        # store (or blocks on a worker feed queue) must not deadlock the
        # publishing scheduler thread.
        for callback in subscribers:
            callback(snapshot)
        return snapshot

    def adopt(self, snapshot: EstimateSnapshot) -> EstimateSnapshot:
        """Insert an already-versioned snapshot into a replica store.

        The snapshot-feed counterpart of :meth:`publish`: worker
        processes replay the publisher's snapshots into their own store
        so every replica serves identical versions.  Adoption is
        idempotent (re-delivery keeps the first copy), keeps the version
        counter ahead of the newest adopted version, and never notifies
        subscribers — replicas re-broadcasting would loop the feed.
        """
        with self._lock:
            if snapshot.version not in self._snapshots:
                self._snapshots[snapshot.version] = snapshot
                # Preserve version order even if the feed re-orders
                # deliveries; OrderedDict iteration order is eviction
                # and latest() order.
                ordered = sorted(self._snapshots)
                for version in ordered:
                    self._snapshots.move_to_end(version)
                self._published_total += 1
                self._evict_locked()
            self._next_version = max(self._next_version, snapshot.version + 1)
            return self._snapshots[snapshot.version]

    # ------------------------------------------------------------------
    # Subscriptions (the worker snapshot feed)
    # ------------------------------------------------------------------

    def subscribe(self, callback: Callable[[EstimateSnapshot], None]) -> None:
        """Call ``callback(snapshot)`` after every :meth:`publish`."""
        with self._lock:
            if callback not in self._subscribers:
                self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[EstimateSnapshot], None]) -> None:
        """Drop a publish subscription (idempotent)."""
        with self._lock:
            if callback in self._subscribers:
                self._subscribers.remove(callback)

    def _evict_locked(self) -> None:
        excess = len(self._snapshots) - self.max_history
        if excess <= 0:
            return
        latest = next(reversed(self._snapshots))
        for version in list(self._snapshots):
            if excess <= 0:
                break
            if version == latest or version in self._pinned:
                continue
            del self._snapshots[version]
            excess -= 1

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def latest(self) -> EstimateSnapshot:
        """The most recently published snapshot; fails loudly when empty."""
        with self._lock:
            if not self._snapshots:
                raise ServiceError(
                    "no estimate published yet", code="unavailable"
                )
            return next(reversed(self._snapshots.values()))

    def get(self, version: int) -> EstimateSnapshot:
        """A specific retained version; names the live range on a miss."""
        with self._lock:
            snapshot = self._snapshots.get(version)
            if snapshot is None:
                retained = sorted(self._snapshots)
                raise ServiceError(
                    f"version {version} is not retained; "
                    f"available versions: {retained or '(none)'}",
                    code="unavailable",
                )
            return snapshot

    def versions(self) -> list[int]:
        """All retained versions, oldest first.

        Contract: *every* retained version is listed — pinned versions
        that outlived the ``max_history`` budget included.  A version in
        this list is always servable through :meth:`get`.
        """
        with self._lock:
            return sorted(self._snapshots)

    def history(self) -> list[dict[str, object]]:
        """Metadata of every retained snapshot, oldest first.

        Each entry is the snapshot's :meth:`EstimateSnapshot.meta` dict
        plus a ``"pinned"`` flag, so frontends can tell an old version
        that survived eviction *because it is pinned* from one still
        inside the history budget.  Pinned versions are always present
        (same contract as :meth:`versions`).
        """
        with self._lock:
            return [
                {
                    **self._snapshots[version].meta(),
                    "pinned": version in self._pinned,
                }
                for version in sorted(self._snapshots)
            ]

    @property
    def published_total(self) -> int:
        """Snapshots ever published (including evicted ones)."""
        with self._lock:
            return self._published_total

    def __len__(self) -> int:
        with self._lock:
            return len(self._snapshots)

    # ------------------------------------------------------------------
    # Pinning
    # ------------------------------------------------------------------

    def pin(self, version: int) -> EstimateSnapshot:
        """Protect a retained version from eviction (idempotent)."""
        with self._lock:
            snapshot = self._snapshots.get(version)
            if snapshot is None:
                raise ServiceError(
                    f"cannot pin version {version}: not retained",
                    code="unavailable",
                )
            self._pinned.add(version)
            return snapshot

    def unpin(self, version: int) -> None:
        """Drop a pin; the version becomes evictable again."""
        with self._lock:
            self._pinned.discard(version)
            self._evict_locked()

    def pinned(self) -> list[int]:
        """Currently pinned versions, sorted."""
        with self._lock:
            return sorted(self._pinned)
