"""The continuous scheduler: back-to-back aggregation cycles with restarts.

The paper frames Adam2 as a *standing* protocol — instances run
back-to-back so applications always have a recent estimate.  The
:class:`ContinuousScheduler` reproduces that loop on top of the
:func:`repro.api.run` facade:

* Each **cycle** is one facade run over the scheduler-owned population.
  A *restart* cycle chains :attr:`SchedulerPolicy.chain_instances`
  aggregation instances, so the configured bootstrap (uniform/neighbour)
  is refined by the paper's threshold-selection heuristic
  (HCut/MinMax/LCut, per ``config.selection``) before publishing; a
  *steady* cycle runs :attr:`SchedulerPolicy.steady_instances` cheap
  refresh instance(s).
* The **restart policy** watches consecutive published estimates for
  drift: when the max CDF distance between them exceeds
  :attr:`SchedulerPolicy.restart_divergence`, or either tracked extreme
  moves by more than :attr:`SchedulerPolicy.extreme_change`
  (relative), the next cycle re-runs the full refinement chain so the
  thresholds re-adapt to the moved distribution.
* The scheduler owns an evolving **population** array: an optional
  :class:`~repro.workloads.dynamic.DriftModel` is applied between
  cycles, and each run sees the current generation through a
  :class:`~repro.workloads.base.FixedPopulation` — so
  :meth:`current_truth` is the *exact* ground truth of what the latest
  cycle estimated.

Every published estimate lands in the :class:`~repro.service.store`
as an immutable versioned snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from repro.api import get_backend, run
from repro.api.result import RunResult
from repro.core.cdf import EmpiricalCDF, EstimatedCDF
from repro.core.config import Adam2Config
from repro.errors import ConfigurationError, ServiceError
from repro.obs import NULL_HUB, ObserverHub
from repro.rngs import make_rng
from repro.service.store import EstimateSnapshot, EstimateStore
from repro.workloads.base import AttributeWorkload, FixedPopulation
from repro.workloads.dynamic import DriftModel

__all__ = ["ContinuousScheduler", "SchedulerPolicy", "estimate_divergence"]


def estimate_divergence(
    a: EstimatedCDF, b: EstimatedCDF, grid_points: int = 129
) -> float:
    """Max vertical distance between two estimates on a shared grid.

    The grid spans the union of both supports, so mass that moved past
    either old extreme is seen (a pure shift changes little *inside* a
    stale support).  This is the scheduler's drift signal — an
    estimate-vs-estimate distance, never a comparison against ground
    truth, so it is computable by a real deployment.
    """
    if grid_points < 2:
        raise ConfigurationError("divergence grid needs at least 2 points")
    lo = min(a.minimum, b.minimum)
    hi = max(a.maximum, b.maximum)
    if hi <= lo:
        hi = lo + 1.0
    grid = np.linspace(lo, hi, grid_points)
    return float(np.max(np.abs(a.evaluate(grid) - b.evaluate(grid))))


def _relative_change(new: float, old: float) -> float:
    scale = max(abs(old), abs(new), 1e-12)
    return abs(new - old) / scale


@dataclass(frozen=True)
class SchedulerPolicy:
    """Knobs of the continuous loop.

    Attributes:
        chain_instances: aggregation instances per *restart* cycle — the
            bootstrap instance plus refinement steps under the config's
            selection heuristic.
        steady_instances: instances per *steady* refresh cycle.
        restart_divergence: max CDF distance between consecutive
            published estimates above which the next cycle restarts.
        extreme_change: relative change of either tracked extreme above
            which the next cycle restarts (catches mass moving past the
            old support faster than interior divergence does).
        divergence_grid: evaluation points for the drift signal.
        drift_steps_per_cycle: how many :class:`DriftModel` steps the
            population advances between cycles (the model is per-round;
            one cycle spans ``rounds_per_instance`` rounds of simulated
            time per instance, so deployments may want more than 1).
    """

    chain_instances: int = 3
    steady_instances: int = 1
    restart_divergence: float = 0.02
    extreme_change: float = 0.2
    divergence_grid: int = 129
    drift_steps_per_cycle: int = 1

    def __post_init__(self) -> None:
        if self.chain_instances < 1 or self.steady_instances < 1:
            raise ConfigurationError("cycles need at least one instance")
        if self.restart_divergence < 0 or self.extreme_change < 0:
            raise ConfigurationError("restart thresholds must be >= 0")
        if self.divergence_grid < 2:
            raise ConfigurationError("divergence_grid must be >= 2")
        if self.drift_steps_per_cycle < 0:
            raise ConfigurationError("drift_steps_per_cycle must be >= 0")


class ContinuousScheduler:
    """Drives estimation cycles and publishes snapshots to a store.

    Args:
        config: protocol parameters for every cycle.
        workload: source of the *initial* population values; after that
            the scheduler owns the array and only drift mutates it.
        store: destination for published snapshots.
        backend: facade backend each cycle runs on.
        n_nodes: population size.
        seed: master seed; per-cycle run seeds and drift randomness
            derive from it, so a scheduler run is fully deterministic.
        policy: loop knobs (defaults: 3-instance chain, restart at
            divergence > 0.02).
        drift: optional between-cycle population drift.
        hub: observability hub (``service_cycles_total`` /
            ``service_restarts_total`` counters land in its metrics).
        clock: optional wall clock stamped onto snapshots as
            ``published_at`` (e.g. :func:`repro.obs.wall_clock`); left
            ``None`` for deterministic runs.
        options: extra backend options passed through to every
            :func:`repro.api.run` call.
    """

    def __init__(
        self,
        config: Adam2Config,
        workload: AttributeWorkload,
        store: EstimateStore,
        *,
        backend: str = "fast",
        n_nodes: int = 1000,
        seed: int = 0,
        policy: SchedulerPolicy | None = None,
        drift: DriftModel | None = None,
        hub: ObserverHub = NULL_HUB,
        clock: Callable[[], float] | None = None,
        options: Mapping[str, object] | None = None,
    ) -> None:
        if n_nodes < 2:
            raise ConfigurationError("need at least 2 nodes")
        get_backend(backend)  # fail at construction, not at the first cycle
        self.config = config
        self.store = store
        self.backend = backend
        self.n_nodes = n_nodes
        self.policy = policy if policy is not None else SchedulerPolicy()
        self.drift = drift
        self.hub = hub
        self._clock = clock
        self._options = dict(options) if options else {}
        self._rng = make_rng(seed)
        self._drift_rng = make_rng(seed ^ 0x5EED)
        self._values = np.asarray(
            workload.sample(n_nodes, self._rng), dtype=float
        ).copy()
        self._workload_meta = (workload.name, workload.unit, workload.integral)
        self._tick = 0
        self._restart_pending = True  # the first cycle always bootstraps
        self._last_result: RunResult | None = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def tick(self) -> int:
        """Completed cycles (the store's staleness clock)."""
        return self._tick

    @property
    def restart_pending(self) -> bool:
        """Whether the next cycle will run the full refinement chain."""
        return self._restart_pending

    @property
    def last_result(self) -> RunResult | None:
        """The raw facade result of the most recent cycle."""
        return self._last_result

    def population(self) -> np.ndarray:
        """The current population values (a defensive copy)."""
        return self._values.copy()

    def current_truth(self) -> EmpiricalCDF:
        """Exact ground-truth CDF of the population the next cycle sees."""
        return EmpiricalCDF(self._values)

    # ------------------------------------------------------------------
    # The loop
    # ------------------------------------------------------------------

    def run_cycle(self) -> EstimateSnapshot:
        """Run one cycle, publish its snapshot, then advance drift."""
        restarted = self._restart_pending
        self._tick += 1  # a snapshot published this cycle has staleness 0
        instances = (
            self.policy.chain_instances if restarted
            else self.policy.steady_instances
        )
        name, unit, integral = self._workload_meta
        generation = FixedPopulation(
            self._values, name=name, unit=unit, integral=integral
        )
        result = run(
            self.config,
            generation,
            backend=self.backend,
            n_nodes=self.n_nodes,
            instances=instances,
            seed=int(self._rng.integers(0, 2**31 - 1)),
            hub=self.hub,
            **self._options,
        )
        self._last_result = result
        estimate = result.estimate
        if estimate is None:
            raise ServiceError(
                f"cycle {self._tick} produced no estimate "
                f"(no node completed an instance on backend {self.backend!r})",
                code="server_error",
            )

        previous = self._previous_estimate()
        divergence = (
            estimate_divergence(estimate, previous, self.policy.divergence_grid)
            if previous is not None else None
        )
        self._restart_pending = self._drift_detected(estimate, previous, divergence)

        snapshot = self.store.publish(
            estimate,
            backend=self.backend,
            n_nodes=self.n_nodes,
            instances=instances,
            rounds=self.config.rounds_per_instance,
            size_estimate=estimate.system_size,
            confidence=self._confidence(result),
            published_tick=self._tick,
            published_at=self._clock() if self._clock is not None else None,
            restarted=restarted,
            divergence=divergence,
        )
        metrics = self.hub.metrics
        metrics.counter("service_cycles_total").inc()
        if restarted:
            metrics.counter("service_restarts_total").inc()
        metrics.gauge("service_tick").set(float(self._tick))

        self._advance_drift()
        return snapshot

    def run_cycles(self, n: int) -> list[EstimateSnapshot]:
        """Run ``n`` consecutive cycles, returning their snapshots."""
        if n < 0:
            raise ConfigurationError(f"cannot run {n} cycles")
        return [self.run_cycle() for _ in range(n)]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _previous_estimate(self) -> EstimatedCDF | None:
        try:
            return self.store.latest().estimate
        except ServiceError:
            return None

    def _drift_detected(
        self,
        estimate: EstimatedCDF,
        previous: EstimatedCDF | None,
        divergence: float | None,
    ) -> bool:
        if previous is None or divergence is None:
            return False
        if divergence > self.policy.restart_divergence:
            return True
        return (
            _relative_change(estimate.minimum, previous.minimum)
            > self.policy.extreme_change
            or _relative_change(estimate.maximum, previous.maximum)
            > self.policy.extreme_change
        )

    def _confidence(self, result: RunResult) -> tuple[float, float] | None:
        """Self-assessed ``(EstErr_a, EstErr_m)`` from the final instance.

        Present only when the configuration enabled verification points
        and the backend computed them (the fast backend's
        ``confidence_sample`` option); never derived from ground truth.
        """
        if not result.instances:
            return None
        raw = result.instances[-1].raw
        est_a = getattr(raw, "est_erra", None)
        est_m = getattr(raw, "est_errm", None)
        if est_a is None or est_m is None:
            return None
        est_a = np.asarray(est_a, dtype=float)
        est_m = np.asarray(est_m, dtype=float)
        if est_a.size == 0 or est_m.size == 0:
            return None
        return float(np.mean(est_a)), float(np.mean(est_m))

    def _advance_drift(self) -> None:
        if self.drift is None or self.drift.is_static:
            return
        for _ in range(self.policy.drift_steps_per_cycle):
            self._values = self.drift.apply(self._values, self._drift_rng)
