"""Dynamic attribute distributions (paper §VII-F).

The paper discusses — without a figure — what happens when the attribute
CDF itself changes while the protocol runs: a node evaluates its attribute
only when it creates or joins an instance, so the end-of-instance error is
the aggregation error *plus* however far the CDF moved during the
instance; shortening the instance (gossiping faster) trades nothing away
because the per-instance message count is unchanged.

:class:`DriftModel` provides the standard drift shapes used by the
``dynamic`` experiment: multiplicative growth (e.g. load increasing
system-wide), additive shift, and partial resampling (a fraction of nodes
re-draw their value each round — attribute-level churn without membership
churn).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.workloads.base import AttributeWorkload

__all__ = ["DriftModel"]


@dataclass
class DriftModel:
    """Per-round mutation of the population's attribute values.

    Attributes:
        growth_per_round: multiplicative drift; 0.01 grows every value by
            1 % per round (a system-wide load ramp).
        shift_per_round: additive drift applied after growth.
        resample_fraction: fraction of nodes that re-draw their value
            from ``resample_workload`` each round.
        resample_workload: source for re-drawn values (required when
            ``resample_fraction`` > 0).
    """

    growth_per_round: float = 0.0
    shift_per_round: float = 0.0
    resample_fraction: float = 0.0
    resample_workload: AttributeWorkload | None = None

    def __post_init__(self) -> None:
        if not -0.5 <= self.growth_per_round <= 0.5:
            raise ConfigurationError("growth_per_round must be in [-0.5, 0.5]")
        if not 0.0 <= self.resample_fraction <= 1.0:
            raise ConfigurationError("resample_fraction must be in [0, 1]")
        if self.resample_fraction > 0 and self.resample_workload is None:
            raise ConfigurationError("resampling drift needs a resample_workload")

    @property
    def is_static(self) -> bool:
        return (
            self.growth_per_round == 0.0
            and self.shift_per_round == 0.0
            and self.resample_fraction == 0.0
        )

    def apply(self, values: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Return the next round's values (the input is not mutated)."""
        out = np.asarray(values, dtype=float).copy()
        if self.growth_per_round:
            out *= 1.0 + self.growth_per_round
        if self.shift_per_round:
            out += self.shift_per_round
        if self.resample_fraction > 0:
            k = int(round(self.resample_fraction * out.size))
            if k > 0:
                idx = rng.choice(out.size, size=k, replace=False)
                out[idx] = self.resample_workload.sample(k, rng)
        return out
