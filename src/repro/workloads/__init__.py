"""Attribute workloads: synthetic stand-ins for the BOINC 2008 host trace.

The paper evaluates Adam2 on real-world attribute distributions extracted
from the BOINC volunteer-computing project (CPU MFLOPS, RAM MB, downstream
bandwidth, disk space).  That trace is not redistributable, so this package
provides synthetic generators matched to the qualitative shapes reported in
the paper's Figure 4: a *smooth* heavy-tailed CPU distribution and a
heavily *stepped* RAM distribution, plus bandwidth/disk analogues, faulty
reading injection, and the paper's filtering step.
"""

from repro.workloads.base import AttributeWorkload, FixedPopulation, SampledWorkload
from repro.workloads.boinc import (
    BoincAttribute,
    boinc_bandwidth_kbps,
    boinc_cpu_mflops,
    boinc_disk_gb,
    boinc_ram_mb,
    boinc_workload,
)
from repro.workloads.faults import FaultModel, filter_faulty, inject_faults
from repro.workloads.synthetic import (
    lognormal_workload,
    normal_workload,
    step_workload,
    uniform_workload,
    zipf_workload,
)
from repro.workloads.traces import load_trace, save_trace

__all__ = [
    "AttributeWorkload",
    "FixedPopulation",
    "SampledWorkload",
    "BoincAttribute",
    "boinc_cpu_mflops",
    "boinc_ram_mb",
    "boinc_bandwidth_kbps",
    "boinc_disk_gb",
    "boinc_workload",
    "FaultModel",
    "inject_faults",
    "filter_faulty",
    "uniform_workload",
    "normal_workload",
    "lognormal_workload",
    "zipf_workload",
    "step_workload",
    "load_trace",
    "save_trace",
]
