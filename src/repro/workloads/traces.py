"""Saving and loading attribute traces as simple CSV files.

A trace is a 1-D array of attribute values, one per host.  The format is a
two-line-header CSV (`# name=..., unit=..., integral=...` then one value
per line) so traces can be produced once (e.g. a full 100,000-host BOINC
stand-in) and reused across experiments without resampling.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.base import SampledWorkload

__all__ = ["save_trace", "load_trace"]


def save_trace(path: str | Path, values: np.ndarray, name: str = "trace", unit: str = "", integral: bool = True) -> None:
    """Write a trace to ``path`` in the repro CSV format."""
    values = np.asarray(values, dtype=float)
    if values.ndim != 1:
        raise WorkloadError("trace must be 1-D")
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        fh.write(f"# name={name}, unit={unit}, integral={int(integral)}\n")
        fh.write("value\n")
        for value in values:
            fh.write(f"{value:.10g}\n")


def load_trace(path: str | Path) -> SampledWorkload:
    """Load a trace written by :func:`save_trace` into a workload."""
    path = Path(path)
    if not path.exists():
        raise WorkloadError(f"trace file not found: {path}")
    name, unit, integral = "trace", "", True
    values: list[float] = []
    with path.open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                for part in line.lstrip("# ").split(","):
                    key, _, raw = part.strip().partition("=")
                    if key == "name":
                        name = raw
                    elif key == "unit":
                        unit = raw
                    elif key == "integral":
                        integral = bool(int(raw))
                continue
            if line == "value":
                continue
            try:
                values.append(float(line))
            except ValueError:
                raise WorkloadError(f"malformed trace line: {line!r}") from None
    if not values:
        raise WorkloadError(f"trace file {path} contains no values")
    return SampledWorkload(np.asarray(values), name=name, unit=unit, integral=integral)
