"""Simple synthetic workloads for tests, examples, and ablations.

The paper deliberately avoids synthetic distributions for its headline
results ("synthetic distributions are typically smooth and therefore easier
to approximate", §VII) — we keep them anyway as controlled inputs for unit
tests and ablation benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.base import AttributeWorkload

__all__ = [
    "uniform_workload",
    "normal_workload",
    "lognormal_workload",
    "zipf_workload",
    "step_workload",
]


class _FunctionWorkload(AttributeWorkload):
    def __init__(self, name: str, sampler, integral: bool = True, unit: str = ""):
        self.name = name
        self.unit = unit
        self.integral = integral
        self._sampler = sampler

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if n < 0:
            raise WorkloadError(f"cannot sample {n} values")
        if n == 0:
            return np.empty(0, dtype=float)
        values = np.asarray(self._sampler(n, rng), dtype=float)
        if self.integral:
            values = np.rint(values)
        return values


def uniform_workload(low: float = 0.0, high: float = 1000.0, integral: bool = True) -> AttributeWorkload:
    """Uniform values in ``[low, high]``."""
    if high <= low:
        raise WorkloadError(f"need high > low, got [{low}, {high}]")
    return _FunctionWorkload("uniform", lambda n, rng: rng.uniform(low, high, size=n), integral)


def normal_workload(mean: float = 500.0, std: float = 100.0, integral: bool = True) -> AttributeWorkload:
    """Normal values (clipped at zero to keep the domain positive)."""
    if std <= 0:
        raise WorkloadError("std must be positive")
    return _FunctionWorkload(
        "normal", lambda n, rng: np.maximum(rng.normal(mean, std, size=n), 0.0), integral
    )


def lognormal_workload(median: float = 500.0, sigma: float = 1.0, integral: bool = True) -> AttributeWorkload:
    """Heavy-tailed log-normal values with the given median."""
    if median <= 0 or sigma <= 0:
        raise WorkloadError("median and sigma must be positive")
    mu = float(np.log(median))
    return _FunctionWorkload(
        "lognormal", lambda n, rng: rng.lognormal(mean=mu, sigma=sigma, size=n), integral
    )


def zipf_workload(exponent: float = 2.0, cap: float = 1_000_000.0) -> AttributeWorkload:
    """Zipf-distributed integer values, capped to keep the domain bounded."""
    if exponent <= 1.0:
        raise WorkloadError("zipf exponent must exceed 1")
    return _FunctionWorkload(
        "zipf", lambda n, rng: np.minimum(rng.zipf(exponent, size=n).astype(float), cap), True
    )


def step_workload(levels: list[float] | None = None, weights: list[float] | None = None) -> AttributeWorkload:
    """A pure staircase CDF: values drawn from a small categorical set.

    This is the hardest shape for interpolation-based estimators and the
    cleanest input for testing the MinMax heuristic.
    """
    lv = np.asarray(levels if levels is not None else [100.0, 200.0, 400.0, 800.0], dtype=float)
    if lv.ndim != 1 or lv.size < 2:
        raise WorkloadError("need at least two step levels")
    if weights is None:
        w = np.full(lv.size, 1.0 / lv.size)
    else:
        w = np.asarray(weights, dtype=float)
        if w.shape != lv.shape or np.any(w < 0) or w.sum() <= 0:
            raise WorkloadError("weights must be non-negative and match levels")
        w = w / w.sum()
    return _FunctionWorkload("step", lambda n, rng: lv[rng.choice(lv.size, size=n, p=w)], True)
