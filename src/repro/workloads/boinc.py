"""Synthetic BOINC-like attribute workloads.

The paper's evaluation (§VII) uses four attributes extracted from the 2008
BOINC host census [Anderson & Reed, HICSS'09]: measured CPU performance in
MFLOPS, installed RAM in MB, measured downstream bandwidth, and installed
disk space.  The trace itself is not redistributable, so each generator
below is a synthetic stand-in calibrated to the qualitative features that
drive the paper's results (Figure 4):

* **CPU (MFLOPS)** — a *smooth* unimodal, mildly heavy-tailed curve
  spanning roughly 50–10,000 MFLOPS.  Modelled as a mixture of two
  log-normals (mainstream hosts + a slower legacy population) rounded to
  integers; no step structure.
* **RAM (MB)** — a heavily *stepped* CDF: the overwhelming majority of
  hosts report one of a handful of standard module sizes (256, 512, 1024,
  2048 MB, …), so the CDF is close to a staircase.  Modelled as a categorical
  distribution over standard sizes (≈ 97 % of mass) plus small secondary
  steps at standard-minus-shared-video-memory sizes and a sliver of
  genuinely odd configurations — see ``_ram_sampler``.
* **Bandwidth (kbit/s)** — multi-modal with mass near nominal link rates
  (dial-up, DSL tiers, cable, LAN), i.e. a mildly stepped distribution.
* **Disk (GB)** — smooth-ish log-normal with mild clustering at marketing
  sizes.

The generators are deterministic given a :class:`numpy.random.Generator`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.base import AttributeWorkload

__all__ = [
    "BoincAttribute",
    "boinc_cpu_mflops",
    "boinc_ram_mb",
    "boinc_bandwidth_kbps",
    "boinc_disk_gb",
    "boinc_workload",
]

# Standard RAM module sizes (MB) and their approximate 2008-era host shares.
_RAM_SIZES_MB = np.array(
    [128, 256, 384, 512, 768, 1024, 1536, 2048, 3072, 4096],
    dtype=float,
)
_RAM_WEIGHTS = np.array(
    [0.04, 0.11, 0.03, 0.23, 0.04, 0.28, 0.045, 0.18, 0.02, 0.025]
)

# Nominal downstream link rates (kbit/s) and shares: dial-up, ISDN, DSL
# tiers, cable tiers, FTTH/LAN.
_BW_RATES_KBPS = np.array(
    [56, 128, 256, 512, 768, 1024, 1536, 2048, 3072, 4096, 6144, 8192, 16384, 102400],
    dtype=float,
)
_BW_WEIGHTS = np.array(
    [0.04, 0.02, 0.06, 0.10, 0.07, 0.14, 0.10, 0.15, 0.09, 0.10, 0.05, 0.04, 0.03, 0.01]
)


class BoincAttribute(AttributeWorkload):
    """One synthetic BOINC attribute, defined by a sampling function."""

    def __init__(self, name: str, unit: str, sampler, integral: bool = True):
        self.name = name
        self.unit = unit
        self.integral = integral
        self._sampler = sampler

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if n < 0:
            raise WorkloadError(f"cannot sample {n} values")
        if n == 0:
            return np.empty(0, dtype=float)
        values = np.asarray(self._sampler(n, rng), dtype=float)
        if self.integral:
            values = np.rint(values)
        return np.maximum(values, 1.0)


def _cpu_sampler(n: int, rng: np.random.Generator) -> np.ndarray:
    """Smooth heavy-tailed CPU performance in MFLOPS.

    Mixture of two log-normals: mainstream hosts centred near ~1.5 GFLOPS
    and a legacy population near ~300 MFLOPS.  The result is the smooth
    curve of the paper's Figure 4 spanning ~50 to ~10,000 MFLOPS.
    """
    legacy = rng.random(n) < 0.25
    values = np.empty(n, dtype=float)
    n_legacy = int(legacy.sum())
    values[legacy] = rng.lognormal(mean=np.log(320.0), sigma=0.55, size=n_legacy)
    values[~legacy] = rng.lognormal(mean=np.log(1600.0), sigma=0.50, size=n - n_legacy)
    return np.clip(values, 40.0, 60000.0)


def _ram_sampler(n: int, rng: np.random.Generator) -> np.ndarray:
    """Stepped installed-RAM distribution in MB (staircase CDF).

    ~97 % of hosts report a standard module size exactly; ~2.5 % report a
    standard size minus a discrete shared-video-memory reservation (16,
    32 or 64 MB) — secondary small steps just below each big one, as in
    real host censuses; ~0.5 % report genuinely odd values.
    """
    kind = rng.random(n)
    values = np.empty(n, dtype=float)
    weights = _RAM_WEIGHTS / _RAM_WEIGHTS.sum()

    standard = kind < 0.97
    n_std = int(standard.sum())
    values[standard] = _RAM_SIZES_MB[rng.choice(_RAM_SIZES_MB.size, size=n_std, p=weights)]

    shared = (kind >= 0.97) & (kind < 0.995)
    n_sh = int(shared.sum())
    base = _RAM_SIZES_MB[rng.choice(_RAM_SIZES_MB.size, size=n_sh, p=weights)]
    offsets = np.array([16.0, 32.0, 64.0])
    reserved = offsets[rng.integers(0, offsets.size, size=n_sh)]
    values[shared] = np.maximum(base - reserved, 32.0)

    odd = kind >= 0.995
    n_odd = int(odd.sum())
    base = _RAM_SIZES_MB[rng.choice(_RAM_SIZES_MB.size, size=n_odd, p=weights)]
    values[odd] = base * (1.0 + rng.uniform(-0.10, 0.10, size=n_odd))
    return np.clip(values, 32.0, 16384.0)


def _bandwidth_sampler(n: int, rng: np.random.Generator) -> np.ndarray:
    """Mildly stepped downstream bandwidth in kbit/s."""
    idx = rng.choice(_BW_RATES_KBPS.size, size=n, p=_BW_WEIGHTS / _BW_WEIGHTS.sum())
    nominal = _BW_RATES_KBPS[idx]
    # Measured throughput is below nominal by a variable margin.
    efficiency = rng.beta(8.0, 2.0, size=n)
    return np.clip(nominal * efficiency, 8.0, 200000.0)


def _disk_sampler(n: int, rng: np.random.Generator) -> np.ndarray:
    """Installed disk space in GB: smooth log-normal, mild clustering."""
    smooth = rng.lognormal(mean=np.log(120.0), sigma=0.9, size=n)
    marketing = np.array([40, 80, 120, 160, 250, 320, 500, 750, 1000], dtype=float)
    clustered = rng.random(n) < 0.35
    n_cl = int(clustered.sum())
    smooth[clustered] = marketing[rng.integers(0, marketing.size, size=n_cl)]
    return np.clip(smooth, 4.0, 4000.0)


def boinc_cpu_mflops() -> BoincAttribute:
    """The smooth CPU-performance attribute (MFLOPS) of Figure 4."""
    return BoincAttribute("cpu_mflops", "MFLOPS", _cpu_sampler)


def boinc_ram_mb() -> BoincAttribute:
    """The heavily stepped installed-RAM attribute (MB) of Figure 4."""
    return BoincAttribute("ram_mb", "MB", _ram_sampler)


def boinc_bandwidth_kbps() -> BoincAttribute:
    """Downstream bandwidth attribute (kbit/s)."""
    return BoincAttribute("bandwidth_kbps", "kbit/s", _bandwidth_sampler)


def boinc_disk_gb() -> BoincAttribute:
    """Installed disk space attribute (GB)."""
    return BoincAttribute("disk_gb", "GB", _disk_sampler)


_REGISTRY = {
    "cpu": boinc_cpu_mflops,
    "cpu_mflops": boinc_cpu_mflops,
    "ram": boinc_ram_mb,
    "ram_mb": boinc_ram_mb,
    "bandwidth": boinc_bandwidth_kbps,
    "bandwidth_kbps": boinc_bandwidth_kbps,
    "disk": boinc_disk_gb,
    "disk_gb": boinc_disk_gb,
}


def boinc_workload(attribute: str) -> BoincAttribute:
    """Look up a BOINC attribute workload by name.

    Accepted names: ``cpu``, ``ram``, ``bandwidth``, ``disk`` (plus their
    unit-suffixed aliases).
    """
    try:
        return _REGISTRY[attribute.lower()]()
    except KeyError:
        raise WorkloadError(
            f"unknown BOINC attribute {attribute!r}; expected one of {sorted(set(_REGISTRY))}"
        ) from None
