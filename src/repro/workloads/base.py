"""Workload abstraction: a named source of per-node attribute values."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import WorkloadError

__all__ = ["AttributeWorkload", "FixedPopulation", "SampledWorkload"]


class AttributeWorkload(ABC):
    """A distribution of attribute values assignable to nodes.

    A workload plays two roles in an experiment:

    * it assigns each (initial or churned-in) node an attribute value via
      :meth:`sample`;
    * it documents the attribute (name, unit, whether values are integral).

    The *ground-truth* CDF used for error measurement is always the
    empirical CDF of the values actually assigned to live nodes (see
    :class:`repro.core.cdf.EmpiricalCDF`), never an analytic form — exactly
    as in the paper, where ``F`` is defined over the node population.
    """

    #: Human-readable attribute name, e.g. ``"cpu_mflops"``.
    name: str = "attribute"
    #: Unit for display purposes.
    unit: str = ""
    #: Whether sampled values are integers (discrete attribute domain).
    integral: bool = True

    @abstractmethod
    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` attribute values as a 1-D float array."""

    def sample_one(self, rng: np.random.Generator) -> float:
        """Draw a single attribute value (used for churned-in nodes)."""
        return float(self.sample(1, rng)[0])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"


class FixedPopulation(AttributeWorkload):
    """A workload that assigns an *exact* population, value for value.

    Unlike :class:`SampledWorkload` (which draws with replacement), a
    fixed population hands out precisely its array when asked for the
    full population size — so the ground-truth CDF of a run equals the
    CDF of these values exactly.  The continuous-estimation service uses
    this to re-estimate one evolving population across scheduler cycles:
    the service owns the value array, applies drift between cycles, and
    wraps each generation in a ``FixedPopulation`` for the next run.

    ``sample_one`` (churned-in nodes) still draws uniformly from the
    population, which preserves the paper's "same distribution" churn
    semantics.
    """

    def __init__(self, values: np.ndarray, name: str = "population", unit: str = "", integral: bool = False):
        values = np.asarray(values, dtype=float)
        if values.ndim != 1 or values.size == 0:
            raise WorkloadError("population must be a non-empty 1-D array")
        if not np.all(np.isfinite(values)):
            raise WorkloadError("population contains non-finite values")
        self._values = values.copy()
        self.name = name
        self.unit = unit
        self.integral = integral

    @property
    def values(self) -> np.ndarray:
        """The population values (read-only view)."""
        view = self._values.view()
        view.flags.writeable = False
        return view

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if n == self._values.size:
            return self._values.copy()
        if n < 0:
            raise WorkloadError(f"cannot sample {n} values")
        # Off-size requests (e.g. churn replenishment batches) fall back
        # to draws with replacement, like SampledWorkload.
        return self._values[rng.integers(0, self._values.size, size=n)].astype(float)

    def __len__(self) -> int:
        return int(self._values.size)


class SampledWorkload(AttributeWorkload):
    """A workload wrapping a fixed array of values (a loaded trace).

    Sampling draws values uniformly *with replacement* from the trace,
    which is how churned-in nodes obtain "a different attribute value drawn
    from the same distribution" (paper §VII-G).
    """

    def __init__(self, values: np.ndarray, name: str = "trace", unit: str = "", integral: bool = True):
        values = np.asarray(values, dtype=float)
        if values.ndim != 1 or values.size == 0:
            raise WorkloadError("trace must be a non-empty 1-D array")
        if not np.all(np.isfinite(values)):
            raise WorkloadError("trace contains non-finite values")
        self._values = values
        self.name = name
        self.unit = unit
        self.integral = integral

    @property
    def values(self) -> np.ndarray:
        """The underlying trace values (read-only view)."""
        view = self._values.view()
        view.flags.writeable = False
        return view

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if n < 0:
            raise WorkloadError(f"cannot sample {n} values")
        return self._values[rng.integers(0, self._values.size, size=n)].astype(float)

    def __len__(self) -> int:
        return int(self._values.size)
