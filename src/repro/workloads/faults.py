"""Faulty-reading injection and filtering.

The paper filters "obviously faulty readings (for example, a machine with a
bandwidth capacity above 10^31 bps or one with a negative amount of
memory)" from the BOINC trace before use (§VII).  To exercise that code
path we provide an injector that corrupts a fraction of a trace in the ways
real host censuses are corrupted, and the corresponding filter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError

__all__ = ["FaultModel", "inject_faults", "filter_faulty"]


@dataclass(frozen=True, slots=True)
class FaultModel:
    """Parameters for corrupting a trace.

    Attributes:
        rate: fraction of readings to corrupt (0..1).
        absurd_high: value used for "impossibly large" readings
            (the paper's 10^31 bps bandwidth example).
        plausible_max: the largest value considered physically plausible
            for the attribute; the filter drops anything above it.
    """

    rate: float = 0.01
    absurd_high: float = 1e31
    plausible_max: float = 1e12

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise WorkloadError(f"fault rate must be in [0, 1], got {self.rate}")
        if self.plausible_max <= 0:
            raise WorkloadError("plausible_max must be positive")


def inject_faults(values: np.ndarray, model: FaultModel, rng: np.random.Generator) -> np.ndarray:
    """Return a copy of ``values`` with a fraction of readings corrupted.

    Three corruption modes, mirroring real census defects: absurdly large
    readings, negative readings, and NaN (missing) readings.
    """
    values = np.asarray(values, dtype=float).copy()
    n_faults = int(round(model.rate * values.size))
    if n_faults == 0:
        return values
    idx = rng.choice(values.size, size=n_faults, replace=False)
    mode = rng.integers(0, 3, size=n_faults)
    values[idx[mode == 0]] = model.absurd_high
    values[idx[mode == 1]] = -np.abs(values[idx[mode == 1]]) - 1.0
    values[idx[mode == 2]] = np.nan
    return values


def filter_faulty(values: np.ndarray, model: FaultModel | None = None) -> np.ndarray:
    """Drop obviously faulty readings, as the paper does before evaluation.

    Removes NaN/inf readings, negative readings, and readings above the
    plausible maximum.  Returns a new array of the surviving values.
    """
    model = model or FaultModel()
    values = np.asarray(values, dtype=float)
    keep = np.isfinite(values) & (values >= 0.0) & (values <= model.plausible_max)
    return values[keep]
