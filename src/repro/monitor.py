"""High-level facade: a continuous distribution-monitoring service.

:class:`DistributionMonitor` bundles the pieces a monitoring application
needs — engine, overlay, churn, the Adam2 protocol with probabilistic
instance scheduling, and optionally the confidence-driven accuracy
controller — behind a handful of calls::

    monitor = DistributionMonitor(workload=boinc_ram_mb(), n_nodes=1_000, seed=7)
    monitor.advance(rounds=120)               # let the system gossip
    view = monitor.snapshot()                  # consensus view of the CDF
    view.fraction_below(1024)                  # F(1024)
    view.quantile(0.9)                         # p90 attribute value
    view.system_size                           # epidemic N estimate
    view.rank_of(2048)                         # a value's global rank
    view.slice_of(2048, slices=10)             # which decile it falls in

The snapshot is the median node's view — by the paper's §VII-A result all
nodes agree to ~1e-5, so any node's estimate represents the system.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import EstimationError, SimulationError
from repro.rngs import make_rng, spawn
from repro.core.adaptive import AccuracyController
from repro.core.cdf import EstimatedCDF
from repro.core.config import Adam2Config
from repro.core.protocol import Adam2Protocol
from repro.simulation.churn import ReplacementChurn
from repro.simulation.runner import build_engine
from repro.workloads.base import AttributeWorkload

__all__ = ["DistributionMonitor", "DistributionView"]


@dataclass(frozen=True)
class DistributionView:
    """An application-facing, read-only view of one CDF estimate."""

    estimate: EstimatedCDF
    system_size: float | None
    round: int
    confidence_avg: float | None = None
    confidence_max: float | None = None

    def fraction_below(self, value: float) -> float:
        """Estimated fraction of nodes with attribute at or below ``value``."""
        return float(self.estimate.evaluate(np.asarray([float(value)]))[0])

    def quantile(self, q: float) -> float:
        """Estimated attribute value at quantile ``q``."""
        return float(self.estimate.quantile(q)[0])

    def rank_of(self, value: float) -> float:
        """A value's estimated global rank in ``[0, 1]`` (= ``F(value)``).

        This subsumes the decentralised-ranking protocols the paper cites
        [8–10]: unlike a bare rank, the full estimate also reveals skew,
        clusters and outliers.
        """
        return self.fraction_below(value)

    def slice_of(self, value: float, slices: int = 10) -> int:
        """Which of ``slices`` equal-population slices holds ``value``.

        Slice 0 collects the lowest attribute values (ordered slicing à la
        Jelasity & Kermarrec); the top slice is ``slices - 1``.
        """
        if slices < 1:
            raise EstimationError("need at least one slice")
        rank = self.rank_of(value)
        return min(int(rank * slices), slices - 1)

    def interquantile_ratio(self, low: float = 0.5, high: float = 0.9) -> float:
        """Dispersion measure ``Q(high)/Q(low)`` (imbalance detection)."""
        denominator = self.quantile(low)
        if denominator == 0:
            raise EstimationError("lower quantile is zero; ratio undefined")
        return self.quantile(high) / denominator


class DistributionMonitor:
    """Continuously estimate an attribute distribution over a simulated system.

    Args:
        workload: the attribute values of the population (and of churn
            replacements).
        n_nodes: population size.
        config: protocol parameters (a sensible default is built when
            omitted: λ=50, 25-round instances, MinMax refinement, 20
            verification points, a fresh instance every ~R rounds).
        seed: determinism seed.
        overlay: overlay kind for :func:`build_engine`.
        degree: overlay view/link size.
        churn_rate: replacement churn per round (0 disables).
        controller: optional accuracy controller; when set, the monitor
            retunes ``λ`` from the nodes' own confidence estimates after
            each completed instance.
    """

    def __init__(
        self,
        workload: AttributeWorkload,
        n_nodes: int,
        config: Adam2Config | None = None,
        seed: int = 0,
        overlay: str = "sampling",
        degree: int = 20,
        churn_rate: float = 0.0,
        controller: AccuracyController | None = None,
    ):
        self.config = config or Adam2Config(
            points=50,
            rounds_per_instance=25,
            instance_frequency=50,
            selection="minmax",
            verification_points=20,
        )
        if controller is not None and self.config.verification_points < 1:
            raise SimulationError("an accuracy controller needs verification points")
        root = make_rng(seed)
        self.protocol = Adam2Protocol(self.config, scheduler="probabilistic")
        churn = (
            ReplacementChurn(churn_rate, workload, spawn(root)) if churn_rate > 0 else None
        )
        self.engine = build_engine(
            workload, n_nodes, [self.protocol], root, overlay=overlay, degree=degree, churn=churn
        )
        self.controller = controller
        self._completed_seen = 0

    # ------------------------------------------------------------------

    def advance(self, rounds: int) -> None:
        """Run ``rounds`` gossip rounds (instances start themselves)."""
        for _ in range(rounds):
            self.engine.run_round()
            if self.controller is not None:
                self._maybe_retune()

    def advance_until_estimate(self, max_rounds: int = 2_000) -> int:
        """Run until a majority of nodes hold an estimate; returns rounds."""
        for executed in range(max_rounds):
            if self.coverage() > 0.5:
                return executed
            self.engine.run_round()
        if self.coverage() > 0.5:
            return max_rounds
        raise SimulationError(f"no majority estimate within {max_rounds} rounds")

    def coverage(self) -> float:
        """Fraction of live nodes currently holding an estimate."""
        nodes = self.protocol.adam2_nodes(self.engine)
        if not nodes:
            raise SimulationError("system is empty")
        return sum(1 for n in nodes if n.current_estimate is not None) / len(nodes)

    def snapshot(self) -> DistributionView:
        """The current consensus view (from an arbitrary informed node)."""
        for adam2 in self.protocol.adam2_nodes(self.engine):
            if adam2.current_estimate is not None:
                confidence = adam2.last_confidence
                return DistributionView(
                    estimate=adam2.current_estimate,
                    system_size=adam2.current_estimate.system_size,
                    round=self.engine.round,
                    confidence_avg=confidence.est_average if confidence else None,
                    confidence_max=confidence.est_maximum if confidence else None,
                )
        raise EstimationError("no node holds an estimate yet; call advance() first")

    def true_values(self) -> np.ndarray:
        """Ground-truth attribute values (for evaluation only)."""
        return self.engine.attribute_values()

    # ------------------------------------------------------------------

    def _maybe_retune(self) -> None:
        # Decide once per completed instance, not once per round.
        completed = max(
            (len(a.completed) for a in self.protocol.adam2_nodes(self.engine)),
            default=0,
        )
        if completed <= self._completed_seen:
            return
        self._completed_seen = completed
        try:
            view = self.snapshot()
        except EstimationError:
            return
        if view.confidence_avg is None:
            return
        target_metric = (
            view.confidence_avg
            if self.config.verification_target == "average"
            else view.confidence_max
        )
        decision = self.controller.decide(self.config, float(target_metric))
        if decision.action == "grow":
            self.config = decision.config
            self.protocol.config = decision.config
            for adam2 in self.protocol.adam2_nodes(self.engine):
                adam2.config = decision.config
