"""Gossip-based peer sampling (Newscast-style).

Implements the view-exchange overlay of Jelasity et al. [TOCS 2007] that
the paper relies on for "robust connectivity" under churn: each node keeps
a bounded partial view of ``(node_id, age)`` descriptors; once per round
every node exchanges its view (plus a fresh descriptor of itself) with a
random view member, and both keep the freshest ``capacity`` descriptors.
Dead peers age out of views automatically, which is what makes the
neighbour supply churn-tolerant.
"""

from __future__ import annotations

import numpy as np

from repro.errors import OverlayError
from repro.overlay.base import Overlay
from repro.overlay.view import NodeDescriptor, PartialView

__all__ = ["PeerSamplingOverlay"]


class PeerSamplingOverlay(Overlay):
    """Newscast-style peer-sampling overlay."""

    def __init__(self, node_ids: list[int], capacity: int, rng: np.random.Generator):
        if capacity < 1:
            raise OverlayError("view capacity must be >= 1")
        ids = list(node_ids)
        if len(ids) < 2:
            raise OverlayError("peer sampling needs at least 2 nodes")
        self.capacity = capacity
        self._views: dict[int, PartialView] = {}
        arr = np.asarray(ids)
        for node_id in ids:
            view = PartialView(capacity)
            k = min(capacity, len(ids) - 1)
            chosen: set[int] = set()
            while len(chosen) < k:
                picks = arr[rng.integers(0, arr.size, size=k - len(chosen))]
                chosen.update(int(p) for p in picks if int(p) != node_id)
            for peer in chosen:
                view.insert(NodeDescriptor(peer, age=0))
            self._views[node_id] = view

    def node_ids(self) -> list[int]:
        return list(self._views)

    def neighbours(self, node_id: int) -> list[int]:
        try:
            return self._views[node_id].node_ids()
        except KeyError:
            raise OverlayError(f"unknown node {node_id}") from None

    def select_neighbour(self, node_id: int, rng: np.random.Generator) -> int | None:
        try:
            view = self._views[node_id]
        except KeyError:
            raise OverlayError(f"unknown node {node_id}") from None
        live = [i for i in view.node_ids() if i in self._views]
        if not live:
            return None
        return live[int(rng.integers(0, len(live)))]

    def add_node(self, node_id: int, bootstrap: list[int] | None = None) -> None:
        view = PartialView(self.capacity)
        contacts = [i for i in (bootstrap or []) if i in self._views]
        if not contacts:
            contacts = list(self._views)[: self.capacity]
        for peer in contacts[: self.capacity]:
            view.insert(NodeDescriptor(peer, age=0))
        self._views[node_id] = view
        # Announce the joiner to its contacts so it becomes reachable.
        # Force the insertion: a saturated view of fresh descriptors
        # would otherwise silently drop the newcomer.
        for peer in contacts[: self.capacity]:
            peer_view = self._views[peer]
            if len(peer_view) >= peer_view.capacity and node_id not in peer_view:
                peer_view.remove(peer_view.oldest().node_id)
            peer_view.insert(NodeDescriptor(node_id, age=0))

    def remove_node(self, node_id: int) -> None:
        self._views.pop(node_id, None)

    def step(self, rng: np.random.Generator) -> None:
        """One round of Newscast view exchanges."""
        ids = list(self._views)
        order = rng.permutation(len(ids))
        for idx in order:
            node_id = ids[int(idx)]
            view = self._views.get(node_id)
            if view is None:
                continue
            view.age_all()
            if len(view) == 0:
                continue
            # Pick from the raw view (not live-filtered): contacting a
            # departed peer is how its descriptor is detected as dead and
            # dropped — the gossip analogue of a connection timeout.
            peer_id = view.random(rng).node_id
            peer_view = self._views.get(peer_id)
            if peer_view is None:
                view.remove(peer_id)
                continue
            mine = view.descriptors() + [NodeDescriptor(node_id, age=0)]
            theirs = peer_view.descriptors() + [NodeDescriptor(peer_id, age=0)]
            view.merge(theirs, exclude=node_id)
            peer_view.merge(mine, exclude=peer_id)

    def in_degree_distribution(self) -> dict[int, int]:
        """How many views each node appears in (overlay health metric)."""
        counts: dict[int, int] = {i: 0 for i in self._views}
        for view in self._views.values():
            for peer in view.node_ids():
                if peer in counts:
                    counts[peer] += 1
        return counts
