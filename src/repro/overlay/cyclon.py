"""Cyclon-style shuffle overlay (Voulgaris, Gavidia & van Steen).

An alternative peer-sampling service to the Newscast variant in
:mod:`repro.overlay.peer_sampling`: instead of merging whole views, each
round a node picks its *oldest* view member and **swaps a small random
subset** of descriptors with it, always replacing the slot used to reach
the partner with a fresh descriptor of itself.  Compared to Newscast,
Cyclon produces a more uniform in-degree distribution (closer to a random
regular graph) and ages out dead peers deterministically via the
oldest-first contact rule — properties the paper's substrate reference
[11] highlights.
"""

from __future__ import annotations

import numpy as np

from repro.errors import OverlayError
from repro.overlay.base import Overlay
from repro.overlay.view import NodeDescriptor, PartialView

__all__ = ["CyclonOverlay"]


class CyclonOverlay(Overlay):
    """Cyclon shuffle peer sampling.

    Args:
        node_ids: initial population.
        capacity: view size per node.
        shuffle_size: descriptors exchanged per shuffle (``<= capacity``).
        rng: generator used to wire the initial views.
    """

    def __init__(
        self,
        node_ids: list[int],
        capacity: int,
        rng: np.random.Generator,
        shuffle_size: int | None = None,
    ):
        if capacity < 1:
            raise OverlayError("view capacity must be >= 1")
        ids = list(node_ids)
        if len(ids) < 2:
            raise OverlayError("cyclon needs at least 2 nodes")
        self.capacity = capacity
        self.shuffle_size = min(shuffle_size or max(capacity // 2, 1), capacity)
        if self.shuffle_size < 1:
            raise OverlayError("shuffle size must be >= 1")
        self._views: dict[int, PartialView] = {}
        arr = np.asarray(ids)
        for node_id in ids:
            view = PartialView(capacity)
            k = min(capacity, len(ids) - 1)
            chosen: set[int] = set()
            while len(chosen) < k:
                picks = arr[rng.integers(0, arr.size, size=k - len(chosen))]
                chosen.update(int(p) for p in picks if int(p) != node_id)
            for peer in chosen:
                view.insert(NodeDescriptor(peer, age=int(rng.integers(0, 3))))
            self._views[node_id] = view

    # ------------------------------------------------------------------
    # Overlay interface
    # ------------------------------------------------------------------

    def node_ids(self) -> list[int]:
        return list(self._views)

    def neighbours(self, node_id: int) -> list[int]:
        try:
            return self._views[node_id].node_ids()
        except KeyError:
            raise OverlayError(f"unknown node {node_id}") from None

    def select_neighbour(self, node_id: int, rng: np.random.Generator) -> int | None:
        try:
            view = self._views[node_id]
        except KeyError:
            raise OverlayError(f"unknown node {node_id}") from None
        live = [i for i in view.node_ids() if i in self._views]
        if not live:
            return None
        return live[int(rng.integers(0, len(live)))]

    def add_node(self, node_id: int, bootstrap: list[int] | None = None) -> None:
        view = PartialView(self.capacity)
        contacts = [i for i in (bootstrap or []) if i in self._views]
        if not contacts:
            contacts = list(self._views)[: self.capacity]
        for peer in contacts[: self.capacity]:
            view.insert(NodeDescriptor(peer, age=0))
            peer_view = self._views[peer]
            if len(peer_view) >= peer_view.capacity and node_id not in peer_view:
                peer_view.remove(peer_view.oldest().node_id)
            peer_view.insert(NodeDescriptor(node_id, age=0))
        self._views[node_id] = view

    def remove_node(self, node_id: int) -> None:
        self._views.pop(node_id, None)

    # ------------------------------------------------------------------
    # Shuffle round
    # ------------------------------------------------------------------

    def step(self, rng: np.random.Generator) -> None:
        """One Cyclon round: every node shuffles with its oldest member."""
        ids = list(self._views)
        order = rng.permutation(len(ids))
        for idx in order:
            node_id = ids[int(idx)]
            view = self._views.get(node_id)
            if view is None or len(view) == 0:
                continue
            view.age_all()
            partner = view.oldest()
            view.remove(partner.node_id)  # the slot is recycled either way
            partner_view = self._views.get(partner.node_id)
            if partner_view is None:
                continue  # dead peer detected and dropped
            self._shuffle(node_id, view, partner.node_id, partner_view, rng)

    def _shuffle(
        self,
        node_id: int,
        view: PartialView,
        partner_id: int,
        partner_view: PartialView,
        rng: np.random.Generator,
    ) -> None:
        mine = view.descriptors()
        rng.shuffle(mine)
        sent = mine[: self.shuffle_size - 1] + [NodeDescriptor(node_id, age=0)]
        theirs_all = partner_view.descriptors()
        rng.shuffle(theirs_all)
        received = theirs_all[: self.shuffle_size]
        # Partner replaces what it sent with what it received (minus
        # itself), bounded by capacity; same for the initiator.
        for d in received:
            partner_view.remove(d.node_id)
        partner_view.merge(sent, exclude=partner_id)
        for d in sent:
            view.remove(d.node_id)
        view.merge(received, exclude=node_id)

    def in_degree_distribution(self) -> dict[int, int]:
        """How many views each node appears in (uniformity metric)."""
        counts: dict[int, int] = {i: 0 for i in self._views}
        for view in self._views.values():
            for peer in view.node_ids():
                if peer in counts:
                    counts[peer] += 1
        return counts
