"""Bootstrap helpers for nodes joining an existing overlay."""

from __future__ import annotations

import numpy as np

from repro.errors import OverlayError

__all__ = ["bootstrap_ids"]


def bootstrap_ids(live_ids: list[int], count: int, rng: np.random.Generator) -> list[int]:
    """Pick ``count`` distinct live peers as initial contacts for a joiner.

    Models the out-of-band bootstrap (tracker / well-known peers) that any
    real deployment needs before the peer-sampling service takes over.
    """
    if not live_ids:
        raise OverlayError("cannot bootstrap into an empty system")
    k = min(count, len(live_ids))
    idx = rng.choice(len(live_ids), size=k, replace=False)
    return [live_ids[int(i)] for i in idx]
