"""Static random overlays.

:class:`RandomGraphOverlay` gives each node ``degree`` outgoing links to
uniformly random peers (PeerSim's classic ``WireKOut`` topology); links to
departed peers are repaired lazily on selection.  :class:`FullMeshOverlay`
models an idealised uniform peer-sampling service where any live peer may
be selected — the common analytical assumption for gossip averaging.
"""

from __future__ import annotations

import numpy as np

from repro.errors import OverlayError
from repro.overlay.base import Overlay
from repro.rngs import derive

__all__ = ["RandomGraphOverlay", "FullMeshOverlay"]


class FullMeshOverlay(Overlay):
    """Every live node can gossip with every other live node."""

    def __init__(self, node_ids: list[int] | None = None):
        self._ids: dict[int, None] = dict.fromkeys(node_ids or [])
        self._id_list: list[int] | None = None

    def node_ids(self) -> list[int]:
        return list(self._ids)

    def neighbours(self, node_id: int) -> list[int]:
        if node_id not in self._ids:
            raise OverlayError(f"unknown node {node_id}")
        return [i for i in self._ids if i != node_id]

    def select_neighbour(self, node_id: int, rng: np.random.Generator) -> int | None:
        if node_id not in self._ids:
            raise OverlayError(f"unknown node {node_id}")
        n = len(self._ids)
        if n < 2:
            return None
        if self._id_list is None or len(self._id_list) != n:
            self._id_list = list(self._ids)
        # Rejection sampling: a couple of draws on average.
        while True:
            pick = self._id_list[int(rng.integers(0, n))]
            if pick != node_id and pick in self._ids:
                return pick
            if pick not in self._ids:
                self._id_list = list(self._ids)
                n = len(self._id_list)
                if n < 2:
                    return None

    def add_node(self, node_id: int, bootstrap: list[int] | None = None) -> None:
        self._ids[node_id] = None
        self._id_list = None

    def remove_node(self, node_id: int) -> None:
        self._ids.pop(node_id, None)
        self._id_list = None


class RandomGraphOverlay(Overlay):
    """Each node keeps ``degree`` random outgoing links.

    Dead links are repaired on demand by rewiring to a random live peer,
    which approximates what a peer-sampling service provides without
    simulating its message traffic (use
    :class:`repro.overlay.peer_sampling.PeerSamplingOverlay` to simulate
    it explicitly).
    """

    def __init__(self, node_ids: list[int], degree: int, rng: np.random.Generator):
        if degree < 1:
            raise OverlayError("degree must be >= 1")
        self.degree = degree
        self._links: dict[int, list[int]] = {}
        ids = list(node_ids)
        if len(ids) < 2:
            raise OverlayError("random graph needs at least 2 nodes")
        arr = np.asarray(ids)
        for node_id in ids:
            self._links[node_id] = self._wire(node_id, arr, rng)

    def _wire(self, node_id: int, pool: np.ndarray, rng: np.random.Generator) -> list[int]:
        k = min(self.degree, pool.size - 1)
        chosen: set[int] = set()
        while len(chosen) < k:
            picks = pool[rng.integers(0, pool.size, size=k - len(chosen))]
            chosen.update(int(p) for p in picks if int(p) != node_id)
        return list(chosen)

    def node_ids(self) -> list[int]:
        return list(self._links)

    def neighbours(self, node_id: int) -> list[int]:
        try:
            return list(self._links[node_id])
        except KeyError:
            raise OverlayError(f"unknown node {node_id}") from None

    def select_neighbour(self, node_id: int, rng: np.random.Generator) -> int | None:
        try:
            links = self._links[node_id]
        except KeyError:
            raise OverlayError(f"unknown node {node_id}") from None
        if len(self._links) < 2:
            return None
        for _ in range(len(links)):
            if not links:
                break
            idx = int(rng.integers(0, len(links)))
            peer = links[idx]
            if peer in self._links and peer != node_id:
                return peer
            # Dead link: rewire to a random live peer.
            links[idx] = self._random_live(node_id, rng)
            if links[idx] != node_id and links[idx] in self._links:
                return links[idx]
        return self._random_live(node_id, rng)

    def _random_live(self, node_id: int, rng: np.random.Generator) -> int:
        ids = list(self._links)
        while True:
            peer = ids[int(rng.integers(0, len(ids)))]
            if peer != node_id:
                return peer

    def add_node(self, node_id: int, bootstrap: list[int] | None = None) -> None:
        pool = np.asarray(bootstrap if bootstrap else list(self._links))
        if pool.size == 0:
            raise OverlayError("cannot add a node to an empty overlay without bootstrap")
        # Derive the wiring stream from the node id alone: `hash()` is
        # salted per process, which would make late-join wiring (and so
        # whole runs) irreproducible across processes.
        rng = derive(node_id, "wire")
        self._links[node_id] = self._wire(node_id, pool, rng)

    def remove_node(self, node_id: int) -> None:
        self._links.pop(node_id, None)
