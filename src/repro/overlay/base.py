"""Overlay interface used by the simulation engine."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["Overlay"]


class Overlay(ABC):
    """Membership substrate: who can gossip with whom.

    The engine calls :meth:`select_neighbour` once per node per round to
    pick a gossip partner, and :meth:`add_node` / :meth:`remove_node`
    under churn.  :meth:`step` lets dynamic overlays (peer sampling)
    refresh their views once per round.
    """

    @abstractmethod
    def node_ids(self) -> list[int]:
        """All nodes currently in the overlay."""

    @abstractmethod
    def neighbours(self, node_id: int) -> list[int]:
        """The current neighbour set of ``node_id``."""

    @abstractmethod
    def select_neighbour(self, node_id: int, rng: np.random.Generator) -> int | None:
        """A gossip partner for ``node_id``, or ``None`` if isolated."""

    @abstractmethod
    def add_node(self, node_id: int, bootstrap: list[int] | None = None) -> None:
        """Join a node, wiring it to ``bootstrap`` contacts (or random)."""

    @abstractmethod
    def remove_node(self, node_id: int) -> None:
        """Remove a node (its descriptors may linger in dynamic views)."""

    def step(self, rng: np.random.Generator) -> None:
        """One maintenance round (no-op for static overlays)."""

    def __len__(self) -> int:
        return len(self.node_ids())
