"""Partial views and node descriptors for gossip peer sampling."""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import OverlayError

__all__ = ["NodeDescriptor", "PartialView"]


@dataclass(frozen=True, slots=True)
class NodeDescriptor:
    """An entry in a peer's partial view.

    Attributes:
        node_id: the described peer.
        age: gossip rounds since the descriptor was created at its
            subject; fresher descriptors are more likely to describe a
            live peer.
    """

    node_id: int
    age: int = 0

    def aged(self, by: int = 1) -> "NodeDescriptor":
        return replace(self, age=self.age + by)


class PartialView:
    """A bounded set of node descriptors, at most one per peer.

    Implements the view operations of gossip-based peer sampling:
    ageing, insertion with freshest-wins deduplication, and truncation to
    capacity keeping the freshest descriptors.
    """

    def __init__(self, capacity: int, descriptors: list[NodeDescriptor] | None = None):
        if capacity < 1:
            raise OverlayError("view capacity must be >= 1")
        self.capacity = capacity
        self._by_id: dict[int, NodeDescriptor] = {}
        for d in descriptors or []:
            self.insert(d)

    def __len__(self) -> int:
        return len(self._by_id)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._by_id

    def node_ids(self) -> list[int]:
        return list(self._by_id)

    def descriptors(self) -> list[NodeDescriptor]:
        return list(self._by_id.values())

    def insert(self, descriptor: NodeDescriptor) -> None:
        """Insert keeping the freshest descriptor per peer."""
        existing = self._by_id.get(descriptor.node_id)
        if existing is None or descriptor.age < existing.age:
            self._by_id[descriptor.node_id] = descriptor
        self._truncate()

    def merge(self, others: list[NodeDescriptor], exclude: int | None = None) -> None:
        """Merge a received descriptor list (excluding self), truncate."""
        for d in others:
            if exclude is not None and d.node_id == exclude:
                continue
            existing = self._by_id.get(d.node_id)
            if existing is None or d.age < existing.age:
                self._by_id[d.node_id] = d
        self._truncate()

    def age_all(self, by: int = 1) -> None:
        for node_id, d in self._by_id.items():
            self._by_id[node_id] = d.aged(by)

    def remove(self, node_id: int) -> None:
        self._by_id.pop(node_id, None)

    def oldest(self) -> NodeDescriptor:
        if not self._by_id:
            raise OverlayError("view is empty")
        return max(self._by_id.values(), key=lambda d: d.age)

    def random(self, rng: np.random.Generator) -> NodeDescriptor:
        if not self._by_id:
            raise OverlayError("view is empty")
        ids = list(self._by_id)
        return self._by_id[ids[int(rng.integers(0, len(ids)))]]

    def _truncate(self) -> None:
        if len(self._by_id) <= self.capacity:
            return
        # Freshest first; ties broken by a node-id hash so that newly
        # merged descriptors are not systematically discarded (a stable
        # sort would always keep the incumbent and fresh descriptors
        # would never propagate through saturated views).
        keep = sorted(
            self._by_id.values(), key=lambda d: (d.age, (d.node_id * 2654435761) % 997)
        )[: self.capacity]
        self._by_id = {d.node_id: d for d in keep}
