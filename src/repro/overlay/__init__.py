"""P2P overlay substrate.

The paper assumes peers are "organised in a P2P overlay where each peer
maintains links to a small number of randomly selected nodes", maintained
by a gossip-based peer-sampling service [Jelasity et al., TOCS 2007].
This package provides that substrate: a static random-graph overlay (the
standard simulation shortcut) and a Newscast-style dynamic peer-sampling
overlay whose views are refreshed by gossip and which tolerates churn.
"""

from repro.overlay.view import NodeDescriptor, PartialView
from repro.overlay.base import Overlay
from repro.overlay.random_graph import RandomGraphOverlay, FullMeshOverlay
from repro.overlay.cyclon import CyclonOverlay
from repro.overlay.peer_sampling import PeerSamplingOverlay
from repro.overlay.bootstrap import bootstrap_ids

__all__ = [
    "NodeDescriptor",
    "PartialView",
    "Overlay",
    "RandomGraphOverlay",
    "FullMeshOverlay",
    "PeerSamplingOverlay",
    "CyclonOverlay",
    "bootstrap_ids",
]
