"""Durable persistence for the estimation service (:mod:`repro.service`).

The paper's service story is an *always-available* estimate; an
in-memory :class:`~repro.service.store.EstimateStore` dies with its
process and a restarted service would serve nothing until a full
refinement cycle completed.  This package closes that gap:

* :mod:`repro.persist.codec` — a struct-packed snapshot codec in the
  style of the query-frame codec (:mod:`repro.net.frames`): explicit
  lengths, strict validation, raw float64 arrays so a decoded polyline
  is bit-identical to the published one.
* :mod:`repro.persist.log` — an append-only, CRC-checksummed segment
  log with a versioned header, torn-tail truncation, corrupt-record
  skipping, segment rotation and an fsync policy knob.
* :mod:`repro.persist.retention` — time-faded retention in the spirit
  of P2PTFHH (arXiv:1812.01450): the newest K versions at full
  fidelity, older generations thinned exponentially, pinned versions
  exempt.
* :mod:`repro.persist.store` — :class:`DurableEstimateStore`, the
  write-behind wrapper that subscribes to a live store's snapshot feed
  and recovers the full usable history on startup.

Everything here is deterministic given the snapshots it is fed: the
package opens files, never sockets, and reads no clocks outside
:func:`repro.obs.wall_clock` (the ADM008 fence applies — durable-file
primitives such as ``os.fsync`` are allowed *only* here).
"""

from repro.persist.codec import decode_snapshot, encode_snapshot
from repro.persist.log import RecoveredLog, SnapshotLog
from repro.persist.retention import RetentionPolicy
from repro.persist.store import DurableEstimateStore

__all__ = [
    "DurableEstimateStore",
    "RecoveredLog",
    "RetentionPolicy",
    "SnapshotLog",
    "decode_snapshot",
    "encode_snapshot",
]
