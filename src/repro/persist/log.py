"""The append-only snapshot log: CRC-checksummed records in segments.

On disk a log is a directory of segment files named
``segment-<16 hex digits>.a2sl``.  Every segment starts with a 6-byte
header (magic ``b"A2SL"``, format version, fsync-policy-independent) and
then carries length-prefixed records in the framing style of
:mod:`repro.net.frames`::

    segment := <4s magic "A2SL"> <B version> <B reserved> record*
    record  := <2s magic "AR"> <B kind> <B reserved> <I payload length>
               <I crc32(payload)> <payload>

Record kinds: ``snapshot`` (payload is one
:func:`repro.persist.codec.encode_snapshot` blob) and ``restart``
(payload is one little-endian u64 — the cumulative restart count, so
compaction can fold a marker trail into one record).

**Recovery invariants** (tested byte-by-byte in
``tests/persist/test_log.py``):

* a *torn tail* — a record whose header or payload runs past EOF, as a
  crash mid-write leaves behind — is truncated: everything before it is
  recovered, the tail is discarded and the byte count reported;
* a record whose payload fails its CRC (bit corruption) is *skipped*
  and counted; scanning resumes at the announced record boundary, and
  if that boundary does not hold a valid record magic the remainder of
  the segment is treated as torn (a corrupted length cannot be trusted
  to resynchronise);
* recovery never raises for corruption — only for an unusable
  directory or an alien file format — so a crashed service can always
  restart on whatever prefix survived.

Durability knob (``fsync``): ``"always"`` fsyncs after every record
(safe against power loss, slowest), ``"rotate"`` fsyncs on segment
rotation and close (the default — safe against process crashes, which
leave the page cache intact), ``"never"`` leaves flushing to the OS.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import BinaryIO, Iterator

from repro.errors import PersistError
from repro.persist.codec import decode_snapshot, encode_snapshot
from repro.service.store import EstimateSnapshot

__all__ = ["RecoveredLog", "SnapshotLog"]

SEGMENT_MAGIC = b"A2SL"
SEGMENT_VERSION = 1
SEGMENT_HEADER = struct.Struct("<4sBB")

RECORD_MAGIC = b"AR"
RECORD_HEADER = struct.Struct("<2sBBII")  # magic, kind, reserved, length, crc32

KIND_SNAPSHOT = 1
KIND_RESTART = 2
_KINDS = frozenset({KIND_SNAPSHOT, KIND_RESTART})

_RESTART_PAYLOAD = struct.Struct("<Q")

_FSYNC_POLICIES = ("always", "rotate", "never")

#: hard ceiling on one record's payload; a corrupted length field can
#: never make recovery allocate unbounded buffers
MAX_RECORD_BYTES = 64 << 20

_SEGMENT_SUFFIX = ".a2sl"
_SEGMENT_PREFIX = "segment-"


@dataclass
class RecoveredLog:
    """What :meth:`SnapshotLog.recover` salvaged from disk.

    Attributes:
        snapshots: every decodable snapshot record, in log order
            (deduplicated by version, last write wins).
        restarts: cumulative restart count (max over restart markers).
        corrupt_records: records skipped for CRC/decode failure.
        truncated_bytes: torn-tail bytes discarded across segments.
        segments: segment files scanned.
    """

    snapshots: list[EstimateSnapshot] = field(default_factory=list)
    restarts: int = 0
    corrupt_records: int = 0
    truncated_bytes: int = 0
    segments: int = 0


class SnapshotLog:
    """An append-only snapshot log rooted at one directory.

    Args:
        root: log directory; created (with parents) when missing.
        fsync: durability policy — ``"always"`` / ``"rotate"`` /
            ``"never"`` (see the module docstring).
        max_segment_bytes: rotation threshold; a record that would push
            the open segment past this size goes into a fresh segment.
    """

    def __init__(
        self,
        root: str | os.PathLike[str],
        *,
        fsync: str = "rotate",
        max_segment_bytes: int = 4 << 20,
    ) -> None:
        if fsync not in _FSYNC_POLICIES:
            raise PersistError(
                f"unknown fsync policy {fsync!r}; supported: "
                + ", ".join(_FSYNC_POLICIES)
            )
        if max_segment_bytes < SEGMENT_HEADER.size + RECORD_HEADER.size:
            raise PersistError(
                f"max_segment_bytes {max_segment_bytes} cannot fit one record"
            )
        self.root = Path(root)
        self.fsync = fsync
        self.max_segment_bytes = max_segment_bytes
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise PersistError(f"cannot create log directory {self.root}: {exc}") from exc
        if not self.root.is_dir():
            raise PersistError(f"log root {self.root} is not a directory")
        self._handle: BinaryIO | None = None
        self._open_path: Path | None = None
        self._open_size = 0
        self._next_segment = self._highest_segment_index() + 1

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------

    def append_snapshot(self, snapshot: EstimateSnapshot) -> int:
        """Append one snapshot record; returns the bytes written."""
        return self._append(KIND_SNAPSHOT, encode_snapshot(snapshot))

    def append_restart(self, count: int) -> int:
        """Append a restart marker carrying the cumulative count."""
        if count < 0:
            raise PersistError(f"restart count {count} must be >= 0")
        return self._append(KIND_RESTART, _RESTART_PAYLOAD.pack(count))

    def _append(self, kind: int, payload: bytes) -> int:
        if len(payload) > MAX_RECORD_BYTES:
            raise PersistError(
                f"record payload of {len(payload)} bytes exceeds the "
                f"{MAX_RECORD_BYTES}-byte record budget"
            )
        record = RECORD_HEADER.pack(
            RECORD_MAGIC, kind, 0, len(payload), zlib.crc32(payload)
        ) + payload
        handle = self._writable(len(record))
        try:
            handle.write(record)
            handle.flush()
            if self.fsync == "always":
                os.fsync(handle.fileno())
        except OSError as exc:
            raise PersistError(f"cannot append to {self._open_path}: {exc}") from exc
        self._open_size += len(record)
        return len(record)

    def _writable(self, incoming: int) -> BinaryIO:
        if (
            self._handle is not None
            and self._open_size + incoming > self.max_segment_bytes
        ):
            self._rotate()
        if self._handle is None:
            self._open_segment()
        assert self._handle is not None
        return self._handle

    def _open_segment(self) -> None:
        path = self.root / (
            f"{_SEGMENT_PREFIX}{self._next_segment:016x}{_SEGMENT_SUFFIX}"
        )
        self._next_segment += 1
        try:
            handle = open(path, "xb")
            handle.write(SEGMENT_HEADER.pack(SEGMENT_MAGIC, SEGMENT_VERSION, 0))
            handle.flush()
        except OSError as exc:
            raise PersistError(f"cannot open segment {path}: {exc}") from exc
        self._handle = handle
        self._open_path = path
        self._open_size = SEGMENT_HEADER.size

    def _rotate(self) -> None:
        self._close_open_segment(sync=self.fsync in ("always", "rotate"))

    def _close_open_segment(self, *, sync: bool) -> None:
        if self._handle is None:
            return
        try:
            self._handle.flush()
            if sync:
                os.fsync(self._handle.fileno())
        except OSError:
            pass
        finally:
            self._handle.close()
            self._handle = None
            self._open_path = None
            self._open_size = 0

    def close(self) -> None:
        """Flush (and per policy fsync) the open segment and release it."""
        self._close_open_segment(sync=self.fsync in ("always", "rotate"))

    def __enter__(self) -> "SnapshotLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def segment_paths(self) -> list[Path]:
        """Segment files in append order."""
        return sorted(
            p for p in self.root.iterdir()
            if p.name.startswith(_SEGMENT_PREFIX)
            and p.name.endswith(_SEGMENT_SUFFIX)
        )

    def size_bytes(self) -> int:
        """Total on-disk size of every segment."""
        return sum(p.stat().st_size for p in self.segment_paths())

    def _highest_segment_index(self) -> int:
        highest = 0
        for path in self.segment_paths():
            stem = path.name[len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)]
            try:
                highest = max(highest, int(stem, 16))
            except ValueError:
                raise PersistError(
                    f"alien file {path.name!r} in log directory {self.root}"
                ) from None
        return highest

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def recover(self, *, truncate_torn_tail: bool = True) -> RecoveredLog:
        """Scan every segment; salvage all usable records.

        With ``truncate_torn_tail`` (the default) the torn bytes at the
        end of the final segment are physically truncated, so subsequent
        appends start at a clean record boundary.  Must be called before
        the first append (the writer owns the tail afterwards).
        """
        if self._handle is not None:
            if truncate_torn_tail:
                raise PersistError(
                    "recovery with tail truncation must run before the "
                    "first append (the writer owns the tail)"
                )
            # A read-only scan under a live writer is fine once the
            # buffered bytes are visible to the reader below.
            try:
                self._handle.flush()
            except OSError as exc:
                raise PersistError(f"cannot flush {self._open_path}: {exc}") from exc
        result = RecoveredLog()
        by_version: dict[int, EstimateSnapshot] = {}
        order: list[int] = []
        paths = self.segment_paths()
        result.segments = len(paths)
        for index, path in enumerate(paths):
            is_last = index == len(paths) - 1
            keep_bytes = self._scan_segment(path, result, by_version, order)
            if keep_bytes is not None and truncate_torn_tail and is_last:
                self._truncate(path, keep_bytes)
        result.snapshots = [by_version[v] for v in order]
        return result

    def _scan_segment(
        self,
        path: Path,
        result: RecoveredLog,
        by_version: dict[int, EstimateSnapshot],
        order: list[int],
    ) -> int | None:
        """Scan one segment; returns the clean prefix length if torn."""
        try:
            data = path.read_bytes()
        except OSError as exc:
            raise PersistError(f"cannot read segment {path}: {exc}") from exc
        if len(data) < SEGMENT_HEADER.size:
            result.truncated_bytes += len(data)
            return 0
        magic, version, _reserved = SEGMENT_HEADER.unpack_from(data, 0)
        if magic != SEGMENT_MAGIC:
            raise PersistError(f"{path} is not a snapshot segment (magic {magic!r})")
        if version != SEGMENT_VERSION:
            raise PersistError(
                f"{path} speaks segment version {version} (speak {SEGMENT_VERSION})"
            )
        offset = SEGMENT_HEADER.size
        while offset < len(data):
            advance = self._scan_record(data, offset, result, by_version, order)
            if advance is None:
                # torn or unrecoverable tail: everything from here is lost
                result.truncated_bytes += len(data) - offset
                return offset
            offset += advance
        return None

    def _scan_record(
        self,
        data: bytes,
        offset: int,
        result: RecoveredLog,
        by_version: dict[int, EstimateSnapshot],
        order: list[int],
    ) -> int | None:
        """One record at ``offset``; returns its full size, or None if torn."""
        if len(data) < offset + RECORD_HEADER.size:
            return None  # torn inside the record header
        magic, kind, _reserved, length, crc = RECORD_HEADER.unpack_from(data, offset)
        if magic != RECORD_MAGIC or kind not in _KINDS or length > MAX_RECORD_BYTES:
            # A bad header means the previous record's announced length
            # lied (or the header itself is corrupt): the boundary is
            # untrustworthy, so the rest of the segment is torn.
            return None
        start = offset + RECORD_HEADER.size
        end = start + length
        if end > len(data):
            return None  # torn inside the payload
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            # Bit corruption within one record: skip it, keep scanning at
            # the announced boundary (validated by the next header check).
            result.corrupt_records += 1
            return RECORD_HEADER.size + length
        if kind == KIND_RESTART:
            if length == _RESTART_PAYLOAD.size:
                (count,) = _RESTART_PAYLOAD.unpack(payload)
                result.restarts = max(result.restarts, int(count))
            else:
                result.corrupt_records += 1
            return RECORD_HEADER.size + length
        try:
            snapshot = decode_snapshot(payload)
        except PersistError:
            result.corrupt_records += 1
            return RECORD_HEADER.size + length
        if snapshot.version not in by_version:
            order.append(snapshot.version)
        by_version[snapshot.version] = snapshot
        return RECORD_HEADER.size + length

    @staticmethod
    def _truncate(path: Path, keep_bytes: int) -> None:
        try:
            with open(path, "r+b") as handle:
                handle.truncate(keep_bytes)
                handle.flush()
                os.fsync(handle.fileno())
        except OSError as exc:
            raise PersistError(f"cannot truncate torn tail of {path}: {exc}") from exc

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------

    def compact(
        self,
        keep_versions: set[int],
        *,
        restarts: int,
    ) -> int:
        """Rewrite *sealed* segments keeping only ``keep_versions``.

        The open segment (if any) is sealed first, so compaction always
        operates on immutable files.  Retained snapshots are rewritten
        in their original order into fresh segments, followed by one
        restart marker carrying ``restarts``; each rewritten segment
        replaces its sources atomically (temp file + ``os.replace``),
        and source segments are removed only after the replacement is
        durable.  Returns the number of snapshot records dropped.

        Duplicated delivery on a crash mid-compaction is harmless: log
        consumers deduplicate by version
        (:meth:`~repro.service.store.EstimateStore.adopt` is idempotent).
        """
        self._close_open_segment(sync=self.fsync in ("always", "rotate"))
        recovered = self.recover()
        keep = [s for s in recovered.snapshots if s.version in keep_versions]
        dropped = len(recovered.snapshots) - len(keep)
        restarts = max(restarts, recovered.restarts)

        old_paths = self.segment_paths()
        new_path = self.root / (
            f"{_SEGMENT_PREFIX}{self._next_segment:016x}{_SEGMENT_SUFFIX}"
        )
        self._next_segment += 1
        tmp_path = new_path.with_suffix(".tmp")
        try:
            with open(tmp_path, "wb") as handle:
                handle.write(SEGMENT_HEADER.pack(SEGMENT_MAGIC, SEGMENT_VERSION, 0))
                for snapshot in keep:
                    payload = encode_snapshot(snapshot)
                    handle.write(RECORD_HEADER.pack(
                        RECORD_MAGIC, KIND_SNAPSHOT, 0,
                        len(payload), zlib.crc32(payload),
                    ) + payload)
                marker = _RESTART_PAYLOAD.pack(restarts)
                handle.write(RECORD_HEADER.pack(
                    RECORD_MAGIC, KIND_RESTART, 0,
                    len(marker), zlib.crc32(marker),
                ) + marker)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, new_path)
        except OSError as exc:
            raise PersistError(f"compaction into {new_path} failed: {exc}") from exc
        finally:
            if tmp_path.exists():  # pragma: no cover - failure cleanup
                tmp_path.unlink()
        for path in old_paths:
            try:
                path.unlink()
            except OSError as exc:
                raise PersistError(f"cannot drop sealed segment {path}: {exc}") from exc
        return dropped

    # ------------------------------------------------------------------
    # Iteration (diagnostics)
    # ------------------------------------------------------------------

    def __iter__(self) -> Iterator[EstimateSnapshot]:
        """Recovered snapshots, log order (fresh scan per call)."""
        return iter(self.recover(truncate_torn_tail=False).snapshots)
