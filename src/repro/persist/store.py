"""The write-behind durable wrapper over a live ``EstimateStore``.

:class:`DurableEstimateStore` subscribes to an
:class:`~repro.service.store.EstimateStore`'s snapshot feed — the same
feed the multi-worker serving pool replicates from — and appends every
published snapshot to a :class:`~repro.persist.log.SnapshotLog`.  On
construction it *recovers*: every usable snapshot on disk is adopted
back into the in-memory store (adoption is idempotent and re-orders by
version), a restart marker is appended, and the service can answer its
first query instantly with the last durably published estimate.

Persistence is write-behind on the *publish* path: queries never touch
the log, and a publish costs one codec encode plus one buffered append
(plus an fsync under the ``"always"`` policy).  Periodically — every
``compact_every`` appended snapshots — the time-faded
:class:`~repro.persist.retention.RetentionPolicy` is applied and the
sealed segments rewritten; versions pinned in the wrapped store are
exempt from thinning.

The wrapper never constructs or mutates snapshots itself (ADM011 is
enforced on this module like any other): it moves immutable snapshots
between the log and the store.
"""

from __future__ import annotations

import threading
from typing import Callable

from repro.errors import PersistError
from repro.obs import NULL_HUB, ObserverHub, wall_clock
from repro.persist.log import SnapshotLog
from repro.persist.retention import RetentionPolicy
from repro.service.store import EstimateSnapshot, EstimateStore

__all__ = ["DurableEstimateStore"]


class DurableEstimateStore:
    """Durability for one live store: recover on start, log every publish.

    Args:
        store: the live store the scheduler publishes into.
        log: the snapshot log to recover from and write behind to.
        retention: time-faded compaction policy.
        compact_every: appended snapshots between compaction passes;
            ``0`` disables automatic compaction.
        hub: observability hub for the ``persist_*`` counters/gauges.
        clock: recovery-time clock (injectable for deterministic tests).
    """

    def __init__(
        self,
        store: EstimateStore,
        log: SnapshotLog,
        *,
        retention: RetentionPolicy | None = None,
        compact_every: int = 64,
        hub: ObserverHub = NULL_HUB,
        clock: Callable[[], float] = wall_clock,
    ) -> None:
        if compact_every < 0:
            raise PersistError("compact_every must be >= 0")
        self.store = store
        self.log = log
        self.retention = retention if retention is not None else RetentionPolicy()
        self.compact_every = compact_every
        self.hub = hub
        self._clock = clock
        self._lock = threading.Lock()
        self._since_compaction = 0
        self._write_errors = 0

        started = self._clock()
        recovered = log.recover()
        for snapshot in recovered.snapshots:
            store.adopt(snapshot)
        self.restarts = recovered.restarts + 1
        log.append_restart(self.restarts)
        self.recovered_snapshots = len(recovered.snapshots)
        self.corrupt_records = recovered.corrupt_records
        self.truncated_bytes = recovered.truncated_bytes
        self.recovery_s = float(self._clock() - started)

        metrics = hub.metrics
        metrics.counter("persist_snapshots_recovered_total").inc(
            self.recovered_snapshots
        )
        metrics.counter("persist_records_corrupt_total").inc(self.corrupt_records)
        metrics.counter("persist_bytes_truncated_total").inc(self.truncated_bytes)
        metrics.counter("persist_restarts_total").inc()
        metrics.gauge("persist_recovery_s").set(self.recovery_s)
        metrics.gauge("persist_segments").set(float(len(log.segment_paths())))

        store.subscribe(self._on_publish)

    # ------------------------------------------------------------------
    # The write-behind path
    # ------------------------------------------------------------------

    def _on_publish(self, snapshot: EstimateSnapshot) -> None:
        """Store subscriber: append one published snapshot to the log.

        A failing disk must not take the serving path down with it —
        the error is counted and the service keeps publishing in-memory
        (durability degrades, availability does not).
        """
        metrics = self.hub.metrics
        with self._lock:
            try:
                written = self.log.append_snapshot(snapshot)
            except PersistError:
                self._write_errors += 1
                metrics.counter("persist_write_errors_total").inc()
                return
            self._since_compaction += 1
            due = (
                self.compact_every > 0
                and self._since_compaction >= self.compact_every
            )
        metrics.counter("persist_snapshots_written_total").inc()
        metrics.counter("persist_bytes_written_total").inc(written)
        if due:
            self.compact()

    def compact(self) -> int:
        """Apply the retention policy now; returns snapshots dropped."""
        with self._lock:
            keep = self.retention.retained(
                self._logged_versions(), self.store.pinned()
            )
            dropped = self.log.compact(keep, restarts=self.restarts)
            self._since_compaction = 0
        metrics = self.hub.metrics
        metrics.counter("persist_compactions_total").inc()
        metrics.counter("persist_snapshots_retired_total").inc(dropped)
        metrics.gauge("persist_segments").set(
            float(len(self.log.segment_paths()))
        )
        return dropped

    def _logged_versions(self) -> list[int]:
        return [snapshot.version for snapshot in self.log]

    # ------------------------------------------------------------------
    # Lifecycle / introspection
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Detach from the store feed and seal the log."""
        self.store.unsubscribe(self._on_publish)
        with self._lock:
            self.log.close()

    def __enter__(self) -> "DurableEstimateStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def write_errors(self) -> int:
        """Appends that failed (durability degraded, serving intact)."""
        with self._lock:
            return self._write_errors

    def info(self) -> dict[str, object]:
        """JSON-serialisable persistence status for ``/status`` surfaces."""
        return {
            "root": str(self.log.root),
            "fsync": self.log.fsync,
            "restarts": self.restarts,
            "recovered_snapshots": self.recovered_snapshots,
            "recovery_s": self.recovery_s,
            "corrupt_records": self.corrupt_records,
            "truncated_bytes": self.truncated_bytes,
            "write_errors": self.write_errors,
            "segments": len(self.log.segment_paths()),
            "size_bytes": self.log.size_bytes(),
            "retention": {
                "keep_last": self.retention.keep_last,
                "base": self.retention.base,
            },
        }
