"""The snapshot payload codec: one EstimateSnapshot <-> one byte blob.

Mirrors the framing discipline of :mod:`repro.net.frames` — struct-packed
little-endian fields, explicit lengths, strict validation, a version
byte bumped on any incompatible change — but for durable storage rather
than the wire.  The CDF arrays are stored as raw float64 bytes
(``ndarray.tobytes()``), so a decoded estimate reproduces the published
polyline *bit-identically*: :class:`~repro.core.cdf.EstimatedCDF`
re-sorts thresholds with a stable sort and the stored arrays are already
in sorted order, making construction a no-op permutation.

Payload layout (all little-endian)::

    <B payload version> <B flags> <q version> <q published_tick>
    <q n_nodes> <I instances> <I rounds> <H backend length> <backend utf8>
    <I points> <thresholds float64[points]> <fractions float64[points]>
    <d minimum> <d maximum>
    [<d system_size>] [<d size_estimate>] [<2d confidence>]
    [<d published_at>] [<d divergence>]

Optional trailing fields are present iff their flag bit is set;
``restarted`` is itself a flag bit.  Decoding validates every length and
raises :class:`~repro.errors.PersistError` on any truncation, unknown
version, unknown flag, or trailing bytes — a half-parsed snapshot never
escapes.  Integrity against *bit corruption* is the log's job (each
record carries a CRC32, :mod:`repro.persist.log`); the codec's job is to
never crash and never mis-parse structurally broken input.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.core.cdf import EstimatedCDF
from repro.errors import PersistError
from repro.service.store import EstimateSnapshot

__all__ = ["PAYLOAD_VERSION", "decode_snapshot", "encode_snapshot"]

#: snapshot payload format version; bumped on incompatible layout change
PAYLOAD_VERSION = 1

_FIXED = struct.Struct("<BBqqqII")  # payload version, flags, version, tick, n_nodes, instances, rounds
_BACKEND_LEN = struct.Struct("<H")
_POINTS = struct.Struct("<I")
_F64 = struct.Struct("<d")
_2F64 = struct.Struct("<dd")

_HAS_SYSTEM_SIZE = 0x01
_HAS_SIZE_ESTIMATE = 0x02
_HAS_CONFIDENCE = 0x04
_HAS_PUBLISHED_AT = 0x08
_HAS_DIVERGENCE = 0x10
_RESTARTED = 0x20

_KNOWN_FLAGS = (
    _HAS_SYSTEM_SIZE | _HAS_SIZE_ESTIMATE | _HAS_CONFIDENCE
    | _HAS_PUBLISHED_AT | _HAS_DIVERGENCE | _RESTARTED
)

#: interpolation points a record may carry (far above any real config)
_MAX_POINTS = 1 << 20


def encode_snapshot(snapshot: EstimateSnapshot) -> bytes:
    """One snapshot as a self-contained byte blob."""
    estimate = snapshot.estimate
    thresholds = np.ascontiguousarray(estimate.thresholds, dtype=np.float64)
    fractions = np.ascontiguousarray(estimate.fractions, dtype=np.float64)
    if thresholds.shape != fractions.shape or thresholds.ndim != 1:
        raise PersistError(
            f"snapshot v{snapshot.version} has mismatched CDF arrays "
            f"({thresholds.shape} thresholds, {fractions.shape} fractions)"
        )
    backend = snapshot.backend.encode("utf-8")
    if len(backend) > 0xFFFF:
        raise PersistError(f"backend name of {len(backend)} bytes is implausible")

    flags = 0
    tail = b""
    if estimate.system_size is not None:
        flags |= _HAS_SYSTEM_SIZE
        tail += _F64.pack(float(estimate.system_size))
    if snapshot.size_estimate is not None:
        flags |= _HAS_SIZE_ESTIMATE
        tail += _F64.pack(float(snapshot.size_estimate))
    if snapshot.confidence is not None:
        flags |= _HAS_CONFIDENCE
        tail += _2F64.pack(float(snapshot.confidence[0]), float(snapshot.confidence[1]))
    if snapshot.published_at is not None:
        flags |= _HAS_PUBLISHED_AT
        tail += _F64.pack(float(snapshot.published_at))
    if snapshot.divergence is not None:
        flags |= _HAS_DIVERGENCE
        tail += _F64.pack(float(snapshot.divergence))
    if snapshot.restarted:
        flags |= _RESTARTED

    return b"".join((
        _FIXED.pack(
            PAYLOAD_VERSION, flags, snapshot.version, snapshot.published_tick,
            snapshot.n_nodes, snapshot.instances, snapshot.rounds,
        ),
        _BACKEND_LEN.pack(len(backend)), backend,
        _POINTS.pack(int(thresholds.size)),
        thresholds.tobytes(), fractions.tobytes(),
        _2F64.pack(estimate.minimum, estimate.maximum),
        tail,
    ))


def decode_snapshot(payload: bytes) -> EstimateSnapshot:
    """The inverse of :func:`encode_snapshot`; strict on every byte."""
    if len(payload) < _FIXED.size:
        raise PersistError(
            f"snapshot payload of {len(payload)} bytes is truncated "
            f"inside the fixed header"
        )
    (payload_version, flags, version, tick, n_nodes,
     instances, rounds) = _FIXED.unpack_from(payload, 0)
    if payload_version != PAYLOAD_VERSION:
        raise PersistError(
            f"unsupported snapshot payload version {payload_version} "
            f"(speak {PAYLOAD_VERSION})"
        )
    if flags & ~_KNOWN_FLAGS:
        raise PersistError(f"unknown snapshot flags 0x{flags:02x}")
    if version < 1:
        raise PersistError(f"snapshot payload carries version {version} < 1")
    offset = _FIXED.size

    if len(payload) < offset + _BACKEND_LEN.size:
        raise PersistError("snapshot payload truncated before the backend name")
    (backend_len,) = _BACKEND_LEN.unpack_from(payload, offset)
    offset += _BACKEND_LEN.size
    if len(payload) < offset + backend_len:
        raise PersistError("snapshot payload truncated inside the backend name")
    try:
        backend = payload[offset : offset + backend_len].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise PersistError(f"snapshot backend name is not UTF-8: {exc}") from exc
    offset += backend_len

    if len(payload) < offset + _POINTS.size:
        raise PersistError("snapshot payload truncated before the point count")
    (points,) = _POINTS.unpack_from(payload, offset)
    offset += _POINTS.size
    if points > _MAX_POINTS:
        raise PersistError(f"snapshot announces {points} interpolation points")
    array_bytes = points * _F64.size
    if len(payload) < offset + 2 * array_bytes + _2F64.size:
        raise PersistError("snapshot payload truncated inside the CDF arrays")
    thresholds = np.frombuffer(
        payload, dtype="<f8", count=points, offset=offset
    ).copy()
    offset += array_bytes
    fractions = np.frombuffer(
        payload, dtype="<f8", count=points, offset=offset
    ).copy()
    offset += array_bytes
    minimum, maximum = _2F64.unpack_from(payload, offset)
    offset += _2F64.size

    system_size, offset = _optional_f64(payload, offset, flags, _HAS_SYSTEM_SIZE)
    size_estimate, offset = _optional_f64(payload, offset, flags, _HAS_SIZE_ESTIMATE)
    confidence: tuple[float, float] | None = None
    if flags & _HAS_CONFIDENCE:
        if len(payload) < offset + _2F64.size:
            raise PersistError("snapshot payload truncated inside the confidence pair")
        confidence = _2F64.unpack_from(payload, offset)
        offset += _2F64.size
    published_at, offset = _optional_f64(payload, offset, flags, _HAS_PUBLISHED_AT)
    divergence, offset = _optional_f64(payload, offset, flags, _HAS_DIVERGENCE)

    if offset != len(payload):
        raise PersistError(
            f"{len(payload) - offset} trailing bytes after snapshot payload"
        )
    try:
        estimate = EstimatedCDF(
            thresholds, fractions, minimum, maximum, system_size=system_size
        )
    except Exception as exc:  # structurally valid bytes, semantically broken CDF
        raise PersistError(f"snapshot payload holds an unusable estimate: {exc}") from exc
    return EstimateSnapshot(
        version=int(version),
        estimate=estimate,
        backend=backend,
        n_nodes=int(n_nodes),
        instances=int(instances),
        rounds=int(rounds),
        size_estimate=size_estimate,
        confidence=confidence,
        published_tick=int(tick),
        published_at=published_at,
        restarted=bool(flags & _RESTARTED),
        divergence=divergence,
    )


def _optional_f64(
    payload: bytes, offset: int, flags: int, bit: int
) -> tuple[float | None, int]:
    if not flags & bit:
        return None, offset
    if len(payload) < offset + _F64.size:
        raise PersistError("snapshot payload truncated inside an optional field")
    (value,) = _F64.unpack_from(payload, offset)
    return float(value), offset + _F64.size
