"""Time-faded snapshot retention: recent at full fidelity, old thinned.

The policy follows the time-faded sketch discipline of P2PTFHH
(arXiv:1812.01450): information is not hard-dropped at a horizon but
*decayed* — the newest ``keep_last`` versions are all retained, and
older versions are thinned exponentially by generation, so a query
"CDF as of cycle k" stays answerable at ever coarser granularity while
disk cost stays ``O(keep_last + log(age))``.

Generations are age buckets measured in *versions behind the newest*:
generation 0 is ages ``[0, keep_last)`` (kept in full); generation
``g >= 1`` covers ages ``[keep_last * base**(g-1), keep_last * base**g)``
and keeps only its single newest member.  Pinned versions are always
retained regardless of age.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Collection, Sequence

from repro.errors import PersistError

__all__ = ["RetentionPolicy"]


@dataclass(frozen=True)
class RetentionPolicy:
    """Which logged versions compaction keeps.

    Attributes:
        keep_last: newest versions retained at full fidelity.
        base: exponential thinning factor for older generations
            (each generation spans ``base`` times the ages of the
            previous one and keeps one snapshot).
    """

    keep_last: int = 8
    base: int = 2

    def __post_init__(self) -> None:
        if self.keep_last < 1:
            raise PersistError("retention keep_last must be >= 1")
        if self.base < 2:
            raise PersistError("retention base must be >= 2")

    def retained(
        self, versions: Sequence[int], pinned: Collection[int] = ()
    ) -> set[int]:
        """The subset of ``versions`` the policy keeps.

        ``versions`` need not be sorted or unique; age is counted in
        *positions* behind the newest version present, so gaps left by
        earlier compactions do not accelerate decay.
        """
        ordered = sorted(set(versions), reverse=True)  # newest first
        pinned_set = set(pinned)
        keep: set[int] = {v for v in ordered if v in pinned_set}
        seen_generations: set[int] = set()
        for age, version in enumerate(ordered):
            if age < self.keep_last:
                keep.add(version)
                continue
            generation = self._generation(age)
            if generation not in seen_generations:
                # the newest member of each older generation survives
                seen_generations.add(generation)
                keep.add(version)
        return keep

    def _generation(self, age: int) -> int:
        """Generation index for an age ``>= keep_last``.

        Generation ``g`` covers ages ``[keep_last * base**(g-1),
        keep_last * base**g)``.
        """
        bound = self.keep_last * self.base
        generation = 1
        while age >= bound:
            bound *= self.base
            generation += 1
        return generation
