"""Shared type aliases and small value objects used across the package."""

from __future__ import annotations

from dataclasses import dataclass
from typing import NewType

#: Identifier of a node in the simulated system.  Node ids are stable for
#: the lifetime of a node; a churned-out node's id is never reused.
NodeId = NewType("NodeId", int)

#: Identifier of an aggregation instance.  Unique per initiating event.
InstanceId = NewType("InstanceId", int)

#: A simulation round (cycle) index, starting at 0.
Round = NewType("Round", int)


@dataclass(frozen=True, slots=True)
class Point:
    """A single CDF interpolation point ``(threshold, fraction)``.

    ``fraction`` is the (estimated) fraction of nodes whose attribute value
    is at or below ``threshold``.
    """

    threshold: float
    fraction: float

    def __post_init__(self) -> None:
        if not (self.fraction == self.fraction):  # NaN guard
            raise ValueError("fraction must not be NaN")


@dataclass(frozen=True, slots=True)
class ErrorPair:
    """The two error metrics of the paper for one CDF estimate.

    Attributes:
        maximum: Kolmogorov–Smirnov style maximum vertical distance
            (``Err_m`` in the paper).
        average: average vertical distance over the attribute domain
            (``Err_a`` in the paper).
    """

    maximum: float
    average: float

    def __iter__(self):
        yield self.maximum
        yield self.average
