"""Multi-worker serving: an SO_REUSEPORT process pool for the endpoint.

One asyncio loop saturates one core.  This module scales the query
frontend horizontally while keeping the protocol byte-identical to the
single-loop :class:`~repro.net.service_endpoint.ServiceEndpoint`:

* **reuseport mode** (the default where the platform allows it): every
  worker *process* binds its own listening socket with ``SO_REUSEPORT``
  on the shared port, and the kernel load-balances incoming connections
  across them — no user-space accept loop, no handoff.  Each worker owns
  a private :class:`~repro.service.query.QueryEngine` (with its own LRU)
  over a local :class:`~repro.service.store.EstimateStore` *replica*
  that mirrors the publisher's store through the **snapshot feed**: the
  parent subscribes to the live store and fans every published
  :class:`~repro.service.store.EstimateSnapshot` out over one queue per
  worker; workers :meth:`~repro.service.store.EstimateStore.adopt` the
  (immutable, picklable) snapshots, so every replica serves identical
  versions without any shared mutable state.
* **threads mode** (the fallback): one accept-loop thread behind a
  single listening socket hands each accepted connection to a pool of
  worker threads, each connection served by one of ``workers``
  round-robin dispatchers over the live store directly.  Same wire
  behaviour, no kernel support needed.

Control-plane ops served by a worker answer from the worker's own view:
``pin``/``unpin`` act on the replica (reuseport mode) or the live store
(threads mode); ``status`` reports the serving worker's identity so
clients can observe the kernel's balancing.

This module lives in :mod:`repro.net` because it opens sockets and
spawns serving processes — the ADM008 fence keeps everything below
:mod:`repro.service` host-independent.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import socket
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Any, Sequence

from repro.errors import CodecError, NetworkError, ServiceError
from repro.net.frames import HEADER, FrameCodec
from repro.net.service_endpoint import (
    _MAX_LINE,
    process_frame,
    process_json_line,
    serve_connection,
)
from repro.obs import NULL_HUB, ObserverHub
from repro.service.protocol import QueryDispatcher, QueryResponse
from repro.service.query import QueryEngine
from repro.service.store import EstimateSnapshot, EstimateStore

if TYPE_CHECKING:
    from multiprocessing.context import BaseContext

__all__ = ["ServiceWorkerPool", "WorkerControl", "reuseport_available"]

#: seconds the parent waits for each worker process to report ready
_READY_TIMEOUT = 20.0
#: snapshot versions a worker replica retains (pins are worker-local)
_REPLICA_HISTORY = 16


def reuseport_available() -> bool:
    """True when this platform can bind two sockets with ``SO_REUSEPORT``."""
    if not hasattr(socket, "SO_REUSEPORT"):
        return False
    try:
        first = _reuseport_socket("127.0.0.1", 0, listen=False)
    except OSError:
        return False
    try:
        port = first.getsockname()[1]
        try:
            second = _reuseport_socket("127.0.0.1", port, listen=False)
        except OSError:
            return False
        second.close()
        return True
    finally:
        first.close()


def _reuseport_socket(host: str, port: int, *, listen: bool) -> socket.socket:
    """A TCP socket bound with ``SO_REUSEPORT`` (sync helper: ADM010).

    With ``listen=False`` the socket only *reserves* the port: a bound
    but non-listening TCP socket receives no connections, so the parent
    can hold an ephemeral port open while the workers bind their own
    listening sockets to it.
    """
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, port))
        if listen:
            sock.listen(128)
    except BaseException:
        sock.close()
        raise
    return sock


def _plain_listener(host: str, port: int) -> socket.socket:
    """The fallback listening socket (sync helper: ADM010)."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, port))
        sock.listen(128)
    except BaseException:
        sock.close()
        raise
    return sock


class WorkerControl:
    """The control plane a serving worker exposes (its own store view)."""

    def __init__(
        self,
        store: EstimateStore,
        engine: QueryEngine,
        *,
        worker_id: int,
        mode: str,
    ) -> None:
        self._store = store
        self._engine = engine
        self.worker_id = worker_id
        self.mode = mode

    def status(self) -> dict[str, object]:
        try:
            newest = self._store.latest()
            latest: dict[str, object] | None = newest.meta()
            backend: str | None = newest.backend
            n_nodes: int | None = newest.n_nodes
        except ServiceError:
            latest = backend = n_nodes = None
        return {
            "backend": backend,
            "n_nodes": n_nodes,
            "latest": latest,
            "versions": self._store.versions(),
            "pinned": self._store.pinned(),
            "cache": self._engine.cache_info(),
            "worker": self.worker_id,
            "worker_pid": os.getpid(),
            "serving_mode": self.mode,
        }

    def history(self) -> list[dict[str, object]]:
        return self._store.history()

    def pin(self, version: int) -> EstimateSnapshot:
        return self._store.pin(version)

    def unpin(self, version: int) -> None:
        self._store.unpin(version)


# ----------------------------------------------------------------------
# Worker process body (reuseport mode)
# ----------------------------------------------------------------------

def _worker_main(
    host: str,
    port: int,
    worker_id: int,
    initial: Sequence[EstimateSnapshot],
    feed: "multiprocessing.queues.Queue[EstimateSnapshot | None]",
    ready: "multiprocessing.queues.Queue[tuple[int, int | str]]",
) -> None:
    """One serving process: replica store + engine + reuseport listener."""
    try:
        store = EstimateStore(max_history=_REPLICA_HISTORY)
        for snapshot in initial:
            store.adopt(snapshot)
        engine = QueryEngine(store)
        control = WorkerControl(
            store, engine, worker_id=worker_id, mode="reuseport"
        )
        dispatcher = QueryDispatcher(engine, control)
        sock = _reuseport_socket(host, port, listen=True)
    except BaseException as exc:  # noqa: BLE001 - reported to the parent
        ready.put((worker_id, f"{type(exc).__name__}: {exc}"))
        return
    ready.put((worker_id, os.getpid()))
    try:
        asyncio.run(_worker_serve(sock, store, dispatcher, feed))
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass


async def _worker_serve(
    sock: socket.socket,
    store: EstimateStore,
    dispatcher: QueryDispatcher,
    feed: "multiprocessing.queues.Queue[EstimateSnapshot | None]",
) -> None:
    """Serve connections until the feed delivers its ``None`` sentinel."""
    loop = asyncio.get_running_loop()
    stop: asyncio.Future[None] = loop.create_future()
    codec = FrameCodec()

    def pump() -> None:
        # Blocking queue reads belong in a thread; adoption is
        # thread-safe, so snapshots go straight into the replica and
        # only the stop signal crosses into the loop.
        while True:
            snapshot = feed.get()
            if snapshot is None:
                break
            store.adopt(snapshot)
        try:
            loop.call_soon_threadsafe(_resolve_stop, stop)
        except RuntimeError:  # pragma: no cover - loop already gone
            pass

    thread = threading.Thread(target=pump, name="snapshot-feed", daemon=True)
    thread.start()

    async def on_connection(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        await serve_connection(reader, writer, dispatcher, codec)

    server = await asyncio.start_server(on_connection, sock=sock)
    async with server:
        await stop


def _resolve_stop(stop: "asyncio.Future[None]") -> None:
    if not stop.done():
        stop.set_result(None)


# ----------------------------------------------------------------------
# Threaded fallback connection body
# ----------------------------------------------------------------------

def _read_exact(rfile: Any, n: int) -> bytes | None:
    data = rfile.read(n)
    if data is None or len(data) != n:
        return None
    return bytes(data)


def _serve_connection_sync(
    conn: socket.socket, dispatcher: QueryDispatcher, codec: FrameCodec
) -> None:
    """The blocking twin of ``serve_connection`` for the thread fallback."""
    binary = False
    try:
        with conn, conn.makefile("rb") as rfile:
            while True:
                try:
                    if binary:
                        header = _read_exact(rfile, HEADER.size)
                        if header is None:
                            break
                        kind, length = codec.unpack_header(header)
                        payload = _read_exact(rfile, length)
                        if payload is None:
                            break
                        out = process_frame(dispatcher, codec, kind, payload)
                    else:
                        line = rfile.readline(_MAX_LINE + 2)
                        if not line:
                            break
                        out, upgraded = process_json_line(
                            dispatcher, codec, line
                        )
                        binary = binary or upgraded
                except CodecError as exc:
                    conn.sendall(codec.encode_response(
                        QueryResponse.failure("bad_request", str(exc))
                    ))
                    break
                conn.sendall(out)
    except (ConnectionError, OSError, ValueError):
        # Disconnected mid-request (or the makefile buffer died under a
        # closed socket) — nothing left to answer.
        pass


# ----------------------------------------------------------------------
# The pool
# ----------------------------------------------------------------------

class ServiceWorkerPool:
    """Serves one estimate store from a pool of workers on one port.

    Args:
        store: the live publishing store (the parent's); reuseport
            workers replicate it through the snapshot feed, fallback
            threads serve it directly.
        workers: serving workers (processes or threads).
        host / port: bind address; port ``0`` picks an ephemeral port,
            readable as :attr:`port` after :meth:`start`.
        mode: ``"auto"`` (reuseport processes where available, threads
            otherwise), ``"reuseport"`` (fail hard without kernel
            support), or ``"threads"``.
        hub: observability hub for the *threads* mode dispatchers;
            worker processes trace into their own (null) hubs.
    """

    def __init__(
        self,
        store: EstimateStore,
        *,
        workers: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        mode: str = "auto",
        hub: ObserverHub = NULL_HUB,
    ) -> None:
        if workers < 1:
            raise NetworkError("need at least one worker")
        if mode not in ("auto", "reuseport", "threads"):
            raise NetworkError(
                f"unknown mode {mode!r}; supported: auto, reuseport, threads"
            )
        self.store = store
        self.workers = workers
        self.host = host
        self.hub = hub
        self._requested_port = port
        self._requested_mode = mode
        #: resolved serving mode after start(): "reuseport" | "threads"
        self.mode: str | None = None
        self.port: int | None = None
        # reuseport state
        self._placeholder: socket.socket | None = None
        self._processes: list[multiprocessing.process.BaseProcess] = []
        self._feeds: list[Any] = []
        self._fan_out_cb: Any = None
        # threads state
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._executor: ThreadPoolExecutor | None = None

    # -- lifecycle ------------------------------------------------------

    def start(self) -> None:
        if self.mode is not None:
            raise NetworkError("worker pool already started")
        mode = self._requested_mode
        if mode in ("auto", "reuseport"):
            if reuseport_available():
                try:
                    self._start_reuseport()
                    return
                except NetworkError:
                    if self._fan_out_cb is not None:
                        self.store.unsubscribe(self._fan_out_cb)
                        self._fan_out_cb = None
                    self._teardown_reuseport()
                    if mode == "reuseport":
                        raise
            elif mode == "reuseport":
                raise NetworkError(
                    "SO_REUSEPORT is not available on this platform"
                )
        self._start_threads()

    def stop(self) -> None:
        if self._fan_out_cb is not None:
            self.store.unsubscribe(self._fan_out_cb)
            self._fan_out_cb = None
        self._teardown_reuseport()
        self._teardown_threads()
        self.mode = None
        self.port = None

    def __enter__(self) -> "ServiceWorkerPool":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- reuseport mode -------------------------------------------------

    def _start_reuseport(self) -> None:
        ctx = self._mp_context()
        self._placeholder = _reuseport_socket(
            self.host, self._requested_port, listen=False
        )
        port = int(self._placeholder.getsockname()[1])
        feeds = [ctx.Queue() for _ in range(self.workers)]
        ready: Any = ctx.Queue()

        # Subscribe before snapshotting the current history: a publish
        # racing start() lands in the queues (adoption is idempotent, so
        # overlap with the initial set is harmless), never in a gap.
        def fan_out(snapshot: EstimateSnapshot) -> None:
            for feed in feeds:
                feed.put(snapshot)

        self.store.subscribe(fan_out)
        self._fan_out_cb = fan_out
        self._feeds = feeds
        initial = [self.store.get(v) for v in self.store.versions()]

        for worker_id, feed in enumerate(feeds):
            process = ctx.Process(
                target=_worker_main,
                args=(self.host, port, worker_id, initial, feed, ready),
                daemon=True,
                name=f"adam2-serve-{worker_id}",
            )
            process.start()
            self._processes.append(process)

        pending = set(range(self.workers))
        while pending:
            try:
                worker_id, outcome = ready.get(timeout=_READY_TIMEOUT)
            except Exception as exc:
                raise NetworkError(
                    f"worker(s) {sorted(pending)} never reported ready"
                ) from exc
            if isinstance(outcome, str):
                raise NetworkError(
                    f"worker {worker_id} failed to start: {outcome}"
                )
            pending.discard(worker_id)

        self.port = port
        self.mode = "reuseport"

    def _mp_context(self) -> "BaseContext":
        methods = multiprocessing.get_all_start_methods()
        # fork is cheapest and inherits nothing we rely on (all worker
        # state travels through explicit, picklable args).
        return multiprocessing.get_context(
            "fork" if "fork" in methods else methods[0]
        )

    def _teardown_reuseport(self) -> None:
        for feed in self._feeds:
            try:
                feed.put(None)
            except (OSError, ValueError):  # pragma: no cover - queue closed
                pass
        for process in self._processes:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=5.0)
        self._processes = []
        for feed in self._feeds:
            try:
                feed.close()
            except (OSError, ValueError):  # pragma: no cover
                pass
        self._feeds = []
        if self._placeholder is not None:
            self._placeholder.close()
            self._placeholder = None

    # -- threads mode ---------------------------------------------------

    def _start_threads(self) -> None:
        self._listener = _plain_listener(self.host, self._requested_port)
        self.port = int(self._listener.getsockname()[1])
        codec = FrameCodec()
        dispatchers = []
        for worker_id in range(self.workers):
            engine = QueryEngine(self.store, hub=self.hub)
            control = WorkerControl(
                self.store, engine, worker_id=worker_id, mode="threads"
            )
            dispatchers.append(QueryDispatcher(engine, control, hub=self.hub))
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="adam2-serve"
        )
        listener = self._listener
        executor = self._executor

        def accept_loop() -> None:
            turn = 0
            while True:
                try:
                    conn, _addr = listener.accept()
                except OSError:  # listener closed: shutdown
                    return
                dispatcher = dispatchers[turn % len(dispatchers)]
                turn += 1
                try:
                    executor.submit(
                        _serve_connection_sync, conn, dispatcher, codec
                    )
                except RuntimeError:  # raced shutdown
                    conn.close()
                    return

        self._accept_thread = threading.Thread(
            target=accept_loop, name="adam2-accept", daemon=True
        )
        self._accept_thread.start()
        self.mode = "threads"

    def _teardown_threads(self) -> None:
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover
                pass
            self._listener = None
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
            self._accept_thread = None
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
