"""The binary query-frame codec: length-prefixed frames for the endpoint.

The JSON-lines protocol spends most of a hot query's budget encoding and
decoding text.  This codec is the negotiated alternative: the same typed
:class:`~repro.service.protocol.QueryRequest` / ``QueryResponse`` values
packed with :mod:`struct` into compact length-prefixed frames, in the
style of the gossip datagram codec (:mod:`repro.net.codec`): a fixed
magic + version header, explicit length fields, and strict validation —
a truncated or corrupted frame raises :class:`~repro.errors.CodecError`
instead of yielding a half-parsed request.

Frame layout (all little-endian)::

    <2s magic "AQ"> <B version> <B kind> <I payload length> <payload>

Kinds: single request / single response / batch request / batch
response.  A request payload carries the registry op code
(:data:`repro.service.protocol.OPS`), optional integer id and version,
and the float64 args; a response payload carries ok/error flags, the
value or an error message, and — for control ops whose answers are
structured (``status`` / ``history``) — a JSON-encoded payload blob.
Batch payloads are a count followed by the members, which carry no ids
(batch results are positional).

Connections negotiate the codec in-band: a JSON-lines request
``{"op": "frame", "frame": "binary"}`` flips the connection to binary
frames after the (JSON) acknowledgement — see
:mod:`repro.net.service_endpoint`.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Mapping

from repro.errors import CodecError
from repro.service.protocol import (
    BATCH_CODE,
    MAX_BATCH_OPS,
    OPS,
    OPS_BY_CODE,
    BatchRequest,
    BatchResponse,
    InvalidOp,
    QueryRequest,
    QueryResponse,
)

__all__ = [
    "FRAME_MAGIC",
    "FRAME_VERSION",
    "KIND_BATCH_REQUEST",
    "KIND_BATCH_RESPONSE",
    "KIND_REQUEST",
    "KIND_RESPONSE",
    "FrameCodec",
]

#: every query frame starts with these two bytes (gossip datagrams use "A2")
FRAME_MAGIC = b"AQ"
#: frame format version; bumped on any incompatible layout change
FRAME_VERSION = 1

KIND_REQUEST = 1  #: one QueryRequest
KIND_RESPONSE = 2  #: one QueryResponse
KIND_BATCH_REQUEST = 3  #: a BatchRequest envelope
KIND_BATCH_RESPONSE = 4  #: a BatchResponse envelope

_KINDS = frozenset({KIND_REQUEST, KIND_RESPONSE, KIND_BATCH_REQUEST, KIND_BATCH_RESPONSE})

#: header: magic, version, kind, payload length
HEADER = struct.Struct("<2sBBI")

_COUNT = struct.Struct("<H")
_REQ_FIXED = struct.Struct("<BBB")  # op code, flags, arg count
_RESP_FIXED = struct.Struct("<BB")  # flags, error code
_I64 = struct.Struct("<q")  # request id / version
_F64 = struct.Struct("<d")  # args / value
_MSG_LEN = struct.Struct("<H")  # error message length
_BLOB_LEN = struct.Struct("<I")  # JSON payload blob length

# request flags
_REQ_HAS_ID = 0x01
_REQ_HAS_VERSION = 0x02

# response flags
_RESP_OK = 0x01
_RESP_HAS_ID = 0x02
_RESP_HAS_VALUE = 0x04
_RESP_HAS_VERSION = 0x08
_RESP_HAS_MESSAGE = 0x10
_RESP_HAS_JSON = 0x20

#: error class tags <-> wire codes
_ERROR_CODES = {"bad_request": 1, "unavailable": 2, "server_error": 3}
_ERROR_NAMES = {code: name for name, code in _ERROR_CODES.items()}

_U16_MAX = 2**16 - 1


class FrameCodec:
    """Encodes and decodes query frames within a length budget.

    Args:
        max_frame: hard upper bound on one frame's payload in bytes
            (default 1 MiB — a full batch of control responses fits with
            room to spare, while a corrupted length field cannot make
            the reader allocate unbounded buffers).
    """

    def __init__(self, max_frame: int = 1 << 20) -> None:
        if max_frame < HEADER.size + _REQ_FIXED.size:
            raise CodecError(f"max_frame {max_frame} cannot fit a single request")
        self.max_frame = max_frame

    # ------------------------------------------------------------------
    # Framing
    # ------------------------------------------------------------------

    def frame(self, kind: int, payload: bytes) -> bytes:
        if kind not in _KINDS:
            raise CodecError(f"unknown frame kind {kind}")
        if len(payload) > self.max_frame:
            raise CodecError(
                f"frame payload of {len(payload)} bytes exceeds the "
                f"{self.max_frame}-byte budget"
            )
        return HEADER.pack(FRAME_MAGIC, FRAME_VERSION, kind, len(payload)) + payload

    def unpack_header(self, header: bytes) -> tuple[int, int]:
        """Validate one 8-byte header; returns ``(kind, payload_length)``."""
        if len(header) != HEADER.size:
            raise CodecError(
                f"frame header is {len(header)} bytes, expected {HEADER.size}"
            )
        magic, version, kind, length = HEADER.unpack(header)
        if magic != FRAME_MAGIC:
            raise CodecError(f"bad frame magic {magic!r}")
        if version != FRAME_VERSION:
            raise CodecError(
                f"unsupported frame version {version} (speak {FRAME_VERSION})"
            )
        if kind not in _KINDS:
            raise CodecError(f"unknown frame kind {kind}")
        if length > self.max_frame:
            raise CodecError(
                f"frame announces {length} payload bytes; the budget is "
                f"{self.max_frame}"
            )
        return int(kind), int(length)

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------

    def encode_request(self, request: QueryRequest | BatchRequest) -> bytes:
        """One full frame (header + payload) for a typed request."""
        if isinstance(request, BatchRequest):
            parts = [self._encode_envelope_prefix(request.request_id, len(request.items))]
            for item in request.items:
                if isinstance(item, InvalidOp):
                    raise CodecError("cannot encode a batch holding unparseable slots")
                parts.append(self._encode_request_item(item, allow_id=False))
            return self.frame(KIND_BATCH_REQUEST, b"".join(parts))
        return self.frame(KIND_REQUEST, self._encode_request_item(request, allow_id=True))

    def _encode_request_item(self, request: QueryRequest, *, allow_id: bool) -> bytes:
        spec = OPS[request.op]
        flags = 0
        tail = b""
        if request.request_id is not None:
            if not allow_id:
                raise CodecError("batch members are positional and carry no ids")
            tail += _I64.pack(self._int_id(request.request_id))
            flags |= _REQ_HAS_ID
        if request.version is not None:
            tail += _I64.pack(int(request.version))
            flags |= _REQ_HAS_VERSION
        args = b"".join(_F64.pack(a) for a in request.args)
        return _REQ_FIXED.pack(spec.code, flags, len(request.args)) + tail + args

    def decode_request(self, kind: int, payload: bytes) -> QueryRequest | BatchRequest:
        if kind == KIND_REQUEST:
            request, offset = self._decode_request_item(payload, 0, allow_id=True)
            self._exhausted(payload, offset)
            return request
        if kind != KIND_BATCH_REQUEST:
            raise CodecError(f"frame kind {kind} is not a request")
        request_id, count, offset = self._decode_envelope_prefix(payload)
        if count == 0 or count > MAX_BATCH_OPS:
            raise CodecError(f"batch frame carries {count} ops (cap {MAX_BATCH_OPS})")
        items: list[QueryRequest | InvalidOp] = []
        for _ in range(count):
            item, offset = self._decode_request_item(payload, offset, allow_id=False)
            items.append(item)
        self._exhausted(payload, offset)
        return BatchRequest(tuple(items), request_id)

    def _decode_request_item(
        self, payload: bytes, offset: int, *, allow_id: bool
    ) -> tuple[QueryRequest, int]:
        if len(payload) < offset + _REQ_FIXED.size:
            raise CodecError("frame truncated inside a request header")
        op_code, flags, nargs = _REQ_FIXED.unpack_from(payload, offset)
        offset += _REQ_FIXED.size
        spec = OPS_BY_CODE.get(op_code)
        if spec is None or op_code == BATCH_CODE:
            raise CodecError(f"unknown request op code {op_code}")
        request_id: int | None = None
        if flags & _REQ_HAS_ID:
            if not allow_id:
                raise CodecError("batch member carries an id; results are positional")
            request_id, offset = self._read_i64(payload, offset, "request id")
        version: int | None = None
        if flags & _REQ_HAS_VERSION:
            version, offset = self._read_i64(payload, offset, "version")
        if len(payload) < offset + _F64.size * nargs:
            raise CodecError("frame truncated inside a request's arguments")
        args = tuple(
            _F64.unpack_from(payload, offset + _F64.size * i)[0] for i in range(nargs)
        )
        offset += _F64.size * nargs
        if nargs != len(spec.fields):
            raise CodecError(
                f"op {spec.wire_op!r} takes {len(spec.fields)} argument(s), "
                f"frame carries {nargs}"
            )
        try:
            request = QueryRequest(spec.wire_op, args, version, request_id)
        except Exception as exc:  # registry validation (version required, ...)
            raise CodecError(f"invalid request frame: {exc}") from exc
        return request, offset

    # ------------------------------------------------------------------
    # Responses
    # ------------------------------------------------------------------

    def encode_response(self, response: QueryResponse | BatchResponse) -> bytes:
        """One full frame (header + payload) for a typed response."""
        if isinstance(response, BatchResponse):
            parts = [
                self._encode_envelope_prefix(response.request_id, len(response.results))
            ]
            for result in response.results:
                parts.append(self._encode_response_item(result, allow_id=False))
            return self.frame(KIND_BATCH_RESPONSE, b"".join(parts))
        return self.frame(
            KIND_RESPONSE, self._encode_response_item(response, allow_id=True)
        )

    def _encode_response_item(self, response: QueryResponse, *, allow_id: bool) -> bytes:
        flags = _RESP_OK if response.ok else 0
        error_code = 0
        tail = b""
        if response.request_id is not None and allow_id:
            tail += _I64.pack(self._int_id(response.request_id))
            flags |= _RESP_HAS_ID
        if response.value is not None:
            tail += _F64.pack(float(response.value))
            flags |= _RESP_HAS_VALUE
        if response.version is not None:
            tail += _I64.pack(int(response.version))
            flags |= _RESP_HAS_VERSION
        if not response.ok:
            error_code = _ERROR_CODES.get(response.error or "server_error", 3)
            message = (response.message or "").encode("utf-8")[: _U16_MAX]
            tail += _MSG_LEN.pack(len(message)) + message
            flags |= _RESP_HAS_MESSAGE
        if response.payload is not None:
            blob = json.dumps(dict(response.payload), separators=(",", ":")).encode()
            tail += _BLOB_LEN.pack(len(blob)) + blob
            flags |= _RESP_HAS_JSON
        return _RESP_FIXED.pack(flags, error_code) + tail

    def decode_response(self, kind: int, payload: bytes) -> QueryResponse | BatchResponse:
        if kind == KIND_RESPONSE:
            response, offset = self._decode_response_item(payload, 0)
            self._exhausted(payload, offset)
            return response
        if kind != KIND_BATCH_RESPONSE:
            raise CodecError(f"frame kind {kind} is not a response")
        request_id, count, offset = self._decode_envelope_prefix(payload)
        results: list[QueryResponse] = []
        for _ in range(count):
            result, offset = self._decode_response_item(payload, offset)
            results.append(result)
        self._exhausted(payload, offset)
        return BatchResponse(tuple(results), request_id)

    def _decode_response_item(
        self, payload: bytes, offset: int
    ) -> tuple[QueryResponse, int]:
        if len(payload) < offset + _RESP_FIXED.size:
            raise CodecError("frame truncated inside a response header")
        flags, error_code = _RESP_FIXED.unpack_from(payload, offset)
        offset += _RESP_FIXED.size
        request_id: int | None = None
        if flags & _RESP_HAS_ID:
            request_id, offset = self._read_i64(payload, offset, "response id")
        value: float | None = None
        if flags & _RESP_HAS_VALUE:
            if len(payload) < offset + _F64.size:
                raise CodecError("frame truncated inside a response value")
            value = float(_F64.unpack_from(payload, offset)[0])
            offset += _F64.size
        version: int | None = None
        if flags & _RESP_HAS_VERSION:
            version, offset = self._read_i64(payload, offset, "response version")
        message: str | None = None
        if flags & _RESP_HAS_MESSAGE:
            if len(payload) < offset + _MSG_LEN.size:
                raise CodecError("frame truncated before an error message")
            (length,) = _MSG_LEN.unpack_from(payload, offset)
            offset += _MSG_LEN.size
            if len(payload) < offset + length:
                raise CodecError("frame truncated inside an error message")
            message = payload[offset : offset + length].decode("utf-8", "replace")
            offset += length
        blob: Mapping[str, Any] | None = None
        if flags & _RESP_HAS_JSON:
            if len(payload) < offset + _BLOB_LEN.size:
                raise CodecError("frame truncated before a JSON payload")
            (length,) = _BLOB_LEN.unpack_from(payload, offset)
            offset += _BLOB_LEN.size
            if len(payload) < offset + length:
                raise CodecError("frame truncated inside a JSON payload")
            try:
                decoded = json.loads(payload[offset : offset + length])
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                raise CodecError(f"malformed JSON payload in frame: {exc}") from exc
            if not isinstance(decoded, dict):
                raise CodecError("frame JSON payload is not an object")
            blob = decoded
            offset += length
        ok = bool(flags & _RESP_OK)
        if not ok:
            return (
                QueryResponse.failure(
                    _ERROR_NAMES.get(error_code, "server_error"),
                    message or "request failed",
                    request_id=request_id,
                ),
                offset,
            )
        return (
            QueryResponse(
                ok=True, value=value, version=version,
                request_id=request_id, payload=blob,
            ),
            offset,
        )

    # ------------------------------------------------------------------
    # Shared pieces
    # ------------------------------------------------------------------

    def _encode_envelope_prefix(self, request_id: int | str | None, count: int) -> bytes:
        if count == 0 or count > MAX_BATCH_OPS:
            raise CodecError(f"batch frame carries {count} ops (cap {MAX_BATCH_OPS})")
        flags = 0
        tail = b""
        if request_id is not None:
            tail = _I64.pack(self._int_id(request_id))
            flags = _REQ_HAS_ID
        return bytes((flags,)) + tail + _COUNT.pack(count)

    def _decode_envelope_prefix(self, payload: bytes) -> tuple[int | None, int, int]:
        if len(payload) < 1:
            raise CodecError("batch frame truncated before its flags")
        flags = payload[0]
        offset = 1
        request_id: int | None = None
        if flags & _REQ_HAS_ID:
            request_id, offset = self._read_i64(payload, offset, "batch id")
        if len(payload) < offset + _COUNT.size:
            raise CodecError("batch frame truncated before its count")
        (count,) = _COUNT.unpack_from(payload, offset)
        offset += _COUNT.size
        return request_id, int(count), offset

    @staticmethod
    def _int_id(request_id: int | str) -> int:
        if isinstance(request_id, bool) or not isinstance(request_id, int):
            raise CodecError(
                f"binary frames carry integer request ids only, got {request_id!r}"
            )
        return request_id

    @staticmethod
    def _read_i64(payload: bytes, offset: int, what: str) -> tuple[int, int]:
        if len(payload) < offset + _I64.size:
            raise CodecError(f"frame truncated inside {what}")
        (value,) = _I64.unpack_from(payload, offset)
        return int(value), offset + _I64.size

    @staticmethod
    def _exhausted(payload: bytes, offset: int) -> None:
        if offset != len(payload):
            raise CodecError(f"{len(payload) - offset} trailing bytes after frame payload")
