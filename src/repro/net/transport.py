"""The asyncio UDP transport: reliable-enough request/response over datagrams.

One :class:`UdpTransport` owns one UDP endpoint (one node's socket) and
implements the delivery machinery the gossip daemon builds on:

* **request/response correlation** — a push (or sample request) datagram
  carries a sender-scoped message id; the matching pull (or sample
  response) echoes it, resolving the awaiting future.
* **bounded retry** — an unanswered request is resent with exponential
  backoff plus jitter; after ``max_retries`` resends the request fails
  with :class:`~repro.errors.TransportTimeout` (the daemon records a
  peer failure).
* **duplicate suppression** — responders keep a bounded reply cache
  keyed by ``(sender, msg_id)``; a retried request is answered from the
  cache *without re-invoking the handler*, so a lost response never
  causes a double merge (at-most-once delivery for protocol effects).
* **fault injection** — an optional :class:`~repro.net.faults.FaultInjector`
  applies seeded drop/delay/reorder faults to every outgoing datagram.

The transport knows datagrams and message kinds, never protocol state:
the daemon supplies a handler that turns a decoded request into reply
payload bytes.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from typing import Protocol

import numpy as np

from repro.errors import CodecError, NetworkError, TransportTimeout
from repro.net.codec import Message, WireCodec
from repro.net.faults import FaultInjector

__all__ = ["RequestHandler", "UdpTransport"]


class RequestHandler(Protocol):
    """What the transport needs from the daemon: request -> reply bytes."""

    def handle_request(self, message: Message, codec: WireCodec) -> bytes | None:
        """Handle a decoded request; return the encoded reply (or None)."""


class UdpTransport(asyncio.DatagramProtocol):
    """One node's UDP endpoint with retries, dedup, and fault injection.

    Args:
        codec: wire codec shared by the cluster (one version, one budget).
        rng: seeded generator for retry jitter.
        handler: daemon-side request handler (may be set after
            construction, but before the first datagram arrives).
        request_timeout: seconds before the first retry of a request.
        max_retries: resend attempts after the initial send.
        backoff: multiplicative timeout growth per retry.
        retry_jitter: uniform extra fraction of the timeout added per
            attempt, desynchronising retry storms.
        dedup_size: bounded size of the duplicate-suppression reply cache.
        fault: optional outgoing fault injector (tests, smoke runs).
    """

    def __init__(
        self,
        codec: WireCodec,
        rng: np.random.Generator,
        *,
        handler: RequestHandler | None = None,
        request_timeout: float = 0.2,
        max_retries: int = 3,
        backoff: float = 1.6,
        retry_jitter: float = 0.25,
        dedup_size: int = 4096,
        fault: FaultInjector | None = None,
    ):
        if request_timeout <= 0.0:
            raise NetworkError(f"request timeout {request_timeout} must be positive")
        if max_retries < 0 or backoff < 1.0 or retry_jitter < 0.0 or dedup_size < 1:
            raise NetworkError("invalid retry/dedup parameters")
        self.codec = codec
        self.rng = rng
        self.handler = handler
        self.request_timeout = request_timeout
        self.max_retries = max_retries
        self.backoff = backoff
        self.retry_jitter = retry_jitter
        self.fault = fault
        self._dedup_size = dedup_size
        self._transport: asyncio.DatagramTransport | None = None
        self._address: tuple[str, int] | None = None
        self._pending: dict[int, asyncio.Future[Message]] = {}
        self._reply_cache: OrderedDict[tuple[int, int], bytes] = OrderedDict()
        self._next_msg_id = 0
        # -- counters (observability reads these) -----------------------
        self.messages_sent = 0
        self.bytes_sent = 0
        self.messages_received = 0
        self.retries = 0
        self.timeouts = 0
        self.duplicates_suppressed = 0
        self.decode_errors = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def open(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Bind the UDP endpoint; returns the bound ``(host, port)``."""
        if self._transport is not None:
            raise NetworkError("transport is already open")
        loop = asyncio.get_running_loop()
        transport, _ = await loop.create_datagram_endpoint(
            lambda: self, local_addr=(host, port)
        )
        self._transport = transport
        sockname = transport.get_extra_info("sockname")
        self._address = (str(sockname[0]), int(sockname[1]))
        return self._address

    @property
    def address(self) -> tuple[str, int]:
        """The bound endpoint address (only valid after :meth:`open`)."""
        if self._address is None:
            raise NetworkError("transport is not open")
        return self._address

    def close(self) -> None:
        """Close the socket and fail every pending request."""
        if self._transport is not None:
            self._transport.close()
            self._transport = None
        for future in self._pending.values():
            if not future.done():
                future.set_exception(TransportTimeout("transport closed"))
                # The requester may already be cancelled (daemon crash /
                # shutdown) and never retrieve this; mark it consumed.
                future.exception()
        self._pending.clear()

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def next_msg_id(self) -> int:
        """A fresh sender-scoped message id."""
        self._next_msg_id += 1
        return self._next_msg_id

    def send(self, datagram: bytes, address: tuple[str, int]) -> None:
        """Fire one datagram through the fault model (no reply tracking)."""
        if self._transport is None:
            raise NetworkError("transport is not open")
        self.messages_sent += 1
        self.bytes_sent += len(datagram)
        if self.fault is not None and self.fault.active:
            self.fault.send(self._raw_send, datagram, address)
        else:
            self._raw_send(datagram, address)

    def _raw_send(self, datagram: bytes, address: tuple[str, int]) -> None:
        if self._transport is not None:  # closed mid-delay: drop silently
            self._transport.sendto(datagram, address)

    async def request(
        self, datagram: bytes, address: tuple[str, int], msg_id: int
    ) -> Message:
        """Send a request datagram and await its correlated response.

        The *same bytes* are resent on every retry, so a responder that
        already processed the request answers retries from its reply
        cache instead of re-merging.
        """
        if msg_id in self._pending:
            raise NetworkError(f"message id {msg_id} already has a pending request")
        loop = asyncio.get_running_loop()
        future: asyncio.Future[Message] = loop.create_future()
        self._pending[msg_id] = future
        timeout = self.request_timeout
        try:
            for attempt in range(self.max_retries + 1):
                if attempt > 0:
                    self.retries += 1
                self.send(datagram, address)
                wait = timeout * (1.0 + self.retry_jitter * float(self.rng.random()))
                try:
                    return await asyncio.wait_for(asyncio.shield(future), wait)
                except asyncio.TimeoutError:
                    timeout *= self.backoff
            self.timeouts += 1
            raise TransportTimeout(
                f"no response from {address} after {self.max_retries + 1} attempts"
            )
        finally:
            pending = self._pending.pop(msg_id, None)
            if pending is not None and not pending.done():
                pending.cancel()

    # ------------------------------------------------------------------
    # asyncio.DatagramProtocol
    # ------------------------------------------------------------------

    def datagram_received(self, data: bytes, addr: tuple[str, int]) -> None:
        self.messages_received += 1
        try:
            message = self.codec.decode(data)
        except CodecError:
            # A malformed datagram from the wire is the peer's bug (or
            # noise), not ours: count it and move on — crashing the
            # event loop would turn line noise into a node failure.
            self.decode_errors += 1
            return
        if message.wants_reply:
            self._handle_request(message, addr)
        else:
            future = self._pending.get(message.msg_id)
            if future is not None and not future.done():
                future.set_result(message)
            # else: a late/duplicate response; the exchange already
            # completed (or timed out) — nothing left to resolve.

    def _handle_request(self, message: Message, addr: tuple[str, int]) -> None:
        key = (message.sender, message.msg_id)
        cached = self._reply_cache.get(key)
        if cached is not None:
            # Retried request: the handler already ran (the reply was
            # lost, not the request) — answer from the cache so protocol
            # state is touched at most once per msg_id.  An empty cache
            # entry records a request the handler answered with nothing.
            self.duplicates_suppressed += 1
            self._reply_cache.move_to_end(key)
            if cached:
                self.send(cached, addr)
            return
        if self.handler is None:
            return
        reply = self.handler.handle_request(message, self.codec)
        self._reply_cache[key] = reply if reply is not None else b""
        while len(self._reply_cache) > self._dedup_size:
            self._reply_cache.popitem(last=False)
        if reply is not None:
            self.send(reply, addr)

    def error_received(self, exc: OSError) -> None:  # pragma: no cover - host-dependent
        # ICMP errors (e.g. port unreachable after a peer crash) surface
        # here; the retry/timeout machinery already handles the loss.
        pass
