"""The ``net`` backend: the Adam2 protocol over real UDP sockets.

Adapts the localhost cluster harness to the :func:`repro.api.run`
contract so ``run(config, workload, backend="net")`` executes the same
workload/seed/config as the simulators, but over genuine datagrams with
real timers, retries, and (optionally) injected faults.  Population
sampling mirrors the async backend's generator spawn order exactly, so
for a fixed seed both backends estimate the same node population —
the basis of the simulator/network parity test.
"""

from __future__ import annotations

import asyncio
from typing import Any

import numpy as np

from repro.api.backends import Backend, RunSpec, _emit_instance_started
from repro.api.result import (
    InstanceSummary,
    RunResult,
    completed_for,
    instance_state_of,
    summarise_completed,
)
from repro.core.cdf import EmpiricalCDF, EstimatedCDF
from repro.errors import ConfigurationError
from repro.net.cluster import LocalCluster
from repro.obs.bridges import RateTracker, instance_round_sample
from repro.obs.events import InstanceCompleted
from repro.obs.observer import ObserverHub
from repro.rngs import make_rng, spawn

__all__ = ["NetBackend"]


class NetBackend(Backend):
    """The real-network runtime (in-process localhost cluster)."""

    name = "net"
    supported_options = frozenset({
        "gossip_period", "period_jitter", "neighbour_sample", "node_sample",
        "sanitize", "drain_periods", "drop_rate", "delay_range", "reorder_rate",
        "max_datagram", "max_inflight", "transport_options",
        "crash_nodes", "crash_round",
    })

    def run(self, spec: RunSpec, hub: ObserverHub) -> RunResult:
        opts = dict(spec.options)
        crash_nodes = int(opts.get("crash_nodes", 0))  # type: ignore[arg-type]
        if not 0 <= crash_nodes <= spec.n_nodes - 2:
            raise ConfigurationError(
                f"cannot crash {crash_nodes} of {spec.n_nodes} nodes"
            )
        rng = make_rng(spec.seed)
        measure_rng = spawn(rng)
        cluster_rng = spawn(rng)
        # Identical spawn order to the async backend: the third spawn
        # samples the population, so the same seed yields the same
        # attribute values on both substrates (the parity invariant).
        values = spec.workload.sample(spec.n_nodes, spawn(rng))
        return asyncio.run(self._run_cluster(
            spec, hub, opts, values, cluster_rng, measure_rng, crash_nodes
        ))

    async def _run_cluster(
        self,
        spec: RunSpec,
        hub: ObserverHub,
        opts: dict[str, object],
        values: np.ndarray,
        cluster_rng: np.random.Generator,
        measure_rng: np.random.Generator,
        crash_nodes: int,
    ) -> RunResult:
        period = float(opts.get("gossip_period", 0.05))  # type: ignore[arg-type]
        period_jitter = float(opts.get("period_jitter", 0.1))  # type: ignore[arg-type]
        delay_range = opts.get("delay_range")
        cluster = LocalCluster(
            values,
            spec.config,
            cluster_rng,
            gossip_period=period,
            period_jitter=period_jitter,
            neighbour_sample=opts.get("neighbour_sample"),  # type: ignore[arg-type]
            sanitize=opts.get("sanitize"),  # type: ignore[arg-type]
            drop_rate=float(opts.get("drop_rate", 0.0)),  # type: ignore[arg-type]
            delay_range=tuple(delay_range) if delay_range is not None else None,  # type: ignore[arg-type]
            reorder_rate=float(opts.get("reorder_rate", 0.0)),  # type: ignore[arg-type]
            max_datagram=int(opts.get("max_datagram", 8192)),  # type: ignore[arg-type]
            max_inflight=int(opts.get("max_inflight", 8)),  # type: ignore[arg-type]
            transport_options=opts.get("transport_options"),  # type: ignore[arg-type]
        )
        node_sample = int(opts.get("node_sample", 64))  # type: ignore[arg-type]
        rounds = spec.config.rounds_per_instance
        # Real per-node timers drift like the async engine's clocks, and
        # in-flight pulls land after the nominal horizon: drain periods
        # let stragglers tick their TTLs out before summarising.
        drain = int(opts.get(
            "drain_periods",
            max(3, int(np.ceil(rounds * period_jitter)) + 2),
        ))  # type: ignore[arg-type]
        crash_round = int(opts.get("crash_round", max(1, rounds // 2)))  # type: ignore[arg-type]
        probes = hub if hub.probes_enabled else None
        tracker = RateTracker()

        summaries: list[InstanceSummary] = []
        estimate: EstimatedCDF | None = None
        async with cluster:
            for index in range(spec.instances):
                instance_id = await cluster.trigger_instance()
                thresholds = _emit_instance_started(
                    hub, cluster.adam2_nodes(), instance_id, index
                )
                messages_start, bytes_start = cluster.traffic()
                mark_messages, mark_bytes = messages_start, bytes_start
                with hub.span("instance"):
                    for round_index in range(rounds + drain):
                        if (
                            crash_nodes
                            and index == 0
                            and round_index == crash_round
                        ):
                            self._crash(cluster, crash_nodes, instance_id)
                        with hub.span("round"):
                            await cluster.run_rounds(1)
                        if probes is not None:
                            messages_now, bytes_now = cluster.traffic()
                            probes.round_sample(instance_round_sample(
                                cluster.adam2_nodes(),
                                instance_id,
                                instance_index=index,
                                round_index=round_index + 1,
                                messages=messages_now - mark_messages,
                                bytes_=bytes_now - mark_bytes,
                                tracker=tracker,
                            ))
                            mark_messages, mark_bytes = messages_now, bytes_now
                        if round_index + 1 >= rounds and instance_state_of(
                            cluster.adam2_nodes(), instance_id
                        ) is None:
                            break
                    await cluster.drain()
                messages_end, bytes_end = cluster.traffic()
                summary, consensus = summarise_completed(
                    completed_for(cluster.adam2_nodes(), instance_id),
                    len(cluster.live_daemons()),
                    EmpiricalCDF(cluster.attribute_values()),
                    thresholds,
                    index,
                    messages_end - messages_start,
                    bytes_end - bytes_start,
                    node_sample,
                    measure_rng,
                )
                summaries.append(summary)
                if consensus is not None:
                    estimate = consensus
                if probes is not None:
                    probes.instance_completed(InstanceCompleted(
                        instance=index,
                        rounds=rounds,
                        reached=summary.reached,
                        err_max=summary.errors_entire.maximum,
                        err_avg=summary.errors_entire.average,
                        messages=summary.messages,
                        bytes=summary.bytes,
                    ))
            counters = cluster.counters()

        result = RunResult(
            backend=self.name,
            n_nodes=spec.n_nodes,
            seed=spec.seed,
            config=spec.config,
            instances=summaries,
            estimate=estimate,
        )
        result.extras["net_counters"] = counters
        return result

    @staticmethod
    def _crash(cluster: LocalCluster, count: int, instance_id: Any) -> None:
        """Fail-stop ``count`` live non-initiator nodes (highest ids first)."""
        initiator = instance_id[0] if isinstance(instance_id, tuple) else None
        victims = [
            daemon.node_id
            for daemon in reversed(cluster.live_daemons())
            if daemon.node_id != initiator
        ][:count]
        for node_id in victims:
            cluster.crash(node_id)


# Self-registration keeps the bootstrap cycle-free: this module only
# needs repro.api's registry functions, which are defined before the
# facade imports this module back.
from repro.api import register_backend  # noqa: E402  (registry bootstrap)

register_backend(NetBackend())
