"""The localhost cluster harness: N real node daemons, one machine.

:class:`LocalCluster` is the in-process mode — every daemon is an
asyncio task on one event loop, sharing one wire codec but each owning
its own UDP socket, generator, and fault injector.  This is the mode the
``net`` backend and CI use: real datagrams, real timers, no subprocess
overhead, and direct access to every node's protocol state for probes
and summaries.

:func:`run_process_cluster` is the one-OS-process-per-node mode: it
writes per-node JSON specs, launches ``python -m repro.net.node`` for
each, and collects the JSON summaries — full process isolation for
smoke runs at the cost of slower startup and summary-only visibility.
"""

from __future__ import annotations

import asyncio
import json
import os
import socket
import subprocess
import sys
import tempfile
import time
from typing import Any, Hashable, Sequence

import numpy as np

from repro.core.config import Adam2Config
from repro.core.node import Adam2Node, CompletedInstance
from repro.errors import NetworkError
from repro.net.codec import WireCodec
from repro.net.faults import FaultInjector
from repro.net.node import NodeDaemon
from repro.rngs import spawn

__all__ = ["LocalCluster", "completed_from_summaries", "run_process_cluster"]


class LocalCluster:
    """N in-process node daemons on localhost, fully meshed.

    Args:
        values: per-node attribute values — a 1-D array (one scalar per
            node) or a sequence of per-node arrays.
        config: protocol parameters shared by the cluster.
        rng: cluster generator; every daemon spawns its private stream
            from it (initiator choice also draws from it).
        gossip_period: seconds between each daemon's timer fires.
        period_jitter: per-period uniform jitter fraction.
        neighbour_sample: peers sampled for the value bootstrap.
        sanitize: bracket merges with the mass-conservation sanitizer.
        drop_rate / delay_range / reorder_rate: per-daemon outgoing
            fault model (seeded from the cluster generator).
        max_datagram: wire codec budget shared by the cluster.
        max_inflight: per-daemon bound on concurrent background pushes.
        transport_options: per-daemon transport keyword arguments
            (timeouts, retry policy, dedup size).
        host: interface to bind every daemon on.
    """

    def __init__(
        self,
        values: Sequence[np.ndarray] | np.ndarray,
        config: Adam2Config,
        rng: np.random.Generator,
        *,
        gossip_period: float = 0.05,
        period_jitter: float = 0.1,
        neighbour_sample: int | None = None,
        sanitize: bool | None = None,
        drop_rate: float = 0.0,
        delay_range: tuple[float, float] | None = None,
        reorder_rate: float = 0.0,
        max_datagram: int = 8192,
        max_inflight: int = 8,
        transport_options: dict[str, Any] | None = None,
        host: str = "127.0.0.1",
    ):
        per_node = [np.atleast_1d(np.asarray(v, dtype=float)) for v in values]
        if len(per_node) < 2:
            raise NetworkError("a cluster needs at least 2 nodes")
        self.rng = rng
        self.host = host
        self.codec = WireCodec(max_datagram)
        self.daemons: list[NodeDaemon] = []
        faulty = drop_rate > 0.0 or reorder_rate > 0.0 or delay_range is not None
        for node_id, node_values in enumerate(per_node):
            fault = None
            if faulty:
                fault = FaultInjector(
                    spawn(rng),
                    drop_rate=drop_rate,
                    delay_range=delay_range,
                    reorder_rate=reorder_rate,
                )
            self.daemons.append(NodeDaemon(
                node_id,
                node_values,
                config,
                spawn(rng),
                codec=self.codec,
                gossip_period=gossip_period,
                period_jitter=period_jitter,
                neighbour_sample=neighbour_sample,
                sanitize=sanitize,
                max_inflight=max_inflight,
                fault=fault,
                transport_options=transport_options,
            ))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind every daemon's socket and mesh the peer directories."""
        for daemon in self.daemons:
            await daemon.open(self.host, 0)
        addresses = {daemon.node_id: daemon.address for daemon in self.daemons}
        for daemon in self.daemons:
            for peer_id, address in addresses.items():
                if peer_id != daemon.node_id:
                    daemon.add_peer(peer_id, address)

    def close(self) -> None:
        """Close every daemon's socket and cancel in-flight work."""
        for daemon in self.daemons:
            daemon.close()

    def crash(self, node_id: int) -> None:
        """Fail-stop one node; peers only ever see timeouts."""
        self.daemons[node_id].crash()

    async def __aenter__(self) -> "LocalCluster":
        await self.start()
        return self

    async def __aexit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def live_daemons(self) -> list[NodeDaemon]:
        return [daemon for daemon in self.daemons if not daemon.crashed]

    async def run_rounds(self, rounds: int) -> None:
        """Run every live daemon's gossip timer for ``rounds`` fires."""
        await asyncio.gather(*(d.run(rounds) for d in self.live_daemons()))

    async def drain(self) -> None:
        """Wait for every live daemon's in-flight pushes to settle."""
        await asyncio.gather(*(d.drain() for d in self.live_daemons()))

    async def trigger_instance(self, node_id: int | None = None) -> Hashable:
        """Start one instance at a (default: randomly chosen) live node."""
        live = self.live_daemons()
        if not live:
            raise NetworkError("no live node to initiate an instance")
        if node_id is None:
            daemon = live[int(self.rng.integers(0, len(live)))]
        else:
            daemon = self.daemons[node_id]
            if daemon.crashed:
                raise NetworkError(f"node {node_id} has crashed")
        return await daemon.trigger_instance()

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def adam2_nodes(self) -> list[Adam2Node]:
        """Live nodes' protocol state (probes and summaries read this)."""
        return [daemon.adam2 for daemon in self.live_daemons()]

    def attribute_values(self) -> np.ndarray:
        """All live nodes' attribute values (the ground-truth population)."""
        return np.concatenate([daemon.adam2.values for daemon in self.live_daemons()])

    def traffic(self) -> tuple[int, int]:
        """Total ``(messages, bytes)`` sent by all daemons so far."""
        messages = sum(d.transport.messages_sent for d in self.daemons)
        bytes_ = sum(d.transport.bytes_sent for d in self.daemons)
        return messages, bytes_

    def counters(self) -> dict[str, int]:
        """Aggregated transport/fault counters across the cluster."""
        totals = {
            "messages_sent": 0, "bytes_sent": 0, "messages_received": 0,
            "retries": 0, "timeouts": 0, "duplicates_suppressed": 0,
            "decode_errors": 0, "push_failures": 0, "dropped": 0,
        }
        for daemon in self.daemons:
            transport = daemon.transport
            totals["messages_sent"] += transport.messages_sent
            totals["bytes_sent"] += transport.bytes_sent
            totals["messages_received"] += transport.messages_received
            totals["retries"] += transport.retries
            totals["timeouts"] += transport.timeouts
            totals["duplicates_suppressed"] += transport.duplicates_suppressed
            totals["decode_errors"] += transport.decode_errors
            totals["push_failures"] += daemon.push_failures
            if daemon.transport.fault is not None:
                totals["dropped"] += daemon.transport.fault.dropped
        return totals


# ----------------------------------------------------------------------
# Process mode
# ----------------------------------------------------------------------


def _free_udp_ports(count: int, host: str) -> list[int]:
    """Reserve ``count`` distinct free UDP ports by binding and releasing."""
    sockets: list[socket.socket] = []
    try:
        for _ in range(count):
            sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            sock.bind((host, 0))
            sockets.append(sock)
        return [int(sock.getsockname()[1]) for sock in sockets]
    finally:
        for sock in sockets:
            sock.close()


def run_process_cluster(
    values: Sequence[np.ndarray] | np.ndarray,
    config: Adam2Config,
    *,
    rounds: int,
    seed: int,
    trigger_at: dict[int, int] | None = None,
    gossip_period: float = 0.05,
    period_jitter: float = 0.1,
    neighbour_sample: int | None = None,
    sanitize: bool | None = None,
    drop_rate: float = 0.0,
    max_datagram: int = 8192,
    transport_options: dict[str, Any] | None = None,
    start_delay: float = 0.5,
    timeout: float = 120.0,
    host: str = "127.0.0.1",
) -> list[dict[str, Any]]:
    """Launch one OS process per node and collect their JSON summaries.

    ``trigger_at`` maps node id to the local round at which that node
    initiates an instance.  Raises :class:`NetworkError` when any node
    process fails or the cluster misses the ``timeout`` deadline.
    """
    per_node = [np.atleast_1d(np.asarray(v, dtype=float)) for v in values]
    if len(per_node) < 2:
        raise NetworkError("a cluster needs at least 2 nodes")
    trigger_at = trigger_at or {}
    ports = _free_udp_ports(len(per_node), host)
    with tempfile.TemporaryDirectory(prefix="adam2-net-") as workdir:
        processes: list[subprocess.Popen[bytes]] = []
        out_paths: list[str] = []
        try:
            for node_id, node_values in enumerate(per_node):
                spec = {
                    "node_id": node_id,
                    "host": host,
                    "port": ports[node_id],
                    "peers": [
                        [peer_id, host, ports[peer_id]]
                        for peer_id in range(len(per_node))
                        if peer_id != node_id
                    ],
                    "values": [float(v) for v in node_values],
                    "config": {
                        field: getattr(config, field)
                        for field in config.__dataclass_fields__
                    },
                    "seed": seed + node_id,
                    "rounds": rounds,
                    "trigger_at": trigger_at.get(node_id),
                    "gossip_period": gossip_period,
                    "period_jitter": period_jitter,
                    "neighbour_sample": neighbour_sample,
                    "sanitize": sanitize,
                    "drop_rate": drop_rate,
                    "max_datagram": max_datagram,
                    "transport_options": transport_options,
                    "start_delay": start_delay,
                }
                spec_path = os.path.join(workdir, f"node-{node_id}.json")
                out_path = os.path.join(workdir, f"result-{node_id}.json")
                with open(spec_path, "w", encoding="utf-8") as handle:
                    json.dump(spec, handle)
                out_paths.append(out_path)
                processes.append(subprocess.Popen(
                    [sys.executable, "-m", "repro.net.node",
                     "--spec", spec_path, "--out", out_path],
                    env=os.environ.copy(),
                ))
            remaining = timeout
            for process in processes:
                started = time.monotonic()
                try:
                    code = process.wait(timeout=max(remaining, 0.001))
                except subprocess.TimeoutExpired as exc:
                    raise NetworkError(
                        f"node process cluster missed the {timeout}s deadline"
                    ) from exc
                remaining -= time.monotonic() - started
                if code != 0:
                    raise NetworkError(f"a node process exited with status {code}")
        finally:
            for process in processes:
                if process.poll() is None:
                    process.kill()
                    process.wait()
        summaries = []
        for out_path in out_paths:
            with open(out_path, encoding="utf-8") as handle:
                summaries.append(json.load(handle))
        return summaries


def completed_from_summaries(
    summaries: Sequence[dict[str, Any]],
) -> dict[int, list[CompletedInstance]]:
    """Rebuild per-node completed-instance records from process summaries."""
    # Late import: repro.api's package bootstrap imports repro.net.backend
    # (which imports this module), so a module-level import here would
    # re-enter this module before LocalCluster exists.
    from repro.api.result import record_from_payload

    return {
        int(summary["node_id"]): [
            record_from_payload(entry) for entry in summary["completed"]
        ]
        for summary in summaries
    }
