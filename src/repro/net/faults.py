"""Pluggable network fault injection for the UDP transport.

Real networks drop, delay, and reorder datagrams; the deterministic
simulators sample those faults from seeded models, and the real-network
runtime must be testable under the same regimes.  A
:class:`FaultInjector` sits between the transport and its socket and
applies seeded faults to every *outgoing* datagram:

* **drop** — the datagram is silently discarded (counted);
* **delay** — delivery to the socket is deferred by a uniform sample;
* **reorder** — the datagram is held back and flushed after the next
  one, swapping their wire order.

Fault *decisions* come from a :class:`numpy.random.Generator`, so which
messages are dropped is reproducible for a fixed seed even though the
surrounding event timing is real.
"""

from __future__ import annotations

import asyncio
from typing import Callable

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["FaultInjector"]

#: a raw send callable: (datagram, address) -> None
SendFn = Callable[[bytes, tuple[str, int]], None]


class FaultInjector:
    """Applies seeded drop/delay/reorder faults to outgoing datagrams.

    Args:
        rng: seeded generator driving every fault decision.
        drop_rate: probability a datagram is discarded.
        delay_range: ``(lo, hi)`` seconds of added one-way delay, sampled
            uniformly per datagram; ``None`` sends immediately.
        reorder_rate: probability a datagram is held back and sent after
            the next one (swapping their order).
    """

    def __init__(
        self,
        rng: np.random.Generator,
        *,
        drop_rate: float = 0.0,
        delay_range: tuple[float, float] | None = None,
        reorder_rate: float = 0.0,
    ):
        if not 0.0 <= drop_rate < 1.0:
            raise ConfigurationError(f"drop rate {drop_rate} must be in [0, 1)")
        if not 0.0 <= reorder_rate < 1.0:
            raise ConfigurationError(f"reorder rate {reorder_rate} must be in [0, 1)")
        if delay_range is not None:
            lo, hi = float(delay_range[0]), float(delay_range[1])
            if lo < 0.0 or hi < lo:
                raise ConfigurationError(f"invalid delay range [{lo}, {hi}]")
            delay_range = (lo, hi)
        self.rng = rng
        self.drop_rate = drop_rate
        self.delay_range = delay_range
        self.reorder_rate = reorder_rate
        #: datagrams discarded by the drop fault
        self.dropped = 0
        #: datagrams whose order was swapped
        self.reordered = 0
        self._held: tuple[bytes, tuple[str, int]] | None = None

    @property
    def active(self) -> bool:
        """Whether any fault is configured (fast path skips inactive injectors)."""
        return (
            self.drop_rate > 0.0
            or self.reorder_rate > 0.0
            or self.delay_range is not None
        )

    def send(self, send: SendFn, datagram: bytes, address: tuple[str, int]) -> None:
        """Pass one outgoing datagram through the fault model."""
        if self.drop_rate > 0.0 and self.rng.random() < self.drop_rate:
            self.dropped += 1
            self._flush(send)
            return
        if self.reorder_rate > 0.0 and self._held is None and self.rng.random() < self.reorder_rate:
            self._held = (datagram, address)
            return
        self._dispatch(send, datagram, address)
        self._flush(send)

    def _flush(self, send: SendFn) -> None:
        if self._held is not None:
            held, self._held = self._held, None
            self.reordered += 1
            self._dispatch(send, held[0], held[1])

    def _dispatch(self, send: SendFn, datagram: bytes, address: tuple[str, int]) -> None:
        if self.delay_range is None:
            send(datagram, address)
            return
        lo, hi = self.delay_range
        delay = lo if hi == lo else float(self.rng.uniform(lo, hi))
        if delay <= 0.0:
            send(datagram, address)
        else:
            asyncio.get_running_loop().call_later(delay, send, datagram, address)
