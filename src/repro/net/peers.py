"""The peer directory: who a node daemon can gossip with, and who it trusts.

A real peer can crash, hang, or sit behind a lossy path; the directory
tracks a *failure suspicion* count per peer so the gossip timer stops
wasting periods (and retry budgets) on dead peers while still probing
them occasionally for recovery:

* every completed exchange resets the peer to healthy;
* every request timeout increments its consecutive-failure count;
* at ``suspicion_threshold`` consecutive failures the peer is
  *suspected* and excluded from normal selection;
* with probability ``probe_rate`` a selection deliberately picks a
  suspected peer anyway — the liveness probe that lets a recovered peer
  (or a healed path) rejoin the gossip.

This is deliberately simpler than a full SWIM-style failure detector:
gossip tolerates false suspicion (the peer just receives less traffic),
so cheap local evidence is enough.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import NetworkError

__all__ = ["PeerDirectory", "PeerRecord"]


@dataclass(slots=True)
class PeerRecord:
    """Directory entry for one remote peer."""

    peer_id: int
    address: tuple[str, int]
    #: consecutive failed exchanges since the last success
    failures: int = 0
    #: whether the failure count crossed the suspicion threshold
    suspected: bool = False
    #: total exchanges completed with this peer (diagnostics)
    successes: int = 0


@dataclass(slots=True)
class PeerDirectory:
    """Liveness-aware peer bookkeeping for one node daemon.

    Args:
        suspicion_threshold: consecutive failures before a peer is
            suspected.
        probe_rate: probability a selection picks a suspected peer to
            probe for recovery (when any healthy peer exists).
    """

    suspicion_threshold: int = 3
    probe_rate: float = 0.05
    _peers: dict[int, PeerRecord] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.suspicion_threshold < 1:
            raise NetworkError("suspicion threshold must be >= 1")
        if not 0.0 <= self.probe_rate <= 1.0:
            raise NetworkError(f"probe rate {self.probe_rate} must be in [0, 1]")

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def add(self, peer_id: int, address: tuple[str, int]) -> None:
        """Register (or re-address) a peer."""
        record = self._peers.get(peer_id)
        if record is None:
            self._peers[peer_id] = PeerRecord(peer_id=peer_id, address=address)
        else:
            record.address = address

    def remove(self, peer_id: int) -> None:
        """Forget a peer (administrative leave)."""
        if self._peers.pop(peer_id, None) is None:
            raise NetworkError(f"unknown peer {peer_id}")

    def get(self, peer_id: int) -> PeerRecord:
        record = self._peers.get(peer_id)
        if record is None:
            raise NetworkError(f"unknown peer {peer_id}")
        return record

    def __len__(self) -> int:
        return len(self._peers)

    def __contains__(self, peer_id: object) -> bool:
        return peer_id in self._peers

    def peer_ids(self) -> list[int]:
        """All registered peer ids (healthy and suspected), sorted."""
        return sorted(self._peers)

    def healthy_ids(self) -> list[int]:
        """Peers currently below the suspicion threshold, sorted."""
        return sorted(pid for pid, rec in self._peers.items() if not rec.suspected)

    def suspected_ids(self) -> list[int]:
        """Peers currently suspected of having failed, sorted."""
        return sorted(pid for pid, rec in self._peers.items() if rec.suspected)

    # ------------------------------------------------------------------
    # Liveness evidence
    # ------------------------------------------------------------------

    def mark_alive(self, peer_id: int) -> None:
        """A message from (or completed exchange with) the peer arrived."""
        record = self._peers.get(peer_id)
        if record is None:
            return  # evidence about a peer we no longer track
        record.failures = 0
        record.suspected = False
        record.successes += 1

    def mark_failure(self, peer_id: int) -> bool:
        """An exchange with the peer timed out; returns suspicion state."""
        record = self._peers.get(peer_id)
        if record is None:
            return False
        record.failures += 1
        if record.failures >= self.suspicion_threshold:
            record.suspected = True
        return record.suspected

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------

    def select(self, rng: np.random.Generator) -> PeerRecord | None:
        """Pick a gossip partner: uniform over healthy peers, with an
        occasional probe of a suspected one; ``None`` when empty."""
        healthy = self.healthy_ids()
        suspected = self.suspected_ids()
        if healthy and suspected and self.probe_rate > 0.0 and rng.random() < self.probe_rate:
            return self._peers[suspected[int(rng.integers(0, len(suspected)))]]
        pool = healthy or suspected
        if not pool:
            return None
        return self._peers[pool[int(rng.integers(0, len(pool)))]]

    def sample(self, count: int, rng: np.random.Generator) -> list[PeerRecord]:
        """Up to ``count`` distinct healthy peers (for bootstrap sampling)."""
        pool = self.healthy_ids() or self.suspected_ids()
        if not pool or count <= 0:
            return []
        if len(pool) > count:
            picks = rng.choice(len(pool), size=count, replace=False)
            pool = [pool[int(i)] for i in picks]
        return [self._peers[pid] for pid in pool]
