"""TCP frontend for the continuous estimation service.

The endpoint exposes a :class:`~repro.service.handle.ServiceHandle` over
a newline-delimited JSON protocol — one request object per line, one
response object per line, requests answered in order per connection:

Request::

    {"id": 7, "op": "cdf", "x": 1.5}
    {"id": 8, "op": "quantile", "q": 0.9, "version": 3}
    {"id": 9, "op": "fraction", "a": 2048, "b": 1e12}
    {"op": "batch", "ops": [{"op": "cdf", "x": 1.5}, {"op": "size"}]}
    {"op": "size"} / {"op": "status"} / {"op": "pin", "version": 3}

Response::

    {"id": 7, "ok": true, "value": 0.42, "version": 5}
    {"id": 8, "ok": false, "error": "unavailable", "message": "..."}
    {"ok": true, "results": [{"ok": true, "value": 0.42}, ...]}

``error`` is one of ``bad_request`` (caller mistake — bad JSON, unknown
op, invalid arguments), ``unavailable`` (nothing published / version
evicted), or ``server_error`` (the 5xx class; a healthy service never
produces one).  Request parsing, execution, and tracing all live in the
typed protocol layer (:mod:`repro.service.protocol`): this module is
transport only.

Connections start in JSON-lines mode and may upgrade in-band to the
compact length-prefixed binary codec (:mod:`repro.net.frames`) with
``{"op": "frame", "frame": "binary"}`` — the acknowledgement is the last
JSON line on the connection.  Clients may also *pipeline*: write many
request lines (or frames) before reading; responses come back in order.

For serving beyond one event loop, :class:`~repro.net.service_worker.
ServiceWorkerPool` runs the same connection protocol from a pool of
``SO_REUSEPORT`` worker processes — see :mod:`repro.net.service_worker`.
This module lives in :mod:`repro.net` because it opens real sockets —
the ADM008 fence keeps :mod:`repro.service` itself host-independent.
"""

from __future__ import annotations

import asyncio
import json
import warnings
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

from repro.errors import CodecError, NetworkError, ServiceError
from repro.net.frames import HEADER, KIND_BATCH_REQUEST, KIND_REQUEST, FrameCodec
from repro.obs.spans import wall_clock
from repro.service.protocol import (
    BatchRequest,
    BatchResponse,
    QueryDispatcher,
    QueryRequest,
    QueryResponse,
    parse_request,
)

if TYPE_CHECKING:  # runtime import stays lazy (repro.service imports repro.api)
    from repro.service.handle import ServiceHandle

__all__ = [
    "ServiceClient",
    "ServiceEndpoint",
    "measure_endpoint_qps",
    "process_frame",
    "process_json_line",
    "serve_blocking",
]

_MAX_LINE = 64 * 1024


# ----------------------------------------------------------------------
# Transport-agnostic per-message steps (shared with the worker pool)
# ----------------------------------------------------------------------

def process_json_line(
    dispatcher: QueryDispatcher, codec: FrameCodec, line: bytes
) -> tuple[bytes, bool]:
    """One JSON-lines request -> ``(response bytes, upgraded_to_binary)``.

    Handles the in-band ``{"op": "frame", ...}`` negotiation; everything
    else goes through the dispatcher.  Shared by the asyncio endpoint,
    the worker processes, and the threaded fallback, so every serving
    surface speaks byte-identical protocol.
    """
    upgraded = False
    if len(line) > _MAX_LINE:
        response = QueryResponse.failure(
            "bad_request", "request line too long"
        ).to_wire()
    else:
        payload: Any = None
        decoded = False
        try:
            payload = json.loads(line)
            decoded = True
        except json.JSONDecodeError as exc:
            response = dispatcher.failure_wire(
                "invalid", "bad_request", f"invalid JSON: {exc}"
            )
        if decoded:
            if isinstance(payload, dict) and payload.get("op") == "frame":
                response, upgraded = _negotiate_frame(payload)
            else:
                response = dispatcher.dispatch_wire(payload)
    return json.dumps(response, separators=(",", ":")).encode() + b"\n", upgraded


def _negotiate_frame(payload: Mapping[str, Any]) -> tuple[dict[str, Any], bool]:
    request_id = payload.get("id")
    name = payload.get("frame")
    if name in ("binary", "json"):
        response: dict[str, Any] = {"ok": True, "frame": name}
        if request_id is not None:
            response["id"] = request_id
        return response, name == "binary"
    wire = QueryResponse.failure(
        "bad_request",
        f"unknown frame {name!r}; supported: binary, json",
        request_id=request_id if isinstance(request_id, (int, str)) else None,
    ).to_wire()
    return wire, False


def process_frame(
    dispatcher: QueryDispatcher, codec: FrameCodec, kind: int, payload: bytes
) -> bytes:
    """One binary request frame -> the encoded response frame."""
    if kind not in (KIND_REQUEST, KIND_BATCH_REQUEST):
        return codec.encode_response(QueryResponse.failure(
            "bad_request", f"frame kind {kind} is not a request"
        ))
    try:
        request = codec.decode_request(kind, payload)
    except CodecError as exc:
        return codec.encode_response(
            QueryResponse.failure("bad_request", str(exc))
        )
    return codec.encode_response(dispatcher.dispatch(request))


# ----------------------------------------------------------------------
# The asyncio endpoint
# ----------------------------------------------------------------------

async def serve_connection(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    dispatcher: QueryDispatcher,
    codec: FrameCodec,
) -> None:
    """Serve one connection to EOF: JSON lines, with binary upgrade.

    Requests are answered strictly in order, so clients may pipeline
    freely; an unreadable binary frame is answered with an error frame
    and the connection closed (frame streams cannot resynchronise).
    """
    binary = False
    try:
        while True:
            try:
                if binary:
                    header = await reader.readexactly(HEADER.size)
                    kind, length = codec.unpack_header(header)
                    payload = await reader.readexactly(length)
                    out = process_frame(dispatcher, codec, kind, payload)
                else:
                    line = await reader.readline()
                    if not line:
                        break
                    out, upgraded = process_json_line(dispatcher, codec, line)
                    binary = binary or upgraded
            except asyncio.IncompleteReadError:
                break
            except (ConnectionError, asyncio.LimitOverrunError):
                break
            except CodecError as exc:
                writer.write(codec.encode_response(
                    QueryResponse.failure("bad_request", str(exc))
                ))
                break
            writer.write(out)
            try:
                await writer.drain()
            except ConnectionError:
                break
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError, asyncio.CancelledError):
            # The handler is finished either way; server shutdown may
            # cancel this last await, and re-raising would only make
            # asyncio log a spurious "task exception" at teardown.
            pass


class ServiceEndpoint:
    """Serves one :class:`ServiceHandle` to TCP clients (one event loop).

    The single-process frontend: every connection shares the handle's
    query engine (and its LRU cache) on one asyncio loop.  For a
    multi-core read path, see :class:`~repro.net.service_worker.
    ServiceWorkerPool`, which serves the same protocol from worker
    processes fed by store snapshots.
    """

    def __init__(
        self,
        handle: "ServiceHandle",
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        codec: FrameCodec | None = None,
    ) -> None:
        self.handle = handle
        self.host = host
        self.codec = codec or FrameCodec()
        self.dispatcher = QueryDispatcher(
            handle.engine, handle, hub=handle.hub
        )
        self._requested_port = port
        self._server: asyncio.Server | None = None
        self.port: int | None = None
        self._connections: set[asyncio.Task[None]] = set()
        #: handler tasks that died with an unexpected exception
        self.handler_errors = 0

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections (port 0 = ephemeral)."""
        if self._server is not None:
            raise NetworkError("endpoint already started")
        self._server = await asyncio.start_server(
            self._accept_connection, self.host, self._requested_port
        )
        sockets = self._server.sockets or ()
        if not sockets:  # pragma: no cover - start_server always binds or raises
            raise NetworkError("endpoint bound no socket")
        self.port = int(sockets[0].getsockname()[1])

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
            self.port = None
        # In-flight handlers are ours, not the server's: cancel them so a
        # stopped endpoint never leaves a connection half-served, and
        # gather the cancellations so teardown is deterministic.
        for task in tuple(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*tuple(self._connections), return_exceptions=True)

    async def __aenter__(self) -> "ServiceEndpoint":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    # -- connection handling --------------------------------------------

    def _accept_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # Hold the handler task ourselves: the reference start_server
        # keeps internally is invisible to stop(), so handlers would
        # outlive a stopped endpoint with their exceptions unretrieved.
        task = asyncio.get_running_loop().create_task(
            serve_connection(reader, writer, self.dispatcher, self.codec)
        )
        self._connections.add(task)
        task.add_done_callback(self._on_connection_done)

    def _on_connection_done(self, task: asyncio.Task[None]) -> None:
        self._connections.discard(task)
        if not task.cancelled() and task.exception() is not None:
            self.handler_errors += 1


# ----------------------------------------------------------------------
# The client
# ----------------------------------------------------------------------

class ServiceClient:
    """Async client for a service endpoint or worker pool.

    Speaks JSON lines by default; pass ``frame="binary"`` to negotiate
    the length-prefixed binary codec right after connecting.  The typed
    surface is :meth:`call` (one :class:`QueryRequest`/:class:`BatchRequest`
    in, one typed response out) and :meth:`pipeline` (many in flight at
    once); :meth:`request` keeps the legacy raw-dict contract alive.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        frame: str = "json",
        codec: FrameCodec | None = None,
    ) -> None:
        if frame not in ("json", "binary"):
            raise ServiceError(f"unknown frame {frame!r}; supported: binary, json")
        self.host = host
        self.port = port
        self.codec = codec or FrameCodec()
        self._want_frame = frame
        self._frame = "json"
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._next_id = 1

    @property
    def frame(self) -> str:
        """The negotiated frame codec of the live connection."""
        return self._frame

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        self._frame = "json"
        if self._want_frame == "binary":
            await self.negotiate_frame("binary")

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass
            self._reader = self._writer = None

    async def __aenter__(self) -> "ServiceClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    # -- typed surface --------------------------------------------------

    async def call(
        self, request: QueryRequest | BatchRequest
    ) -> QueryResponse | BatchResponse:
        """Send one typed request; returns the typed response."""
        self._send(request)
        await self._drain()
        return await self._receive()

    async def batch(
        self, requests: Sequence[QueryRequest]
    ) -> BatchResponse:
        """Send many ops as one request line/frame; positional results."""
        response = await self.call(BatchRequest(tuple(requests), self._take_id()))
        assert isinstance(response, BatchResponse)
        return response

    async def pipeline(
        self, requests: Iterable[QueryRequest | BatchRequest]
    ) -> list[QueryResponse | BatchResponse]:
        """Write every request before reading: one round trip, in order."""
        sent = 0
        for request in requests:
            self._send(request)
            sent += 1
        await self._drain()
        return [await self._receive() for _ in range(sent)]

    async def negotiate_frame(self, frame: str) -> None:
        """Switch the live connection's codec (``"binary"`` / ``"json"``)."""
        reader, writer = self._connected()
        writer.write(json.dumps(
            {"op": "frame", "frame": frame}, separators=(",", ":")
        ).encode() + b"\n")
        await writer.drain()
        line = await reader.readline()
        if not line:
            raise NetworkError("endpoint closed the connection during negotiation")
        response = json.loads(line)
        if not (isinstance(response, dict) and response.get("ok")):
            message = response.get("message") if isinstance(response, dict) else None
            raise ServiceError(
                str(message or f"frame negotiation for {frame!r} failed"),
                code="bad_request",
            )
        self._frame = frame

    # -- plumbing -------------------------------------------------------

    def _connected(self) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        if self._reader is None or self._writer is None:
            raise NetworkError("client is not connected")
        return self._reader, self._writer

    def _take_id(self) -> int:
        request_id = self._next_id
        self._next_id += 1
        return request_id

    def _send(self, request: QueryRequest | BatchRequest) -> None:
        _, writer = self._connected()
        if self._frame == "binary":
            writer.write(self.codec.encode_request(request))
        else:
            writer.write(json.dumps(
                request.to_wire(), separators=(",", ":")
            ).encode() + b"\n")

    async def _drain(self) -> None:
        _, writer = self._connected()
        await writer.drain()

    async def _receive(self) -> QueryResponse | BatchResponse:
        reader, _ = self._connected()
        if self._frame == "binary":
            try:
                header = await reader.readexactly(HEADER.size)
                kind, length = self.codec.unpack_header(header)
                payload = await reader.readexactly(length)
            except asyncio.IncompleteReadError as exc:
                raise NetworkError("endpoint closed the connection") from exc
            return self.codec.decode_response(kind, payload)
        line = await reader.readline()
        if not line:
            raise NetworkError("endpoint closed the connection")
        decoded = json.loads(line)
        if not isinstance(decoded, dict):
            raise NetworkError(f"malformed response: {decoded!r}")
        if "results" in decoded:
            return BatchResponse.from_wire(decoded)
        return QueryResponse.from_wire(decoded)

    # -- legacy dict surface (kept working via the typed layer) ---------

    async def request(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        """Send one raw request object; returns the decoded response dict.

        The wire-level escape hatch: on a JSON connection the payload is
        sent verbatim (malformed payloads exercise the server's error
        classes); on a binary connection it is parsed through the typed
        protocol first, so only well-formed payloads can be expressed.
        """
        message = dict(payload)
        message.setdefault("id", self._take_id())
        if self._frame == "binary":
            response = await self.call(parse_request(message))
            return response.to_wire()
        reader, writer = self._connected()
        writer.write(json.dumps(message, separators=(",", ":")).encode() + b"\n")
        await writer.drain()
        line = await reader.readline()
        if not line:
            raise NetworkError("endpoint closed the connection")
        decoded = json.loads(line)
        if not isinstance(decoded, dict):
            raise NetworkError(f"malformed response: {decoded!r}")
        return decoded

    async def value(self, payload: Mapping[str, Any]) -> float:
        """Request + unwrap; raises :class:`ServiceError` on error replies."""
        response = await self.request(payload)
        return QueryResponse.from_wire(response).result()

    async def cdf(self, x: float, *, version: int | None = None) -> float:
        response = await self.call(QueryRequest.cdf(
            x, version=version, request_id=self._take_id()
        ))
        assert isinstance(response, QueryResponse)
        return response.result()

    async def quantile(self, q: float, *, version: int | None = None) -> float:
        response = await self.call(QueryRequest.quantile(
            q, version=version, request_id=self._take_id()
        ))
        assert isinstance(response, QueryResponse)
        return response.result()

    async def fraction_between(
        self, a: float, b: float, *, version: int | None = None
    ) -> float:
        response = await self.call(QueryRequest.fraction_between(
            a, b, version=version, request_id=self._take_id()
        ))
        assert isinstance(response, QueryResponse)
        return response.result()

    async def network_size(self, *, version: int | None = None) -> float:
        response = await self.call(QueryRequest.network_size(
            version=version, request_id=self._take_id()
        ))
        assert isinstance(response, QueryResponse)
        return response.result()

    async def status(self) -> dict[str, Any]:
        response = await self.call(QueryRequest.status(request_id=self._take_id()))
        assert isinstance(response, QueryResponse)
        payload = response.payload or {}
        status = payload.get("status")
        return dict(status) if isinstance(status, Mapping) else {}


def _query_payload(op: str, args: Sequence[float]) -> dict[str, Any]:
    """Deprecated: build a wire dict for ``(op, args)``.

    Superseded by the typed protocol — construct a
    :class:`~repro.service.protocol.QueryRequest` and call
    ``to_wire()`` instead.  Kept as a shim so pre-protocol callers keep
    working for one deprecation cycle.
    """
    warnings.warn(
        "_query_payload is deprecated; build a repro.service.protocol."
        "QueryRequest and use its to_wire()",
        DeprecationWarning,
        stacklevel=2,
    )
    return QueryRequest(op, tuple(args)).to_wire()


# ----------------------------------------------------------------------
# Measurement + blocking serve loop
# ----------------------------------------------------------------------

def _batched_requests(
    queries: Sequence[tuple[str, tuple[float, ...]]], batch_size: int
) -> list[QueryRequest | BatchRequest]:
    """Typed requests for a mixed ``(op, args)`` workload, batched."""
    singles = [QueryRequest(op, args) for op, args in queries]
    if batch_size <= 1:
        return list(singles)
    return [
        BatchRequest(tuple(singles[i : i + batch_size]))
        for i in range(0, len(singles), batch_size)
    ]


def measure_endpoint_qps(
    handle: "ServiceHandle",
    queries: Sequence[tuple[str, tuple[float, ...]]],
    *,
    clients: int = 1,
    host: str = "127.0.0.1",
    workers: int = 1,
    frame: str = "json",
    batch_size: int = 1,
    mode: str = "auto",
    think_s: float = 0.0,
) -> dict[str, object]:
    """Drive a mixed query workload through a fresh serving surface.

    Starts an ephemeral server for ``handle`` — the single-loop
    :class:`ServiceEndpoint` for ``workers <= 1``, a
    :class:`~repro.net.service_worker.ServiceWorkerPool` otherwise —
    splits ``queries`` round-robin over ``clients`` concurrent
    connections, groups each share into batches of ``batch_size`` ops,
    and measures both per-request latency and *aggregate wall-clock
    throughput* (total ops divided by the time from first byte to last
    response across all clients — summing per-request latencies would
    multiply-count time the clients spend queued behind each other,
    which is exactly the artefact that made the old benchmark report a
    concurrency "inversion").

    ``mode`` selects the pool's serving mode (``"auto"`` /
    ``"reuseport"`` / ``"threads"``) when ``workers > 1``.

    ``think_s`` makes the workload *closed-loop with think time*: each
    client sleeps that long between requests, modelling an application
    that does its own work between queries.  With think time, one
    client is bounded by ``batch_size / (think_s + rtt)`` no matter how
    fast the server is, and aggregate throughput grows with the client
    count until the serving side saturates — the standard qps-vs-
    clients shape.  With ``think_s=0`` the clients are a pure saturation
    load: every client always has a request in flight, which measures
    peak capacity but cannot show concurrency scaling on a machine
    where the measuring clients and the server share one CPU.

    Returns ``{"latencies": [...], "errors": n, "ops": n, "wall_s": s,
    "qps": ops/s, "server": "endpoint"|"reuseport"|"threads"}``.
    """
    if clients < 1:
        raise NetworkError("need at least one client")
    if batch_size < 1:
        raise NetworkError("batch_size must be >= 1")

    shares = [
        _batched_requests(list(queries[i::clients]), batch_size)
        for i in range(clients)
    ]

    async def _client(port: int, share: Sequence[QueryRequest | BatchRequest],
                      latencies: list[float]) -> int:
        errors = 0
        async with ServiceClient(host, port, frame=frame) as client:
            for request in share:
                started = wall_clock()
                response = await client.call(request)
                latencies.append(wall_clock() - started)
                if isinstance(response, BatchResponse):
                    errors += sum(1 for r in response.results if not r.ok)
                elif not response.ok:
                    errors += 1
                if think_s > 0:
                    await asyncio.sleep(think_s)
        return errors

    async def _drive(port: int) -> dict[str, object]:
        latencies: list[float] = []
        started = wall_clock()
        errors = await asyncio.gather(*(
            _client(port, share, latencies) for share in shares if share
        ))
        wall_s = max(wall_clock() - started, 1e-9)
        ops = sum(
            len(r.items) if isinstance(r, BatchRequest) else 1
            for share in shares for r in share
        )
        return {
            "latencies": latencies,
            "errors": int(sum(errors)),
            "ops": ops,
            "wall_s": wall_s,
            "qps": ops / wall_s,
        }

    if workers > 1:
        # Late import: service_worker imports this module's connection
        # machinery.
        from repro.net.service_worker import ServiceWorkerPool

        pool = ServiceWorkerPool(
            handle.store, workers=workers, host=host, mode=mode
        )
        pool.start()
        try:
            assert pool.port is not None
            result = asyncio.run(_drive(pool.port))
            result["server"] = pool.mode
        finally:
            pool.stop()
        return result

    async def _measure() -> dict[str, object]:
        async with ServiceEndpoint(handle, host=host, port=0) as endpoint:
            assert endpoint.port is not None
            result = await _drive(endpoint.port)
        result["server"] = "endpoint"
        return result

    return asyncio.run(_measure())


def serve_blocking(
    handle: "ServiceHandle",
    *,
    host: str = "127.0.0.1",
    port: int = 9309,
    refresh_every: float = 5.0,
    max_cycles: int | None = None,
    announce: Any = print,
    workers: int = 1,
    http_port: int | None = None,
    http_host: str | None = None,
) -> None:
    """Serve a handle over TCP, refreshing the estimate in the background.

    With ``workers <= 1`` a single-loop :class:`ServiceEndpoint` serves
    from the handle's own engine; the scheduler cycle runs in a worker
    thread between refresh pauses — it must not share the endpoint's
    event loop, because the ``net`` backend owns its own ``asyncio.run``
    per cycle.  With ``workers > 1`` a :class:`~repro.net.service_worker.
    ServiceWorkerPool` serves from worker processes while the scheduler
    refreshes in this thread; every published snapshot reaches the
    workers through the store's snapshot feed.  With ``max_cycles`` the
    loop exits after that many refreshes (smoke tests); otherwise it
    serves until interrupted.

    ``http_port`` additionally exposes the read-only HTTP status surface
    (:mod:`repro.net.httpstatus`) on ``http_host`` (default: ``host``):
    on the serving loop itself in the single-loop path, on a dedicated
    thread in the worker-pool path.  When the handle is durable
    (:attr:`ServiceHandle.persistence`), the log is sealed on exit.
    """
    status_host = http_host if http_host is not None else host
    if workers > 1:
        import time

        from repro.net.httpstatus import StatusServerThread
        from repro.net.service_worker import ServiceWorkerPool

        pool = ServiceWorkerPool(
            handle.store, workers=workers, host=host, port=port
        )
        pool.start()
        status: StatusServerThread | None = None
        try:
            if http_port is not None:
                status = StatusServerThread(
                    handle, host=status_host, port=http_port
                )
                status.start()
            if announce is not None:
                announce(
                    f"serving on {host}:{pool.port} "
                    f"({pool.workers} workers, {pool.mode})"
                )
                if status is not None:
                    announce(
                        f"status on http://{status.host}:{status.port}/status"
                    )
            cycles = 0
            while max_cycles is None or cycles < max_cycles:
                time.sleep(refresh_every)
                handle.scheduler.run_cycle()
                cycles += 1
        finally:
            if status is not None:
                status.stop()
            pool.stop()
            handle.close()
        return

    async def _serve() -> None:
        from repro.net.httpstatus import StatusServer

        loop = asyncio.get_running_loop()
        async with ServiceEndpoint(handle, host=host, port=port) as endpoint:
            status: StatusServer | None = None
            if http_port is not None:
                status = StatusServer(handle, host=status_host, port=http_port)
                await status.start()
            try:
                if announce is not None:
                    announce(f"serving on {endpoint.host}:{endpoint.port}")
                    if status is not None:
                        announce(
                            f"status on http://{status.host}:{status.port}/status"
                        )
                cycles = 0
                while max_cycles is None or cycles < max_cycles:
                    await asyncio.sleep(refresh_every)
                    await loop.run_in_executor(None, handle.scheduler.run_cycle)
                    cycles += 1
            finally:
                if status is not None:
                    await status.stop()

    try:
        asyncio.run(_serve())
    finally:
        handle.close()
