"""JSON-over-TCP frontend for the continuous estimation service.

The endpoint exposes a :class:`~repro.service.handle.ServiceHandle` over
a newline-delimited JSON protocol — one request object per line, one
response object per line, requests answered in order per connection:

Request::

    {"id": 7, "op": "cdf", "x": 1.5}
    {"id": 8, "op": "quantile", "q": 0.9, "version": 3}
    {"id": 9, "op": "fraction", "a": 2048, "b": 1e12}
    {"op": "size"} / {"op": "status"} / {"op": "pin", "version": 3}

Response::

    {"id": 7, "ok": true, "value": 0.42, "version": 5}
    {"id": 8, "ok": false, "error": "unavailable", "message": "..."}

``error`` is one of ``bad_request`` (caller mistake — bad JSON, unknown
op, invalid arguments), ``unavailable`` (nothing published / version
evicted), or ``server_error`` (the 5xx class; a healthy service never
produces one).  Query latency histograms and cache hit/miss counters
flow through the handle's :mod:`repro.obs` hub exactly as for in-process
callers; protocol-level failures the engine never saw are emitted here
so the trace accounts for every request line received.

This module lives in :mod:`repro.net` because it opens real sockets —
the ADM008 fence keeps :mod:`repro.service` itself host-independent.
"""

from __future__ import annotations

import asyncio
import json
from typing import TYPE_CHECKING, Any, Mapping, Sequence

from repro.errors import NetworkError, ServiceError
from repro.obs.events import QueryServed
from repro.obs.spans import wall_clock

if TYPE_CHECKING:  # runtime import stays lazy (repro.service imports repro.api)
    from repro.service.handle import ServiceHandle

__all__ = [
    "ServiceClient",
    "ServiceEndpoint",
    "measure_endpoint_qps",
    "serve_blocking",
]

#: request ops answered by the query engine (these emit their own events)
_ENGINE_OPS = frozenset({"cdf", "quantile", "fraction", "size"})
#: control-plane ops handled by the endpoint itself
_CONTROL_OPS = frozenset({"status", "pin", "unpin", "history"})

_MAX_LINE = 64 * 1024


def _number(request: Mapping[str, Any], key: str) -> float:
    value = request.get(key)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ServiceError(
            f"op {request.get('op')!r} needs numeric field {key!r}",
            code="bad_request",
        )
    return float(value)


def _version_of(request: Mapping[str, Any], *, required: bool = False) -> int | None:
    value = request.get("version")
    if value is None:
        if required:
            raise ServiceError(
                f"op {request.get('op')!r} needs integer field 'version'",
                code="bad_request",
            )
        return None
    if not isinstance(value, int) or isinstance(value, bool):
        raise ServiceError("'version' must be an integer", code="bad_request")
    return value


class ServiceEndpoint:
    """Serves one :class:`ServiceHandle` to TCP clients (JSON lines)."""

    def __init__(
        self,
        handle: "ServiceHandle",
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.handle = handle
        self.host = host
        self._requested_port = port
        self._server: asyncio.Server | None = None
        self.port: int | None = None
        self._connections: set[asyncio.Task[None]] = set()
        #: handler tasks that died with an unexpected exception
        self.handler_errors = 0

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections (port 0 = ephemeral)."""
        if self._server is not None:
            raise NetworkError("endpoint already started")
        self._server = await asyncio.start_server(
            self._accept_connection, self.host, self._requested_port
        )
        sockets = self._server.sockets or ()
        if not sockets:  # pragma: no cover - start_server always binds or raises
            raise NetworkError("endpoint bound no socket")
        self.port = int(sockets[0].getsockname()[1])

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
            self.port = None
        # In-flight handlers are ours, not the server's: cancel them so a
        # stopped endpoint never leaves a connection half-served, and
        # gather the cancellations so teardown is deterministic.
        for task in tuple(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*tuple(self._connections), return_exceptions=True)

    async def __aenter__(self) -> "ServiceEndpoint":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    # -- connection handling --------------------------------------------

    def _accept_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # Hold the handler task ourselves: the reference start_server
        # keeps internally is invisible to stop(), so handlers would
        # outlive a stopped endpoint with their exceptions unretrieved.
        task = asyncio.get_running_loop().create_task(
            self._serve_connection(reader, writer)
        )
        self._connections.add(task)
        task.add_done_callback(self._on_connection_done)

    def _on_connection_done(self, task: asyncio.Task[None]) -> None:
        self._connections.discard(task)
        if not task.cancelled() and task.exception() is not None:
            self.handler_errors += 1

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.LimitOverrunError):
                    break
                if not line:
                    break
                if len(line) > _MAX_LINE:
                    response = self._error_response(
                        None, "bad_request", "request line too long"
                    )
                else:
                    response = self._handle_line(line)
                writer.write(json.dumps(response, separators=(",", ":")).encode() + b"\n")
                try:
                    await writer.drain()
                except ConnectionError:
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                # The handler is finished either way; server shutdown may
                # cancel this last await, and re-raising would only make
                # asyncio log a spurious "task exception" at teardown.
                pass

    def _handle_line(self, line: bytes) -> dict[str, Any]:
        started = wall_clock()
        request_id: Any = None
        op = "invalid"
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ServiceError("request must be a JSON object", code="bad_request")
            request_id = request.get("id")
            raw_op = request.get("op")
            op = raw_op if isinstance(raw_op, str) else "invalid"
            return self._dispatch(op, request, request_id)
        except json.JSONDecodeError as exc:
            self._emit_failure(op, "bad_request", started)
            return self._error_response(request_id, "bad_request", f"invalid JSON: {exc}")
        except ServiceError as exc:
            if op not in _ENGINE_OPS:
                # engine ops already emitted their own failure event
                self._emit_failure(op, exc.code, started)
            return self._error_response(request_id, exc.code, str(exc))
        except Exception as exc:  # the wire-level 5xx class
            if op not in _ENGINE_OPS:
                self._emit_failure(op, "server_error", started)
            return self._error_response(
                request_id, "server_error", f"{type(exc).__name__}: {exc}"
            )

    def _dispatch(
        self, op: str, request: Mapping[str, Any], request_id: Any
    ) -> dict[str, Any]:
        handle = self.handle
        if op in _ENGINE_OPS:
            started = wall_clock()
            try:
                # Argument failures here never reach the engine, so the
                # endpoint must trace them itself; once parsing succeeds,
                # the engine accounts for the query (success or failure).
                version = _version_of(request)
                if op == "cdf":
                    args = (_number(request, "x"),)
                elif op == "quantile":
                    args = (_number(request, "q"),)
                elif op == "fraction":
                    args = (_number(request, "a"), _number(request, "b"))
                else:
                    args = ()
            except ServiceError as exc:
                self._emit_failure(op, exc.code, started)
                raise
            if op == "cdf":
                value = handle.cdf(*args, version=version)
            elif op == "quantile":
                value = handle.quantile(*args, version=version)
            elif op == "fraction":
                value = handle.fraction_between(*args, version=version)
            else:
                value = handle.network_size(version=version)
            return self._value_response(request_id, value, version)

        started = wall_clock()
        if op == "status":
            payload: dict[str, Any] = {"ok": True, "status": handle.status()}
        elif op == "history":
            payload = {"ok": True, "history": handle.history()}
        elif op == "pin":
            snapshot = handle.pin(_version_of(request, required=True) or 0)
            payload = {"ok": True, "pinned": snapshot.version}
        elif op == "unpin":
            handle.unpin(_version_of(request, required=True) or 0)
            payload = {"ok": True}
        else:
            raise ServiceError(
                f"unknown op {op!r}; supported: "
                f"{', '.join(sorted(_ENGINE_OPS | _CONTROL_OPS))}",
                code="bad_request",
            )
        if request_id is not None:
            payload["id"] = request_id
        self.handle.hub.query_served(QueryServed(
            op=op, version=None, cache_hit=False, ok=True,
            latency_s=wall_clock() - started,
        ))
        return payload

    def _value_response(
        self, request_id: Any, value: float, version: int | None
    ) -> dict[str, Any]:
        payload: dict[str, Any] = {"ok": True, "value": value}
        if version is not None:
            payload["version"] = version
        if request_id is not None:
            payload["id"] = request_id
        return payload

    def _error_response(
        self, request_id: Any, code: str, message: str
    ) -> dict[str, Any]:
        payload: dict[str, Any] = {"ok": False, "error": code, "message": message}
        if request_id is not None:
            payload["id"] = request_id
        return payload

    def _emit_failure(self, op: str, code: str, started: float) -> None:
        self.handle.hub.query_served(QueryServed(
            op=op, version=None, cache_hit=False, ok=False, error=code,
            latency_s=wall_clock() - started,
        ))


class ServiceClient:
    """Async JSON-lines client for a :class:`ServiceEndpoint`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._next_id = 1

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass
            self._reader = self._writer = None

    async def __aenter__(self) -> "ServiceClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    async def request(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        """Send one request object; returns the decoded response."""
        if self._reader is None or self._writer is None:
            raise NetworkError("client is not connected")
        message = dict(payload)
        message.setdefault("id", self._next_id)
        self._next_id += 1
        self._writer.write(
            json.dumps(message, separators=(",", ":")).encode() + b"\n"
        )
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise NetworkError("endpoint closed the connection")
        response = json.loads(line)
        if not isinstance(response, dict):
            raise NetworkError(f"malformed response: {response!r}")
        return response

    async def value(self, payload: Mapping[str, Any]) -> float:
        """Request + unwrap; raises :class:`ServiceError` on error replies."""
        response = await self.request(payload)
        if not response.get("ok"):
            raise ServiceError(
                str(response.get("message", "request failed")),
                code=str(response.get("error", "server_error")),
            )
        return float(response["value"])

    async def cdf(self, x: float, *, version: int | None = None) -> float:
        return await self.value({"op": "cdf", "x": x, "version": version})

    async def quantile(self, q: float, *, version: int | None = None) -> float:
        return await self.value({"op": "quantile", "q": q, "version": version})

    async def fraction_between(
        self, a: float, b: float, *, version: int | None = None
    ) -> float:
        return await self.value(
            {"op": "fraction", "a": a, "b": b, "version": version}
        )

    async def network_size(self, *, version: int | None = None) -> float:
        return await self.value({"op": "size", "version": version})

    async def status(self) -> dict[str, Any]:
        response = await self.request({"op": "status"})
        status = response.get("status")
        return status if isinstance(status, dict) else {}


def _query_payload(op: str, args: Sequence[float]) -> dict[str, Any]:
    if op == "cdf":
        return {"op": "cdf", "x": args[0]}
    if op == "quantile":
        return {"op": "quantile", "q": args[0]}
    if op == "fraction":
        return {"op": "fraction", "a": args[0], "b": args[1]}
    return {"op": "size"}


def measure_endpoint_qps(
    handle: "ServiceHandle",
    queries: Sequence[tuple[str, tuple[float, ...]]],
    *,
    clients: int = 1,
    host: str = "127.0.0.1",
) -> dict[str, object]:
    """Drive a mixed query workload through a fresh endpoint.

    Starts an ephemeral endpoint for ``handle``, splits ``queries``
    round-robin over ``clients`` concurrent connections (each pipelining
    its share sequentially), and measures client-observed per-query
    latency.  Returns ``{"latencies": [...], "errors": n}``.
    """
    if clients < 1:
        raise NetworkError("need at least one client")

    async def _client(port: int, share: Sequence[tuple[str, tuple[float, ...]]],
                      latencies: list[float]) -> int:
        errors = 0
        async with ServiceClient(host, port) as client:
            for op, args in share:
                started = wall_clock()
                response = await client.request(_query_payload(op, args))
                latencies.append(wall_clock() - started)
                if not response.get("ok"):
                    errors += 1
        return errors

    async def _measure() -> dict[str, object]:
        latencies: list[float] = []
        async with ServiceEndpoint(handle, host=host, port=0) as endpoint:
            assert endpoint.port is not None
            shares = [list(queries[i::clients]) for i in range(clients)]
            errors = await asyncio.gather(*(
                _client(endpoint.port, share, latencies)
                for share in shares if share
            ))
        return {"latencies": latencies, "errors": int(sum(errors))}

    return asyncio.run(_measure())


def serve_blocking(
    handle: "ServiceHandle",
    *,
    host: str = "127.0.0.1",
    port: int = 9309,
    refresh_every: float = 5.0,
    max_cycles: int | None = None,
    announce: Any = print,
) -> None:
    """Serve a handle over TCP, refreshing the estimate in the background.

    The scheduler cycle runs in a worker thread between refresh pauses —
    it must not share the endpoint's event loop, because the ``net``
    backend owns its own ``asyncio.run`` per cycle.  With ``max_cycles``
    the loop exits after that many refreshes (smoke tests); otherwise it
    serves until interrupted.
    """

    async def _serve() -> None:
        loop = asyncio.get_running_loop()
        async with ServiceEndpoint(handle, host=host, port=port) as endpoint:
            if announce is not None:
                announce(f"serving on {endpoint.host}:{endpoint.port}")
            cycles = 0
            while max_cycles is None or cycles < max_cycles:
                await asyncio.sleep(refresh_every)
                await loop.run_in_executor(None, handle.scheduler.run_cycle)
                cycles += 1

    asyncio.run(_serve())
