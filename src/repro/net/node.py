"""The Adam2 node daemon: one real peer on one real UDP socket.

A :class:`NodeDaemon` wires the engine-independent protocol core
(:class:`~repro.core.node.Adam2Node`) to the real-network runtime:

* it owns one :class:`~repro.net.transport.UdpTransport` endpoint and a
  :class:`~repro.net.peers.PeerDirectory` of gossip partners;
* a **gossip timer** fires every ``gossip_period`` seconds (jittered so
  peers desynchronise); each fire is one local round — TTLs count these
  fires, exactly like the asynchronous simulator's per-node clocks;
* each fire launches one bounded-background **push** at a selected peer:
  a budget-fitted snapshot of every live instance; the pull reply
  carries the responder's *pre-merge* snapshots and is merged on
  arrival, completing the mass-conserving symmetric exchange;
* incoming pushes are handled synchronously on the event loop (join /
  snapshot / merge / piggyback, mirroring
  :meth:`repro.asyncsim.adam2.AsyncAdam2.on_request`), so protocol state
  never sees concurrent mutation;
* the **neighbour bootstrap** collects attribute values from sampled
  peers over real sample round-trips before starting an instance;
* with ``sanitize=True`` every merge is bracketed by the shared
  mass-conservation checks from :mod:`repro.lint.sanitizer`.

The daemon can also run as its own OS process:
``python -m repro.net.node --spec spec.json`` executes one node from a
JSON spec and writes a JSON summary of its completed instances — the
process mode of :class:`repro.net.cluster.LocalCluster`.
"""

from __future__ import annotations

import argparse
import asyncio
import json
from typing import Any, Hashable, Sequence

import numpy as np

from repro.core.config import Adam2Config
from repro.core.instance import InstanceState
from repro.core.node import Adam2Node
from repro.errors import NetworkError, TransportTimeout
from repro.lint.sanitizer import (
    capture_instance_masses,
    check_delivery_merge,
    check_node_invariants,
    sanitize_enabled,
)
from repro.net.codec import MSG_PULL, MSG_PUSH, MSG_SAMPLE_REQUEST, Message, WireCodec
from repro.net.faults import FaultInjector
from repro.net.peers import PeerDirectory
from repro.net.transport import UdpTransport
from repro.rngs import make_rng, spawn

__all__ = ["NodeDaemon", "main"]


class NodeDaemon:
    """One Adam2 peer running over a real UDP socket.

    Args:
        node_id: integer peer id (also the wire sender id; must fit u32).
        values: the peer's attribute value(s).
        config: protocol parameters shared by the cluster.
        rng: the peer's private seeded generator (protocol decisions,
            peer selection, timer jitter all derive from it).
        codec: shared wire codec (one version, one budget per cluster).
        gossip_period: seconds between local gossip-timer fires.
        period_jitter: uniform fraction by which each period varies,
            desynchronising peers (like the async engine's clock drift).
        scheduler: ``"manual"`` (instances via :meth:`trigger_instance`)
            or ``"probabilistic"`` (the paper's self-selection).
        neighbour_sample: peers sampled for the value bootstrap.
        sanitize: bracket every merge with the mass-conservation
            sanitizer (tri-state like the simulators: ``None`` follows
            the ``ADAM2_SANITIZE`` environment variable).
        max_inflight: bound on concurrent background pushes; timer fires
            beyond it skip their push (TTLs still tick) so a wall of
            dead peers cannot pile up unbounded tasks.
        fault: optional outgoing fault injector.
        transport_options: extra keyword arguments for
            :class:`~repro.net.transport.UdpTransport` (timeouts, retry
            policy, dedup size).
    """

    def __init__(
        self,
        node_id: int,
        values: float | np.ndarray,
        config: Adam2Config,
        rng: np.random.Generator,
        *,
        codec: WireCodec | None = None,
        gossip_period: float = 0.05,
        period_jitter: float = 0.1,
        scheduler: str = "manual",
        neighbour_sample: int | None = None,
        sanitize: bool | None = None,
        max_inflight: int = 8,
        fault: FaultInjector | None = None,
        transport_options: dict[str, Any] | None = None,
    ):
        if not isinstance(node_id, int) or not 0 <= node_id <= 2**32 - 1:
            raise NetworkError(f"node id {node_id!r} must be a u32 integer")
        if gossip_period <= 0.0:
            raise NetworkError(f"gossip period {gossip_period} must be positive")
        if not 0.0 <= period_jitter < 1.0:
            raise NetworkError(f"period jitter {period_jitter} must be in [0, 1)")
        if scheduler not in ("manual", "probabilistic"):
            raise NetworkError(f"unknown scheduler {scheduler!r}")
        if max_inflight < 1:
            raise NetworkError("max_inflight must be >= 1")
        self.node_id = node_id
        self.config = config
        self.rng = rng
        self.adam2 = Adam2Node(node_id, values, config, spawn(rng))
        self.codec = codec if codec is not None else WireCodec()
        self.gossip_period = gossip_period
        self.period_jitter = period_jitter
        self.scheduler = scheduler
        self.neighbour_sample = neighbour_sample or max(config.points, 20)
        self.sanitize = sanitize_enabled(sanitize)
        self.max_inflight = max_inflight
        self.directory = PeerDirectory()
        self.transport = UdpTransport(
            self.codec, spawn(rng), handler=self, fault=fault,
            **(transport_options or {}),
        )
        #: local gossip rounds completed (timer fires)
        self.rounds = 0
        #: pushes abandoned after the retry budget (peer suspected)
        self.push_failures = 0
        #: timer fires that skipped their push at the in-flight bound
        self.pushes_skipped = 0
        #: unexpected exceptions retrieved from background push tasks
        self.push_errors = 0
        self._inflight: set[asyncio.Task[None]] = set()
        self._running = False
        self._crashed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def open(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Bind the UDP endpoint; returns the bound address."""
        return await self.transport.open(host, port)

    @property
    def address(self) -> tuple[str, int]:
        return self.transport.address

    @property
    def crashed(self) -> bool:
        """Whether the node was fail-stopped with :meth:`crash`."""
        return self._crashed

    def add_peer(self, peer_id: int, address: tuple[str, int]) -> None:
        """Register a gossip partner."""
        if peer_id == self.node_id:
            raise NetworkError("a node cannot be its own peer")
        self.directory.add(peer_id, address)

    async def run(self, rounds: int) -> None:
        """Run the gossip timer for ``rounds`` local fires.

        Each fire is one local round: TTLs tick, expired instances
        finalise, and (bounded) one push launches at a selected peer.
        Pushes settle in the background; await :meth:`drain` to wait for
        the stragglers (e.g. at the end of an instance).
        """
        if self._running:
            raise NetworkError("daemon is already running")
        self._running = True
        try:
            for _ in range(rounds):
                if self._crashed:
                    return
                jitter = 1.0 + self.period_jitter * (2.0 * float(self.rng.random()) - 1.0)
                await asyncio.sleep(self.gossip_period * jitter)
                self._tick()
        finally:
            self._running = False

    async def drain(self) -> None:
        """Wait for in-flight pushes to complete (or fail their retries)."""
        while self._inflight:
            await asyncio.gather(*tuple(self._inflight), return_exceptions=True)

    def close(self) -> None:
        """Close the socket and cancel in-flight pushes."""
        for task in tuple(self._inflight):
            task.cancel()
        self._inflight.clear()
        self.transport.close()

    def crash(self) -> None:
        """Fail-stop the node: no more sends, receives, or timer fires.

        Peers observe the crash only as timeouts — exactly the failure
        model the suspicion machinery is built for.
        """
        self._crashed = True
        self.close()

    # ------------------------------------------------------------------
    # The gossip timer
    # ------------------------------------------------------------------

    def _tick(self) -> None:
        self.rounds += 1
        self.adam2.end_of_round(self.rounds)
        if self.scheduler == "probabilistic" and self.adam2.should_start_instance():
            self._spawn(self.trigger_instance())
        if not self.adam2.instances or len(self.directory) == 0:
            return
        if len(self._inflight) >= self.max_inflight:
            self.pushes_skipped += 1
            return
        peer = self.directory.select(self.rng)
        if peer is not None:
            self._spawn(self._push(peer.peer_id, peer.address))

    def _spawn(self, coro: Any) -> None:
        task = asyncio.get_running_loop().create_task(coro)
        self._inflight.add(task)
        task.add_done_callback(self._on_push_done)

    def _on_push_done(self, task: asyncio.Task[None]) -> None:
        # Unbind *and* observe: a discard-only callback leaves the task's
        # exception unretrieved, so a crashed push would only surface as an
        # asyncio log line at interpreter exit while the node keeps
        # believing it is gossiping.
        self._inflight.discard(task)
        if task.cancelled():
            return
        if task.exception() is not None:
            self.push_errors += 1

    async def _push(self, peer_id: int, address: tuple[str, int]) -> None:
        # Snapshot highest-TTL first: fit_states keeps a prefix, and the
        # youngest instances have the most averaging left to do.
        ordered = sorted(self.adam2.instances.items(), key=lambda kv: -kv[1].ttl)
        snapshots = {iid: state.snapshot() for iid, state in ordered}
        payload = self.codec.fit_states(snapshots)
        if not payload:
            return
        msg_id = self.transport.next_msg_id()
        datagram = self.codec.encode_states(MSG_PUSH, self.node_id, msg_id, payload)
        try:
            reply = await self.transport.request(datagram, address, msg_id)
        except TransportTimeout:
            self.push_failures += 1
            self.directory.mark_failure(peer_id)
            return
        self.directory.mark_alive(peer_id)
        self._merge_payload(reply.states)

    # ------------------------------------------------------------------
    # Request handling (transport RequestHandler)
    # ------------------------------------------------------------------

    def handle_request(self, message: Message, codec: WireCodec) -> bytes | None:
        """Turn a decoded request into reply bytes (runs on the loop)."""
        if self._crashed:
            return None
        self.directory.mark_alive(message.sender)
        if message.kind == MSG_SAMPLE_REQUEST:
            return codec.encode_sample_response(self.node_id, message.msg_id, self.adam2.values)
        if message.kind != MSG_PUSH:
            return None
        adam2 = self.adam2
        pre = capture_instance_masses(adam2) if self.sanitize else None
        response: dict[Hashable, InstanceState] = {}
        for iid, remote in message.states.items():
            local = adam2.instances.get(iid)
            if local is None:
                if remote.ttl <= 1 or iid in adam2.finished_ids:
                    continue  # nearly expired or already terminated here
                local = adam2.join_instance(remote, round_=self.rounds)
            # Snapshot after joining but before merging: the initiator
            # merging this pull completes the mass-conserving symmetric
            # exchange (same semantics as the async simulator).
            response[iid] = local.snapshot()
            local.merge_from(remote)
        if pre is not None:
            check_delivery_merge(
                adam2, pre, message.states, backend="net", round_index=self.rounds
            )
            check_node_invariants(
                adam2, backend="net", round_index=self.rounds, node=self.node_id
            )
        # Piggyback instances the sender has not seen yet, so instances
        # spread on pulls as well as pushes.
        for iid, state in adam2.instances.items():
            if iid not in response and iid not in message.states:
                response[iid] = state.snapshot()
        # Always reply, even with zero states: the pull doubles as the
        # acknowledgement, and a silent decline would read as a crash.
        payload = codec.fit_states(response)
        return codec.encode_states(MSG_PULL, self.node_id, message.msg_id, payload)

    def _merge_payload(self, states: dict[Hashable, InstanceState]) -> None:
        if not states:
            return
        adam2 = self.adam2
        pre = capture_instance_masses(adam2) if self.sanitize else None
        for iid, remote in states.items():
            local = adam2.instances.get(iid)
            if local is None:
                if remote.ttl <= 1 or iid in adam2.finished_ids:
                    continue
                local = adam2.join_instance(remote, round_=self.rounds)
            local.merge_from(remote)
        if pre is not None:
            check_delivery_merge(adam2, pre, states, backend="net", round_index=self.rounds)
            check_node_invariants(adam2, backend="net", round_index=self.rounds, node=self.node_id)

    # ------------------------------------------------------------------
    # Instance management
    # ------------------------------------------------------------------

    async def trigger_instance(self) -> Hashable:
        """Start a new aggregation instance at this node as initiator.

        Bootstraps thresholds from attribute values collected over real
        sample round-trips at up to ``neighbour_sample`` peers; peers
        that time out simply contribute nothing (gossip redundancy).
        """
        peers = self.directory.sample(self.neighbour_sample, self.rng)
        pools: list[np.ndarray] = []
        if peers:
            replies = await asyncio.gather(
                *(self._sample_peer(record.address) for record in peers),
                return_exceptions=True,
            )
            for record, outcome in zip(peers, replies):
                if isinstance(outcome, BaseException):
                    self.directory.mark_failure(record.peer_id)
                    continue
                self.directory.mark_alive(record.peer_id)
                pools.append(outcome)
        if pools:
            neighbour_values = np.concatenate(pools)
        else:
            neighbour_values = self.adam2.values
        return self.adam2.start_instance(
            neighbour_values=neighbour_values, round_=self.rounds
        )

    async def _sample_peer(self, address: tuple[str, int]) -> np.ndarray:
        msg_id = self.transport.next_msg_id()
        datagram = self.codec.encode_sample_request(self.node_id, msg_id)
        reply = await self.transport.request(datagram, address, msg_id)
        return reply.values


# ----------------------------------------------------------------------
# Process mode: one daemon per OS process
# ----------------------------------------------------------------------


def _summary_payload(daemon: NodeDaemon) -> dict[str, Any]:
    """JSON-serialisable summary of one node's run (process mode)."""
    completed = [
        {
            "instance_id": list(record.instance_id),
            "thresholds": [float(t) for t in record.estimate.thresholds],
            "fractions": [float(f) for f in record.estimate.fractions],
            "minimum": float(record.estimate.minimum),
            "maximum": float(record.estimate.maximum),
            "system_size": record.system_size,
            "round": record.round,
        }
        for record in daemon.adam2.completed
    ]
    return {
        "node_id": daemon.node_id,
        "rounds": daemon.rounds,
        "completed": completed,
        "values": [float(v) for v in daemon.adam2.values],
        "messages_sent": daemon.transport.messages_sent,
        "bytes_sent": daemon.transport.bytes_sent,
        "messages_received": daemon.transport.messages_received,
        "retries": daemon.transport.retries,
        "timeouts": daemon.transport.timeouts,
        "duplicates_suppressed": daemon.transport.duplicates_suppressed,
        "push_failures": daemon.push_failures,
    }


async def _run_spec(spec: dict[str, Any]) -> dict[str, Any]:
    """Execute one node process from its JSON spec; returns the summary."""
    config = Adam2Config(**spec.get("config", {}))
    rng = make_rng(int(spec["seed"]))
    fault = None
    drop_rate = float(spec.get("drop_rate", 0.0))
    if drop_rate > 0.0:
        fault = FaultInjector(spawn(rng), drop_rate=drop_rate)
    daemon = NodeDaemon(
        int(spec["node_id"]),
        np.asarray(spec["values"], dtype=float),
        config,
        rng,
        codec=WireCodec(int(spec.get("max_datagram", 8192))),
        gossip_period=float(spec.get("gossip_period", 0.05)),
        period_jitter=float(spec.get("period_jitter", 0.1)),
        neighbour_sample=spec.get("neighbour_sample"),
        sanitize=spec.get("sanitize"),
        fault=fault,
        transport_options=spec.get("transport_options"),
    )
    await daemon.open(str(spec.get("host", "127.0.0.1")), int(spec["port"]))
    for peer_id, host, port in spec.get("peers", []):
        daemon.add_peer(int(peer_id), (str(host), int(port)))
    try:
        # Let the rest of the cluster bind before the first datagram.
        await asyncio.sleep(float(spec.get("start_delay", 0.2)))
        trigger_at = spec.get("trigger_at")
        rounds = int(spec["rounds"])
        if trigger_at is None:
            await daemon.run(rounds)
        else:
            head = max(0, min(int(trigger_at), rounds))
            await daemon.run(head)
            await daemon.trigger_instance()
            await daemon.run(rounds - head)
        await daemon.drain()
        return _summary_payload(daemon)
    finally:
        daemon.close()


def main(argv: Sequence[str] | None = None) -> int:
    """``python -m repro.net.node --spec spec.json [--out result.json]``"""
    parser = argparse.ArgumentParser(description="Run one Adam2 node daemon")
    parser.add_argument("--spec", required=True, help="path to the node's JSON spec")
    parser.add_argument("--out", default=None, help="summary path (default: stdout)")
    ns = parser.parse_args(argv)
    with open(ns.spec, encoding="utf-8") as handle:
        spec = json.load(handle)
    summary = asyncio.run(_run_spec(spec))
    payload = json.dumps(summary)
    if ns.out is None:
        print(payload)
    else:
        with open(ns.out, "w", encoding="utf-8") as handle:
            handle.write(payload)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
