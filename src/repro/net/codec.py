"""The versioned Adam2 wire codec: datagram encoding of gossip payloads.

One UDP datagram carries one message.  Every message starts with a fixed
header (magic, version, kind, sender id, message id); push/pull messages
then carry a sequence of :class:`~repro.core.instance.InstanceState`
snapshots (instance id, TTL, weight, count average, extrema, and the
threshold/fraction arrays), sample messages carry attribute values for
the neighbour-based bootstrap.

The codec is *length-budgeted*: :meth:`WireCodec.encode_states` refuses
to build a datagram larger than ``max_datagram`` (callers trim their
payload with :meth:`WireCodec.fit_states` first), and :meth:`decode`
validates magic, version, and every length field so a truncated or
corrupted datagram raises :class:`~repro.errors.CodecError` instead of
yielding a half-parsed state.

All multi-byte fields are little-endian; arrays are float64.  Instance
ids on the wire are ``(origin u32, counter u32)`` pairs, matching the
``(node_id, counter)`` tuples :class:`~repro.core.node.Adam2Node`
assigns.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Hashable, Mapping

import numpy as np

from repro.core.instance import InstanceState
from repro.core.interpolation import InterpolationSet
from repro.errors import CodecError

__all__ = [
    "MSG_PUSH",
    "MSG_PULL",
    "MSG_SAMPLE_REQUEST",
    "MSG_SAMPLE_RESPONSE",
    "WIRE_VERSION",
    "Message",
    "WireCodec",
]

#: protocol magic: every Adam2 datagram starts with these two bytes
MAGIC = b"A2"
#: wire format version; bumped on any incompatible layout change
WIRE_VERSION = 1

#: message kinds
MSG_PUSH = 1  #: gossip request carrying the sender's instance snapshots
MSG_PULL = 2  #: gossip response carrying the responder's pre-merge snapshots
MSG_SAMPLE_REQUEST = 3  #: bootstrap request for a peer's attribute values
MSG_SAMPLE_RESPONSE = 4  #: bootstrap response carrying attribute values

_KINDS = frozenset({MSG_PUSH, MSG_PULL, MSG_SAMPLE_REQUEST, MSG_SAMPLE_RESPONSE})

#: header: magic, version, kind, sender id, message id
_HEADER = struct.Struct("<2sBBIQ")
#: state count / value count prefix
_COUNT = struct.Struct("<H")
#: per-state fixed part: origin, counter, ttl, flags, k, kv,
#: started_round, weight, count_average, minimum, maximum
_STATE_FIXED = struct.Struct("<IIHBHHIdddd")

_FLAG_INITIATOR = 0x01

_U32_MAX = 2**32 - 1
_U64_MAX = 2**64 - 1
_U16_MAX = 2**16 - 1


@dataclass(frozen=True, slots=True)
class Message:
    """A decoded datagram.

    Attributes:
        kind: one of the ``MSG_*`` constants.
        sender: wire id of the sending node.
        msg_id: sender-scoped message id (responses echo the request's).
        states: instance snapshots (push/pull messages; empty otherwise).
        values: attribute values (sample responses; empty otherwise).
    """

    kind: int
    sender: int
    msg_id: int
    states: dict[Hashable, InstanceState]
    values: np.ndarray

    @property
    def wants_reply(self) -> bool:
        """Whether this message kind expects a correlated response."""
        return self.kind in (MSG_PUSH, MSG_SAMPLE_REQUEST)


def _wire_instance_id(instance_id: Hashable) -> tuple[int, int]:
    """Validate and split a core instance id into its wire pair."""
    if (
        not isinstance(instance_id, tuple)
        or len(instance_id) != 2
        or not all(isinstance(part, int) for part in instance_id)
    ):
        raise CodecError(
            f"instance id {instance_id!r} is not a (node_id, counter) integer pair"
        )
    origin, counter = instance_id
    if not (0 <= origin <= _U32_MAX and 0 <= counter <= _U32_MAX):
        raise CodecError(f"instance id {instance_id!r} outside the u32 wire range")
    return origin, counter


class WireCodec:
    """Encodes and decodes Adam2 datagrams within a length budget.

    Args:
        max_datagram: hard upper bound on encoded datagram size in bytes
            (default 8 KiB — comfortably under the localhost UDP limit
            while keeping kernel buffers shallow).
    """

    def __init__(self, max_datagram: int = 8192):
        if max_datagram < _HEADER.size + _COUNT.size + _STATE_FIXED.size + 16:
            raise CodecError(f"max_datagram {max_datagram} cannot fit a single state")
        self.max_datagram = max_datagram

    # ------------------------------------------------------------------
    # Sizing
    # ------------------------------------------------------------------

    @staticmethod
    def state_size(state: InstanceState) -> int:
        """Encoded size of one instance snapshot in bytes."""
        k = int(state.h.thresholds.size)
        kv = int(state.v_thresholds.size)
        return _STATE_FIXED.size + 8 * (2 * k + 2 * kv)

    def fit_states(
        self, states: Mapping[Hashable, InstanceState]
    ) -> dict[Hashable, InstanceState]:
        """The largest prefix of ``states`` that fits the datagram budget.

        Iteration order is preserved (callers order by importance, e.g.
        highest TTL first); states that do not fit are dropped — gossip
        is redundant, so a dropped state rides a later datagram.
        """
        budget = self.max_datagram - _HEADER.size - _COUNT.size
        kept: dict[Hashable, InstanceState] = {}
        for iid, state in states.items():
            size = self.state_size(state)
            if size > budget:
                break
            budget -= size
            kept[iid] = state
        return kept

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------

    def _header(self, kind: int, sender: int, msg_id: int) -> bytes:
        if kind not in _KINDS:
            raise CodecError(f"unknown message kind {kind}")
        if not 0 <= sender <= _U32_MAX:
            raise CodecError(f"sender id {sender} outside the u32 wire range")
        if not 0 <= msg_id <= _U64_MAX:
            raise CodecError(f"message id {msg_id} outside the u64 wire range")
        return _HEADER.pack(MAGIC, WIRE_VERSION, kind, sender, msg_id)

    def encode_states(
        self,
        kind: int,
        sender: int,
        msg_id: int,
        states: Mapping[Hashable, InstanceState],
    ) -> bytes:
        """Encode a push or pull datagram carrying instance snapshots."""
        if kind not in (MSG_PUSH, MSG_PULL):
            raise CodecError(f"kind {kind} does not carry instance states")
        if len(states) > _U16_MAX:
            raise CodecError(f"too many states for one datagram: {len(states)}")
        parts = [self._header(kind, sender, msg_id), _COUNT.pack(len(states))]
        for iid, state in states.items():
            origin, counter = _wire_instance_id(iid)
            thresholds = np.ascontiguousarray(state.h.thresholds, dtype="<f8")
            fractions = np.ascontiguousarray(state.h.fractions, dtype="<f8")
            v_thresholds = np.ascontiguousarray(state.v_thresholds, dtype="<f8")
            v_fractions = np.ascontiguousarray(state.v_fractions, dtype="<f8")
            if thresholds.size != fractions.size or v_thresholds.size != v_fractions.size:
                raise CodecError(f"state {iid!r} has mismatched threshold/fraction arrays")
            if thresholds.size > _U16_MAX or v_thresholds.size > _U16_MAX:
                raise CodecError(f"state {iid!r} has too many interpolation points")
            if not 0 <= state.ttl <= _U16_MAX:
                raise CodecError(f"state {iid!r} TTL {state.ttl} outside the u16 wire range")
            flags = _FLAG_INITIATOR if state.initiator else 0
            parts.append(_STATE_FIXED.pack(
                origin,
                counter,
                state.ttl,
                flags,
                thresholds.size,
                v_thresholds.size,
                max(0, min(int(state.started_round), _U32_MAX)),
                float(state.weight),
                float(state.count_average),
                float(state.h.minimum),
                float(state.h.maximum),
            ))
            parts.append(thresholds.tobytes())
            parts.append(fractions.tobytes())
            parts.append(v_thresholds.tobytes())
            parts.append(v_fractions.tobytes())
        datagram = b"".join(parts)
        if len(datagram) > self.max_datagram:
            raise CodecError(
                f"datagram of {len(datagram)} bytes exceeds the "
                f"{self.max_datagram}-byte budget ({len(states)} states); "
                f"trim the payload with fit_states() first"
            )
        return datagram

    def encode_sample_request(self, sender: int, msg_id: int) -> bytes:
        """Encode a bootstrap request for a peer's attribute values."""
        return self._header(MSG_SAMPLE_REQUEST, sender, msg_id)

    def encode_sample_response(self, sender: int, msg_id: int, values: np.ndarray) -> bytes:
        """Encode a bootstrap response carrying attribute values."""
        values = np.ascontiguousarray(np.atleast_1d(values), dtype="<f8")
        budget = (self.max_datagram - _HEADER.size - _COUNT.size) // 8
        if values.size > min(budget, _U16_MAX):
            values = values[: min(budget, _U16_MAX)]
        return (
            self._header(MSG_SAMPLE_RESPONSE, sender, msg_id)
            + _COUNT.pack(values.size)
            + values.tobytes()
        )

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------

    def decode(self, datagram: bytes) -> Message:
        """Decode one datagram; malformed input raises :class:`CodecError`."""
        if len(datagram) > self.max_datagram:
            raise CodecError(f"datagram of {len(datagram)} bytes exceeds the budget")
        if len(datagram) < _HEADER.size:
            raise CodecError(f"datagram of {len(datagram)} bytes is shorter than the header")
        magic, version, kind, sender, msg_id = _HEADER.unpack_from(datagram, 0)
        if magic != MAGIC:
            raise CodecError(f"bad magic {magic!r}")
        if version != WIRE_VERSION:
            raise CodecError(f"unsupported wire version {version} (speak {WIRE_VERSION})")
        if kind not in _KINDS:
            raise CodecError(f"unknown message kind {kind}")
        offset = _HEADER.size
        states: dict[Hashable, InstanceState] = {}
        values = np.empty(0, dtype=float)
        if kind in (MSG_PUSH, MSG_PULL):
            states, offset = self._decode_states(datagram, offset)
        elif kind == MSG_SAMPLE_RESPONSE:
            values, offset = self._decode_values(datagram, offset)
        if offset != len(datagram):
            raise CodecError(f"{len(datagram) - offset} trailing bytes after payload")
        return Message(kind=kind, sender=sender, msg_id=msg_id, states=states, values=values)

    def _decode_states(
        self, datagram: bytes, offset: int
    ) -> tuple[dict[Hashable, InstanceState], int]:
        if len(datagram) < offset + _COUNT.size:
            raise CodecError("datagram truncated before the state count")
        (count,) = _COUNT.unpack_from(datagram, offset)
        offset += _COUNT.size
        states: dict[Hashable, InstanceState] = {}
        for _ in range(count):
            if len(datagram) < offset + _STATE_FIXED.size:
                raise CodecError("datagram truncated inside a state header")
            (
                origin, counter, ttl, flags, k, kv, started_round,
                weight, count_average, minimum, maximum,
            ) = _STATE_FIXED.unpack_from(datagram, offset)
            offset += _STATE_FIXED.size
            arrays_bytes = 8 * (2 * k + 2 * kv)
            if len(datagram) < offset + arrays_bytes:
                raise CodecError("datagram truncated inside a state's arrays")
            thresholds = np.frombuffer(datagram, dtype="<f8", count=k, offset=offset).copy()
            offset += 8 * k
            fractions = np.frombuffer(datagram, dtype="<f8", count=k, offset=offset).copy()
            offset += 8 * k
            v_thresholds = np.frombuffer(datagram, dtype="<f8", count=kv, offset=offset).copy()
            offset += 8 * kv
            v_fractions = np.frombuffer(datagram, dtype="<f8", count=kv, offset=offset).copy()
            offset += 8 * kv
            if not np.all(np.isfinite(thresholds)) or not np.all(np.isfinite(fractions)):
                raise CodecError(f"state ({origin}, {counter}) carries non-finite points")
            if not (np.isfinite(minimum) and np.isfinite(maximum) and minimum <= maximum):
                raise CodecError(
                    f"state ({origin}, {counter}) extremes [{minimum}, {maximum}] invalid"
                )
            iid = (origin, counter)
            if iid in states:
                raise CodecError(f"duplicate state {iid!r} in one datagram")
            states[iid] = InstanceState(
                instance_id=iid,
                h=InterpolationSet(
                    thresholds=thresholds,
                    fractions=fractions,
                    minimum=float(minimum),
                    maximum=float(maximum),
                ),
                weight=float(weight),
                v_thresholds=v_thresholds,
                v_fractions=v_fractions,
                count_average=float(count_average),
                ttl=int(ttl),
                started_round=int(started_round),
                initiator=bool(flags & _FLAG_INITIATOR),
            )
        return states, offset

    def _decode_values(self, datagram: bytes, offset: int) -> tuple[np.ndarray, int]:
        if len(datagram) < offset + _COUNT.size:
            raise CodecError("datagram truncated before the value count")
        (count,) = _COUNT.unpack_from(datagram, offset)
        offset += _COUNT.size
        if len(datagram) < offset + 8 * count:
            raise CodecError("datagram truncated inside the value array")
        values = np.frombuffer(datagram, dtype="<f8", count=count, offset=offset).copy()
        offset += 8 * count
        if not np.all(np.isfinite(values)):
            raise CodecError("sample response carries non-finite values")
        return values, offset
