"""Real-network runtime: Adam2 over actual UDP sockets on localhost.

The package layers the engine-independent protocol core onto real
networking, bottom-up:

* :mod:`repro.net.codec` — the versioned, length-budgeted wire format;
* :mod:`repro.net.faults` — seeded drop/delay/reorder fault injection;
* :mod:`repro.net.transport` — asyncio UDP endpoint with retries,
  timeouts, and duplicate suppression (at-most-once merges);
* :mod:`repro.net.peers` — liveness-aware peer directory;
* :mod:`repro.net.node` — the node daemon (gossip timer, instance
  lifecycle, request handling) plus a per-process CLI;
* :mod:`repro.net.cluster` — the localhost cluster harness, in-process
  or one-OS-process-per-node;
* :mod:`repro.net.backend` — the ``net`` backend behind
  :func:`repro.api.run`.

This is the only package allowed to open sockets or read real clocks
(lint rule ADM008 keeps everything else deterministic).

Attribute access is lazy (PEP 562) so ``python -m repro.net.node`` does
not re-execute a module the package already imported.
"""

from __future__ import annotations

from importlib import import_module
from typing import Any

__all__ = [
    "FaultInjector",
    "LocalCluster",
    "Message",
    "NetBackend",
    "NodeDaemon",
    "FrameCodec",
    "PeerDirectory",
    "PeerRecord",
    "ServiceClient",
    "ServiceEndpoint",
    "ServiceWorkerPool",
    "UdpTransport",
    "WIRE_VERSION",
    "WireCodec",
    "run_process_cluster",
]

_EXPORTS = {
    "FaultInjector": "repro.net.faults",
    "LocalCluster": "repro.net.cluster",
    "Message": "repro.net.codec",
    "NetBackend": "repro.net.backend",
    "NodeDaemon": "repro.net.node",
    "FrameCodec": "repro.net.frames",
    "PeerDirectory": "repro.net.peers",
    "PeerRecord": "repro.net.peers",
    "ServiceClient": "repro.net.service_endpoint",
    "ServiceEndpoint": "repro.net.service_endpoint",
    "ServiceWorkerPool": "repro.net.service_worker",
    "UdpTransport": "repro.net.transport",
    "WIRE_VERSION": "repro.net.codec",
    "WireCodec": "repro.net.codec",
    "run_process_cluster": "repro.net.cluster",
}


def __getattr__(name: str) -> Any:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    return getattr(import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
