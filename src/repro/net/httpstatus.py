"""A read-only HTTP/1.1 JSON status surface for the estimation service.

Operators (and the restart smoke in CI) want to *look at* a running
service without speaking the query protocol: current version and
staleness, divergence history, restart counts, the served polyline, and
the obs hub's counters.  This module serves exactly that — four GET
routes over a tiny asyncio HTTP/1.1 implementation with no third-party
dependencies:

* ``GET /status``   — :meth:`ServiceHandle.status` (version, staleness,
  restart/divergence state, persistence info when durable);
* ``GET /estimate`` — polyline + metadata of the latest snapshot, or of
  ``?version=N``; 503 while nothing is published;
* ``GET /history``  — metadata of every retained snapshot (divergence
  trail), oldest first;
* ``GET /metrics``  — the hub's counters/gauges/histograms snapshot.

The surface is deliberately read-only (no pin/unpin, no refresh): every
mutation stays on the authenticated-by-locality TCP query protocol.
Responses are ``Connection: close`` — status polls are rare and
one-shot, so connection reuse buys nothing and keeps the server loop
trivial.  Lives in :mod:`repro.net` because it binds a real socket
(ADM008: the one package allowed to).
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import TYPE_CHECKING
from urllib.parse import parse_qs, urlsplit

from repro.errors import NetworkError, ServiceError

if TYPE_CHECKING:  # runtime import stays lazy (repro.service imports repro.api)
    from repro.service.handle import ServiceHandle

__all__ = ["StatusServer", "StatusServerThread"]

_MAX_REQUEST_LINE = 8 * 1024
_MAX_HEADER_BYTES = 32 * 1024

_STATUS_PHRASES = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    503: "Service Unavailable",
}

_ROUTES = ("/status", "/estimate", "/history", "/metrics")


def _response(status: int, body: dict[str, object] | list[object]) -> bytes:
    payload = json.dumps(body, separators=(",", ":")).encode()
    phrase = _STATUS_PHRASES.get(status, "OK")
    head = (
        f"HTTP/1.1 {status} {phrase}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"Connection: close\r\n"
        f"\r\n"
    ).encode()
    return head + payload


class StatusServer:
    """Serves one :class:`ServiceHandle`'s status over HTTP (read-only).

    One asyncio loop, ephemeral port with ``port=0`` (readable as
    :attr:`port` after :meth:`start`).  Use as an async context manager
    next to a :class:`~repro.net.service_endpoint.ServiceEndpoint`, or
    through :class:`StatusServerThread` when the serving loop lives
    elsewhere (the worker-pool path).
    """

    def __init__(
        self,
        handle: "ServiceHandle",
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.handle = handle
        self.host = host
        self._requested_port = port
        self._server: asyncio.Server | None = None
        self.port: int | None = None

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        if self._server is not None:
            raise NetworkError("status server already started")
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self._requested_port
        )
        sockets = self._server.sockets or ()
        if not sockets:  # pragma: no cover - start_server binds or raises
            raise NetworkError("status server bound no socket")
        self.port = int(sockets[0].getsockname()[1])

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
            self.port = None

    async def __aenter__(self) -> "StatusServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    # -- one connection = one request -----------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            out = await self._read_and_dispatch(reader)
            writer.write(out)
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.LimitOverrunError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _read_and_dispatch(self, reader: asyncio.StreamReader) -> bytes:
        request_line = await reader.readline()
        if not request_line or len(request_line) > _MAX_REQUEST_LINE:
            return _response(400, {"error": "unreadable request line"})
        # Drain headers up to the blank line; the surface ignores them
        # (no bodies, no content negotiation) but must consume them to
        # answer pipelined-free clients like curl correctly.
        drained = 0
        while True:
            line = await reader.readline()
            drained += len(line)
            if line in (b"\r\n", b"\n", b""):
                break
            if drained > _MAX_HEADER_BYTES:
                return _response(400, {"error": "header section too large"})
        return self._dispatch(request_line)

    def _dispatch(self, request_line: bytes) -> bytes:
        metrics = self.handle.hub.metrics
        metrics.counter("http_requests_total").inc()
        try:
            parts = request_line.decode("latin-1").split()
        except UnicodeDecodeError:  # pragma: no cover - latin-1 never fails
            parts = []
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            metrics.counter("http_errors_total").inc()
            return _response(400, {"error": "malformed request line"})
        method, target, _version = parts
        if method != "GET":
            metrics.counter("http_errors_total").inc()
            return _response(405, {"error": f"method {method} not allowed; GET only"})
        split = urlsplit(target)
        status, body = self._route(split.path, parse_qs(split.query))
        if status >= 400:
            metrics.counter("http_errors_total").inc()
        return _response(status, body)

    # -- routes ---------------------------------------------------------

    def _route(
        self, path: str, query: dict[str, list[str]]
    ) -> tuple[int, dict[str, object] | list[object]]:
        if path == "/status":
            return 200, self.handle.status()
        if path == "/history":
            return 200, list(self.handle.history())
        if path == "/metrics":
            return 200, self.handle.metrics()
        if path == "/estimate":
            return self._estimate(query)
        return 404, {
            "error": f"unknown path {path!r}",
            "routes": list(_ROUTES),
        }

    def _estimate(
        self, query: dict[str, list[str]]
    ) -> tuple[int, dict[str, object]]:
        version: int | None = None
        raw = query.get("version", [])
        if raw:
            try:
                version = int(raw[-1])
            except ValueError:
                return 400, {"error": f"version must be an integer, got {raw[-1]!r}"}
        store = self.handle.store
        try:
            snapshot = store.latest() if version is None else store.get(version)
        except ServiceError as exc:
            return 503, {"error": exc.code, "message": str(exc)}
        xs, ys = snapshot.estimate.polyline()
        return 200, {
            "meta": snapshot.meta(),
            "polyline": {"xs": xs.tolist(), "ys": ys.tolist()},
        }


class StatusServerThread:
    """Runs a :class:`StatusServer` on a dedicated thread + event loop.

    For serving paths whose main thread is busy elsewhere (the
    worker-pool branch of ``serve_blocking`` sleeps between scheduler
    cycles): :meth:`start` blocks until the port is bound, :meth:`stop`
    until the loop is down.
    """

    def __init__(
        self,
        handle: "ServiceHandle",
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._server = StatusServer(handle, host=host, port=port)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._stopped: asyncio.Event | None = None

    @property
    def port(self) -> int | None:
        return self._server.port

    @property
    def host(self) -> str:
        return self._server.host

    def start(self, timeout: float = 10.0) -> None:
        if self._thread is not None:
            raise NetworkError("status server thread already started")
        started = threading.Event()
        failure: list[BaseException] = []

        async def _run() -> None:
            self._stopped = asyncio.Event()
            try:
                await self._server.start()
            except BaseException as exc:  # noqa: BLE001 - reported to starter
                failure.append(exc)
                started.set()
                return
            started.set()
            await self._stopped.wait()
            await self._server.stop()

        def _main() -> None:
            loop = asyncio.new_event_loop()
            self._loop = loop
            try:
                loop.run_until_complete(_run())
            finally:
                loop.close()

        thread = threading.Thread(target=_main, name="adam2-status", daemon=True)
        thread.start()
        self._thread = thread
        if not started.wait(timeout):
            raise NetworkError("status server thread never reported ready")
        if failure:
            raise NetworkError(f"status server failed to start: {failure[0]}")

    def stop(self, timeout: float = 10.0) -> None:
        thread = self._thread
        loop = self._loop
        stopped = self._stopped
        if thread is None or loop is None or stopped is None:
            return
        try:
            loop.call_soon_threadsafe(stopped.set)
        except RuntimeError:  # pragma: no cover - loop already closed
            pass
        thread.join(timeout)
        self._thread = None
        self._loop = None
        self._stopped = None

    def __enter__(self) -> "StatusServerThread":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
