"""The three simulation backends behind the :func:`repro.api.run` facade.

Each backend adapts one engine to the common contract: build the system,
run ``spec.instances`` consecutive aggregation instances, emit
observability events through the shared :class:`~repro.obs.ObserverHub`,
and reduce the outcome to a :class:`~repro.api.result.RunResult`.

Backends declare the option names they support; the facade rejects
anything else loudly instead of silently dropping it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Hashable, Iterable

import numpy as np

from repro.api.result import (
    InstanceSummary,
    RunResult,
    completed_for,
    instance_state_of,
    summarise_completed,
)
from repro.core.cdf import EmpiricalCDF, EstimatedCDF
from repro.core.config import Adam2Config
from repro.core.node import Adam2Node
from repro.errors import ConfigurationError
from repro.obs.bridges import RateTracker, instance_round_sample
from repro.obs.events import InstanceCompleted, InstanceStarted
from repro.obs.observer import ObserverHub
from repro.rngs import make_rng, spawn
from repro.workloads.base import AttributeWorkload

__all__ = ["AsyncBackend", "Backend", "FastBackend", "RoundBackend", "RunSpec"]


@dataclass
class RunSpec:
    """Everything a backend needs to execute one run."""

    workload: AttributeWorkload
    n_nodes: int
    config: Adam2Config
    instances: int
    seed: int
    options: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_nodes < 2:
            raise ConfigurationError("need at least 2 nodes")
        if self.instances < 1:
            raise ConfigurationError("need at least one instance")


class Backend(ABC):
    """One simulation substrate runnable through the facade."""

    #: registry name (the ``backend=`` argument of :func:`repro.api.run`)
    name: str = "backend"
    #: option keys this backend understands; anything else fails loudly
    supported_options: frozenset[str] = frozenset()

    @abstractmethod
    def run(self, spec: RunSpec, hub: ObserverHub) -> RunResult:
        """Execute the run described by ``spec``, reporting through ``hub``."""

    def validate_options(self, options: dict[str, object]) -> None:
        unknown = sorted(set(options) - self.supported_options)
        if unknown:
            supported = ", ".join(sorted(self.supported_options)) or "(none)"
            raise ConfigurationError(
                f"backend {self.name!r} does not support option(s) {unknown}; "
                f"supported: {supported}"
            )


# ----------------------------------------------------------------------
# Shared helpers for the object-per-node backends
# ----------------------------------------------------------------------
# The reduction logic itself (completed_for / summarise_completed /
# instance_state_of) lives in repro.api.result, shared with the net
# backend and the process-cluster harness.


def _emit_instance_started(
    hub: ObserverHub, nodes: Iterable[Adam2Node], instance_id: Hashable, index: int
) -> np.ndarray:
    """Emit the instance-start event; returns the instance thresholds."""
    state = instance_state_of(nodes, instance_id)
    if state is None:  # pragma: no cover - trigger always leaves state behind
        raise ConfigurationError(f"instance {instance_id!r} has no live state")
    if hub.probes_enabled:
        hub.instance_started(InstanceStarted(
            instance=index,
            thresholds=tuple(float(t) for t in state.h.thresholds),
            v_thresholds=tuple(float(t) for t in state.v_thresholds),
        ))
    return state.h.thresholds.copy()


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------


class FastBackend(Backend):
    """The vectorised simulator (:class:`repro.fastsim.adam2.Adam2Simulation`)."""

    name = "fast"
    supported_options = frozenset({
        "exchange", "churn_rate", "neighbour_sample", "node_sample", "sanitize",
        "track", "track_every", "confidence_sample", "drift",
        "warmup_instances", "system_errors", "dtype", "shards", "shard_mix",
    })

    #: options meaningless under sharding (they need full-state access)
    _SHARD_INCOMPATIBLE = (
        "exchange", "churn_rate", "track", "track_every",
        "confidence_sample", "drift", "warmup_instances", "system_errors",
    )

    def run(self, spec: RunSpec, hub: ObserverHub) -> RunResult:
        from repro.fastsim.adam2 import Adam2Simulation

        opts = dict(spec.options)
        shards = int(opts.get("shards", 1))  # type: ignore[arg-type]
        if shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        if shards > 1:
            return self._run_sharded(spec, hub, opts, shards)
        sim = Adam2Simulation(
            spec.workload,
            spec.n_nodes,
            spec.config,
            seed=spec.seed,
            exchange=str(opts.get("exchange", "sequential")),
            churn_rate=float(opts.get("churn_rate", 0.0)),  # type: ignore[arg-type]
            neighbour_sample=opts.get("neighbour_sample"),  # type: ignore[arg-type]
            node_sample=int(opts.get("node_sample", 64)),  # type: ignore[arg-type]
            sanitize=opts.get("sanitize"),  # type: ignore[arg-type]
            dtype=str(opts.get("dtype", "float64")),
            obs=hub,
        )
        for _ in range(int(opts.get("warmup_instances", 0))):  # type: ignore[arg-type]
            sim.run_instance()
        track = bool(opts.get("track", False))
        track_every = int(opts.get("track_every", 1))  # type: ignore[arg-type]
        confidence_sample = opts.get("confidence_sample")
        drift = opts.get("drift")

        summaries: list[InstanceSummary] = []
        estimate: EstimatedCDF | None = None
        for index in range(spec.instances):
            with hub.span("instance"):
                outcome = sim.run_instance(
                    track=track,
                    track_every=track_every,
                    confidence_sample=confidence_sample,  # type: ignore[arg-type]
                    drift=drift,
                )
            reached_mask = outcome.joined & outcome.participants
            reached = int(reached_mask.sum())
            if reached:
                fractions = outcome.fractions[reached_mask].mean(axis=0)
                estimate = outcome.mean_estimate()
            else:
                fractions = np.full(outcome.thresholds.shape, np.nan)
            summaries.append(InstanceSummary(
                index=index,
                thresholds=outcome.thresholds,
                fractions=fractions,
                errors_entire=outcome.errors_entire,
                errors_points=outcome.errors_points,
                reached=reached,
                messages=outcome.messages_total,
                bytes=outcome.bytes_total,
                trace=outcome.trace,
                raw=outcome,
            ))

        result = RunResult(
            backend=self.name,
            n_nodes=spec.n_nodes,
            seed=spec.seed,
            config=spec.config,
            instances=summaries,
            estimate=estimate,
        )
        if bool(opts.get("system_errors", False)):
            result.extras["system_errors"] = sim.system_errors()
        result.extras["simulation"] = sim
        return result

    def _run_sharded(
        self, spec: RunSpec, hub: ObserverHub, opts: dict[str, object], shards: int
    ) -> RunResult:
        """Route ``shards=N`` runs through the multiprocessing driver.

        The shard driver targets the static-population N-scaling regime,
        so options that require per-round full-state access are rejected
        loudly rather than silently ignored.
        """
        from repro.fastsim.shard import DEFAULT_SHARD_MIX, ShardedAdam2

        conflicting = sorted(key for key in self._SHARD_INCOMPATIBLE if key in opts)
        if conflicting:
            raise ConfigurationError(
                f"option(s) {conflicting} are not supported with shards > 1"
            )
        summaries: list[InstanceSummary] = []
        estimate: EstimatedCDF | None = None
        with ShardedAdam2(
            spec.workload,
            spec.n_nodes,
            spec.config,
            seed=spec.seed,
            shards=shards,
            shard_mix=float(opts.get("shard_mix", DEFAULT_SHARD_MIX)),  # type: ignore[arg-type]
            neighbour_sample=opts.get("neighbour_sample"),  # type: ignore[arg-type]
            node_sample=int(opts.get("node_sample", 64)),  # type: ignore[arg-type]
            sanitize=opts.get("sanitize"),  # type: ignore[arg-type]
            dtype=str(opts.get("dtype", "float64")),
            obs=hub,
        ) as sim:
            for index in range(spec.instances):
                with hub.span("instance"):
                    outcome = sim.run_instance()
                if outcome.reached:
                    estimate = outcome.estimate
                summaries.append(InstanceSummary(
                    index=index,
                    thresholds=outcome.thresholds,
                    fractions=outcome.estimate.fractions,
                    errors_entire=outcome.errors_entire,
                    errors_points=outcome.errors_points,
                    reached=outcome.reached,
                    messages=outcome.messages_total,
                    bytes=outcome.bytes_total,
                    trace=None,
                    raw=outcome,
                ))
        result = RunResult(
            backend=self.name,
            n_nodes=spec.n_nodes,
            seed=spec.seed,
            config=spec.config,
            instances=summaries,
            estimate=estimate,
        )
        result.extras["shards"] = shards
        return result


class RoundBackend(Backend):
    """The synchronous object-per-node engine (PeerSim-style rounds)."""

    name = "round"
    supported_options = frozenset({
        "overlay", "degree", "loss_rate", "churn", "neighbour_sample",
        "node_sample", "sanitize",
    })

    def run(self, spec: RunSpec, hub: ObserverHub) -> RunResult:
        from repro.core.protocol import Adam2Protocol
        from repro.simulation.runner import build_engine

        opts = dict(spec.options)
        rng = make_rng(spec.seed)
        measure_rng = spawn(rng)
        protocol = Adam2Protocol(
            spec.config,
            scheduler="manual",
            neighbour_sample=opts.get("neighbour_sample"),  # type: ignore[arg-type]
        )
        engine = build_engine(
            spec.workload,
            spec.n_nodes,
            [protocol],
            rng,
            overlay=opts.get("overlay", "mesh"),  # type: ignore[arg-type]
            degree=int(opts.get("degree", 20)),  # type: ignore[arg-type]
            churn=opts.get("churn"),
            loss_rate=float(opts.get("loss_rate", 0.0)),  # type: ignore[arg-type]
            sanitize=opts.get("sanitize"),  # type: ignore[arg-type]
            obs=hub,
        )
        node_sample = int(opts.get("node_sample", 64))  # type: ignore[arg-type]
        rounds = spec.config.rounds_per_instance
        probes = hub if hub.probes_enabled else None
        tracker = RateTracker()

        summaries: list[InstanceSummary] = []
        estimate: EstimatedCDF | None = None
        for index in range(spec.instances):
            instance_id = protocol.trigger_instance(engine)
            thresholds = _emit_instance_started(
                hub, protocol.adam2_nodes(engine), instance_id, index
            )
            messages_start, bytes_start = self._traffic(engine)
            mark_messages, mark_bytes = messages_start, bytes_start
            with hub.span("instance"):
                for round_index in range(rounds):
                    engine.run_round()
                    if probes is not None:
                        messages_now, bytes_now = self._traffic(engine)
                        probes.round_sample(instance_round_sample(
                            protocol.adam2_nodes(engine),
                            instance_id,
                            instance_index=index,
                            round_index=round_index + 1,
                            messages=messages_now - mark_messages,
                            bytes_=bytes_now - mark_bytes,
                            tracker=tracker,
                        ))
                        mark_messages, mark_bytes = messages_now, bytes_now
            messages_end, bytes_end = self._traffic(engine)
            summary, consensus = summarise_completed(
                completed_for(protocol.adam2_nodes(engine), instance_id),
                engine.node_count,
                EmpiricalCDF(engine.attribute_values()),
                thresholds,
                index,
                messages_end - messages_start,
                bytes_end - bytes_start,
                node_sample,
                measure_rng,
            )
            summaries.append(summary)
            if consensus is not None:
                estimate = consensus
            if probes is not None:
                probes.instance_completed(InstanceCompleted(
                    instance=index,
                    rounds=rounds,
                    reached=summary.reached,
                    err_max=summary.errors_entire.maximum,
                    err_avg=summary.errors_entire.average,
                    messages=summary.messages,
                    bytes=summary.bytes,
                ))

        result = RunResult(
            backend=self.name,
            n_nodes=spec.n_nodes,
            seed=spec.seed,
            config=spec.config,
            instances=summaries,
            estimate=estimate,
        )
        result.extras["engine"] = engine
        result.extras["protocol"] = protocol
        return result

    @staticmethod
    def _traffic(engine: object) -> tuple[int, int]:
        network = engine.network  # type: ignore[attr-defined]
        return (
            int(sum(network.messages_sent.values())),
            int(sum(network.bytes_sent.values())),
        )


class AsyncBackend(Backend):
    """The asynchronous discrete-event engine (per-node clocks)."""

    name = "async"
    supported_options = frozenset({
        "gossip_period", "period_jitter", "latency", "loss_rate",
        "neighbour_sample", "node_sample", "sanitize", "drain_periods",
    })

    def run(self, spec: RunSpec, hub: ObserverHub) -> RunResult:
        from repro.asyncsim.adam2 import AsyncAdam2
        from repro.asyncsim.engine import AsyncEngine
        from repro.overlay.random_graph import FullMeshOverlay

        opts = dict(spec.options)
        rng = make_rng(spec.seed)
        measure_rng = spawn(rng)
        protocol = AsyncAdam2(
            spec.config,
            scheduler="manual",
            neighbour_sample=opts.get("neighbour_sample"),  # type: ignore[arg-type]
        )
        period = float(opts.get("gossip_period", 1.0))  # type: ignore[arg-type]
        engine = AsyncEngine(
            FullMeshOverlay([]),
            protocol,
            spawn(rng),
            gossip_period=period,
            period_jitter=float(opts.get("period_jitter", 0.05)),  # type: ignore[arg-type]
            latency=opts.get("latency"),  # type: ignore[arg-type]
            loss_rate=float(opts.get("loss_rate", 0.0)),  # type: ignore[arg-type]
            sanitize=opts.get("sanitize"),  # type: ignore[arg-type]
            obs=hub,
        )
        engine.populate(spec.workload.sample(spec.n_nodes, spawn(rng)))
        node_sample = int(opts.get("node_sample", 64))  # type: ignore[arg-type]
        rounds = spec.config.rounds_per_instance
        # Per-node clocks drift (jitter) and messages ride a latency
        # model, so after `rounds` nominal periods some peers still hold
        # live state; the drain lets the stragglers tick their TTLs out.
        drain = int(opts.get(
            "drain_periods",
            max(3, int(np.ceil(rounds * engine.period_jitter)) + 2),
        ))  # type: ignore[arg-type]
        probes = hub if hub.probes_enabled else None
        tracker = RateTracker()

        summaries: list[InstanceSummary] = []
        estimate: EstimatedCDF | None = None
        for index in range(spec.instances):
            instance_id = protocol.trigger_instance(engine)
            thresholds = _emit_instance_started(
                hub, protocol.adam2_nodes(engine), instance_id, index
            )
            messages_start, bytes_start = engine.messages_sent, engine.bytes_sent
            mark_messages, mark_bytes = messages_start, bytes_start
            with hub.span("instance"):
                for round_index in range(rounds + drain):
                    engine.run_for(period)
                    if probes is not None:
                        probes.round_sample(instance_round_sample(
                            protocol.adam2_nodes(engine),
                            instance_id,
                            instance_index=index,
                            round_index=round_index + 1,
                            messages=engine.messages_sent - mark_messages,
                            bytes_=engine.bytes_sent - mark_bytes,
                            tracker=tracker,
                        ))
                        mark_messages, mark_bytes = engine.messages_sent, engine.bytes_sent
                    if round_index + 1 >= rounds and instance_state_of(
                        protocol.adam2_nodes(engine), instance_id
                    ) is None:
                        break
            summary, consensus = summarise_completed(
                completed_for(protocol.adam2_nodes(engine), instance_id),
                len(engine.nodes),
                EmpiricalCDF(engine.attribute_values()),
                thresholds,
                index,
                engine.messages_sent - messages_start,
                engine.bytes_sent - bytes_start,
                node_sample,
                measure_rng,
            )
            summaries.append(summary)
            if consensus is not None:
                estimate = consensus
            if probes is not None:
                probes.instance_completed(InstanceCompleted(
                    instance=index,
                    rounds=rounds,
                    reached=summary.reached,
                    err_max=summary.errors_entire.maximum,
                    err_avg=summary.errors_entire.average,
                    messages=summary.messages,
                    bytes=summary.bytes,
                ))

        result = RunResult(
            backend=self.name,
            n_nodes=spec.n_nodes,
            seed=spec.seed,
            config=spec.config,
            instances=summaries,
            estimate=estimate,
        )
        result.extras["engine"] = engine
        result.extras["protocol"] = protocol
        return result
