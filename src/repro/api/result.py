"""The backend-agnostic result shape returned by :func:`repro.api.run`.

Every backend — vectorised fastsim, the round-based engine, the
asynchronous event-driven engine — reduces a run to the same structure:
one :class:`InstanceSummary` per aggregation instance plus a consensus
:class:`~repro.core.cdf.EstimatedCDF`, so experiments, observers and
benchmarks treat all backends identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.cdf import EstimatedCDF
from repro.core.config import Adam2Config
from repro.errors import SimulationError
from repro.metrics.convergence import ConvergenceTrace
from repro.types import ErrorPair

__all__ = ["InstanceSummary", "RunResult"]


@dataclass
class InstanceSummary:
    """Uniform per-instance outcome across backends.

    Attributes:
        index: instance index within the run (0-based).
        thresholds: the instance's shared interpolation thresholds.
        fractions: consensus fraction estimates at the thresholds (mean
            over the peers that completed the instance).
        errors_entire: ``(Err_m, Err_a)`` over the whole CDF domain.
        errors_points: the same pair restricted to the thresholds.
        reached: peers the instance reached before terminating.
        messages: messages attributed to this instance.
        bytes: payload bytes attributed to this instance.
        trace: per-round error trace when tracking was requested
            (fast backend only).
        raw: the backend-native instance record (e.g.
            :class:`repro.fastsim.adam2.FastInstanceResult`) for
            backend-specific analysis; ``None`` when not applicable.
    """

    index: int
    thresholds: np.ndarray
    fractions: np.ndarray
    errors_entire: ErrorPair
    errors_points: ErrorPair
    reached: int
    messages: int
    bytes: int
    trace: ConvergenceTrace | None = None
    raw: object = None


@dataclass
class RunResult:
    """Outcome of one :func:`repro.api.run` call, identical across backends."""

    backend: str
    n_nodes: int
    seed: int
    config: Adam2Config
    instances: list[InstanceSummary] = field(default_factory=list)
    estimate: EstimatedCDF | None = None
    metrics: dict[str, object] = field(default_factory=dict)
    extras: dict[str, object] = field(default_factory=dict)

    @property
    def final(self) -> InstanceSummary:
        if not self.instances:
            raise SimulationError("run produced no instances")
        return self.instances[-1]

    @property
    def final_errors(self) -> ErrorPair:
        return self.final.errors_entire

    def errors_by_instance(self) -> tuple[list[float], list[float]]:
        """(max errors, avg errors) per instance — the Fig. 7 series."""
        return (
            [summary.errors_entire.maximum for summary in self.instances],
            [summary.errors_entire.average for summary in self.instances],
        )

    def __len__(self) -> int:
        return len(self.instances)
