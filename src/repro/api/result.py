"""The backend-agnostic result shape returned by :func:`repro.api.run`.

Every backend — vectorised fastsim, the round-based engine, the
asynchronous event-driven engine, the real-network runtime — reduces a
run to the same structure: one :class:`InstanceSummary` per aggregation
instance plus a consensus :class:`~repro.core.cdf.EstimatedCDF`, so
experiments, observers and benchmarks treat all backends identically.

The reduction *logic* lives here too: :func:`summarise_completed` folds
the per-node terminated records of one instance into an
:class:`InstanceSummary` (shared by the round, async, and net backends),
and :func:`record_from_payload` rebuilds a per-node record from the JSON
summary a node process emits (shared by the process-cluster harness).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable, Mapping, Sequence

import numpy as np

from repro.core.cdf import EmpiricalCDF, EstimatedCDF
from repro.core.config import Adam2Config
from repro.core.node import Adam2Node, CompletedInstance
from repro.errors import SimulationError
from repro.metrics.convergence import ConvergenceTrace
from repro.metrics.error import matrix_errors
from repro.types import ErrorPair

__all__ = [
    "InstanceSummary",
    "RunResult",
    "completed_for",
    "instance_state_of",
    "record_from_payload",
    "summarise_completed",
]


@dataclass
class InstanceSummary:
    """Uniform per-instance outcome across backends.

    Attributes:
        index: instance index within the run (0-based).
        thresholds: the instance's shared interpolation thresholds.
        fractions: consensus fraction estimates at the thresholds (mean
            over the peers that completed the instance).
        errors_entire: ``(Err_m, Err_a)`` over the whole CDF domain.
        errors_points: the same pair restricted to the thresholds.
        reached: peers the instance reached before terminating.
        messages: messages attributed to this instance.
        bytes: payload bytes attributed to this instance.
        trace: per-round error trace when tracking was requested
            (fast backend only).
        raw: the backend-native instance record (e.g.
            :class:`repro.fastsim.adam2.FastInstanceResult`) for
            backend-specific analysis; ``None`` when not applicable.
    """

    index: int
    thresholds: np.ndarray
    fractions: np.ndarray
    errors_entire: ErrorPair
    errors_points: ErrorPair
    reached: int
    messages: int
    bytes: int
    trace: ConvergenceTrace | None = None
    raw: object = None


@dataclass
class RunResult:
    """Outcome of one :func:`repro.api.run` call, identical across backends."""

    backend: str
    n_nodes: int
    seed: int
    config: Adam2Config
    instances: list[InstanceSummary] = field(default_factory=list)
    estimate: EstimatedCDF | None = None
    metrics: dict[str, object] = field(default_factory=dict)
    extras: dict[str, object] = field(default_factory=dict)

    @property
    def final(self) -> InstanceSummary:
        if not self.instances:
            raise SimulationError("run produced no instances")
        return self.instances[-1]

    @property
    def final_errors(self) -> ErrorPair:
        return self.final.errors_entire

    def errors_by_instance(self) -> tuple[list[float], list[float]]:
        """(max errors, avg errors) per instance — the Fig. 7 series."""
        return (
            [summary.errors_entire.maximum for summary in self.instances],
            [summary.errors_entire.average for summary in self.instances],
        )

    def __len__(self) -> int:
        return len(self.instances)


# ----------------------------------------------------------------------
# Shared reduction helpers (object-per-node backends and the net runtime)
# ----------------------------------------------------------------------


def completed_for(nodes: Iterable[Adam2Node], instance_id: Hashable) -> list[CompletedInstance]:
    """Each node's terminated record for one instance (reached nodes only)."""
    out: list[CompletedInstance] = []
    for adam2 in nodes:
        for record in adam2.completed:
            if record.instance_id == instance_id:
                out.append(record)
                break
    return out


def instance_state_of(nodes: Iterable[Adam2Node], instance_id: Hashable) -> object | None:
    """The first live per-node state found for ``instance_id`` (else None)."""
    for adam2 in nodes:
        state = adam2.instances.get(instance_id)
        if state is not None:
            return state
    return None


def summarise_completed(
    completed: Sequence[CompletedInstance],
    n_live: int,
    truth: EmpiricalCDF,
    thresholds: np.ndarray,
    index: int,
    messages: int,
    bytes_: int,
    node_sample: int,
    rng: np.random.Generator,
) -> tuple[InstanceSummary, EstimatedCDF | None]:
    """Reduce per-node terminated estimates to one :class:`InstanceSummary`.

    Mirrors the fastsim aggregation: errors over reached nodes, with every
    live-but-unreached node folded in at error 1 (its approximation is
    undefined), ``Err_m`` aggregated with max and ``Err_a`` with avg.
    """
    reached = len(completed)
    missing = max(n_live - reached, 0)
    if reached == 0:
        summary = InstanceSummary(
            index=index,
            thresholds=np.asarray(thresholds, dtype=float),
            fractions=np.full(np.asarray(thresholds).shape, np.nan),
            errors_entire=ErrorPair(1.0, 1.0),
            errors_points=ErrorPair(1.0, 1.0),
            reached=0,
            messages=messages,
            bytes=bytes_,
        )
        return summary, None

    thresholds = completed[0].estimate.thresholds
    fractions = np.stack([record.estimate.fractions for record in completed])
    minimum = np.asarray([record.estimate.minimum for record in completed])
    maximum = np.asarray([record.estimate.maximum for record in completed])
    entire, points = matrix_errors(
        truth, thresholds, np.clip(fractions, 0.0, 1.0), minimum, maximum,
        node_sample=node_sample, rng=rng,
    )
    if missing:
        total = reached + missing
        entire = ErrorPair(1.0, (entire.average * reached + missing) / total)
        points = ErrorPair(1.0, (points.average * reached + missing) / total)

    consensus_fractions = fractions.mean(axis=0)
    estimate = EstimatedCDF(
        thresholds=thresholds,
        fractions=np.clip(consensus_fractions, 0.0, 1.0),
        minimum=float(minimum.min()),
        maximum=float(maximum.max()),
    )
    sizes = [r.system_size for r in completed if r.system_size is not None]
    if sizes:
        estimate.system_size = float(np.median(np.asarray(sizes)))
    summary = InstanceSummary(
        index=index,
        thresholds=thresholds,
        fractions=consensus_fractions,
        errors_entire=entire,
        errors_points=points,
        reached=reached,
        messages=messages,
        bytes=bytes_,
    )
    return summary, estimate


def record_from_payload(entry: Mapping[str, Any]) -> CompletedInstance:
    """Rebuild one node's terminated-instance record from its JSON form.

    The inverse of the summary a ``python -m repro.net.node`` process
    writes: threshold/fraction arrays plus extremes become the node's
    :class:`~repro.core.cdf.EstimatedCDF`, the optional size estimate is
    re-attached, and the wire instance id is restored to its tuple form.
    """
    estimate = EstimatedCDF(
        thresholds=np.asarray(entry["thresholds"], dtype=float),
        fractions=np.asarray(entry["fractions"], dtype=float),
        minimum=float(entry["minimum"]),
        maximum=float(entry["maximum"]),
    )
    size = entry.get("system_size")
    estimate.system_size = size
    return CompletedInstance(
        tuple(entry["instance_id"]),
        estimate,
        size,
        None,
        int(entry["round"]),
    )
