"""The backend-agnostic run API.

:func:`run` is the single entry point for executing the Adam2 protocol on
any simulation substrate::

    from repro.api import run
    from repro.core.config import Adam2Config
    from repro.workloads.synthetic import uniform_workload

    result = run(
        Adam2Config(points=30, rounds_per_instance=40),
        uniform_workload(0, 1000),
        backend="fast",           # or "round" / "async"
        n_nodes=10_000,
        instances=3,
        seed=7,
    )
    print(result.final_errors)

Backends register themselves in a process-wide registry; observability is
attached by passing :mod:`repro.obs` observers (or a pre-built
:class:`~repro.obs.ObserverHub`), and every backend reduces its outcome
to the same :class:`~repro.api.result.RunResult` shape.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.api.backends import AsyncBackend, Backend, FastBackend, RoundBackend, RunSpec
from repro.api.result import InstanceSummary, RunResult
from repro.core.config import Adam2Config
from repro.errors import ConfigurationError
from repro.obs.events import RunCompleted, RunStarted
from repro.obs.observer import ObserverHub, RunObserver
from repro.workloads.base import AttributeWorkload

if TYPE_CHECKING:  # runtime import would be circular (repro.service uses run)
    from repro.service.handle import ServiceHandle

__all__ = [
    "Backend",
    "InstanceSummary",
    "RunResult",
    "RunSpec",
    "get_backend",
    "list_backends",
    "register_backend",
    "run",
    "serve",
]

_REGISTRY: dict[str, Backend] = {}


def register_backend(backend: Backend) -> None:
    """Register (or replace) a backend under its ``name``."""
    if not backend.name or backend.name == Backend.name:
        raise ConfigurationError("backend must define a distinctive name")
    _REGISTRY[backend.name] = backend


def get_backend(name: str) -> Backend:
    """Look up a registered backend; unknown names fail loudly.

    The error names every registered backend so the caller never has to
    guess what ``backend=`` accepts.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        registered = ", ".join(repr(known) for known in list_backends()) or "(none)"
        raise ConfigurationError(
            f"unknown backend {name!r}; registered backends: {registered}"
        ) from None


def list_backends() -> list[str]:
    """Names of all registered backends, sorted."""
    return sorted(_REGISTRY)


register_backend(FastBackend())
register_backend(RoundBackend())
register_backend(AsyncBackend())

# The real-network backend registers itself on import (a plain module
# import, so the bootstrap works whichever of repro.api / repro.net is
# imported first) and makes ``backend="net"`` work out of the box.
import repro.net.backend  # noqa: E402,F401  (registry bootstrap)


def run(
    config: Adam2Config,
    workload: AttributeWorkload,
    *,
    backend: str = "fast",
    n_nodes: int = 1000,
    instances: int = 1,
    rounds: int | None = None,
    seed: int = 0,
    rng: np.random.Generator | None = None,
    observers: Iterable[RunObserver] = (),
    hub: ObserverHub | None = None,
    instrument: bool = False,
    **options: object,
) -> RunResult:
    """Run the Adam2 protocol on a registered backend.

    Args:
        config: protocol parameters shared by all peers.
        workload: attribute distribution of the population.
        backend: registered backend name (``"fast"``, ``"round"``,
            ``"async"``, or ``"net"`` for the real-socket runtime).
        n_nodes: population size.
        instances: consecutive aggregation instances to run.
        rounds: instance-duration override; folded into the config's
            ``rounds_per_instance`` so TTL semantics match on every
            backend (default: keep the config's value).
        seed: experiment seed; every backend is deterministic given it.
        rng: alternative to ``seed`` — a generator from which the seed is
            drawn (mutually exclusive with a non-default ``seed``).
        observers: :class:`~repro.obs.RunObserver` subscribers.  The
            facade does **not** close them — the caller owns their
            lifecycle, so one sink can span several runs.
        hub: a pre-built hub (overrides ``observers``/``instrument``).
        instrument: enable wall-clock span timing for profiling.
        **options: backend-specific options; unsupported keys raise
            :class:`~repro.errors.ConfigurationError`.
    """
    if rng is not None:
        if seed != 0:
            raise ConfigurationError("pass either seed or rng, not both")
        seed = int(rng.integers(0, 2**31 - 1))
    engine = get_backend(backend)
    engine.validate_options(options)
    if rounds is not None:
        if rounds < 1:
            raise ConfigurationError(f"need at least one round, got {rounds}")
        config = dataclasses.replace(config, rounds_per_instance=rounds)

    if hub is None:
        hub = ObserverHub(observers, instrument=instrument)
    if hub.probes_enabled:
        hub.run_started(RunStarted(
            backend=backend,
            n_nodes=n_nodes,
            instances=instances,
            rounds=config.rounds_per_instance,
            seed=seed,
            points=config.points,
        ))

    spec = RunSpec(
        workload=workload,
        n_nodes=n_nodes,
        config=config,
        instances=instances,
        seed=seed,
        options=dict(options),
    )
    with hub.span("run"):
        result = engine.run(spec, hub)

    if hub.probes_enabled:
        hub.run_completed(RunCompleted(
            instances=len(result.instances),
            messages=sum(s.messages for s in result.instances),
            bytes=sum(s.bytes for s in result.instances),
        ))
    if hub.enabled:
        result.metrics = hub.snapshot()
    return result


def serve(
    config: Adam2Config,
    workload: AttributeWorkload,
    *,
    backend: str = "fast",
    n_nodes: int = 1000,
    seed: int = 0,
    **options: object,
) -> "ServiceHandle":
    """Build a continuous estimation service over :func:`run`.

    The counterpart of :func:`run` for standing workloads: instead of one
    result, you get a :class:`repro.service.ServiceHandle` whose
    scheduler keeps publishing fresh estimates (``handle.refresh()``)
    and whose query engine answers ``cdf``/``quantile``/
    ``fraction_between``/``network_size`` from the latest versioned
    snapshot.  Remaining keyword arguments are forwarded to
    :func:`repro.service.build_service` (``policy``, ``drift``,
    ``cache_size``, ``warm_cycles``, ``hub``, ``options``, ...).
    Passing ``store_dir`` makes the service *durable*: every published
    snapshot is written behind to an append-only log there
    (:mod:`repro.persist`) and a restarted service recovers the logged
    history before serving — see also ``fsync``, ``retention`` and
    ``compact_every``.

    To put the handle on the network, hand it to
    :func:`repro.net.service_endpoint.serve_blocking` — with
    ``workers > 1`` it serves from an ``SO_REUSEPORT`` worker-process
    pool (:class:`repro.net.service_worker.ServiceWorkerPool`) fed by
    the store's snapshot feed; clients may negotiate the binary frame
    codec and batch queries (see :mod:`repro.service.protocol`).
    """
    # Late import: repro.service drives this module's run(), so importing
    # it at module level would be circular.
    from repro.service import build_service

    return build_service(
        config, workload, backend=backend, n_nodes=n_nodes, seed=seed,
        **options,  # type: ignore[arg-type]
    )
