"""Deterministic random-number management.

Every source of randomness in the library is a :class:`numpy.random.Generator`
spawned from a single experiment seed.  Components never call the global
NumPy RNG; instead they receive a generator (or spawn a child with
:func:`spawn`), which makes whole experiments reproducible from one integer
seed and keeps independent components statistically independent.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

__all__ = ["make_rng", "spawn", "spawn_many", "derive"]


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Create a root generator for an experiment.

    Args:
        seed: experiment seed; ``None`` draws entropy from the OS.
    """
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator) -> np.random.Generator:
    """Spawn one statistically independent child generator."""
    return rng.spawn(1)[0]


def spawn_many(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Spawn ``n`` independent child generators."""
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    return list(rng.spawn(n))


def derive(seed: int, *components: int | str) -> np.random.Generator:
    """Derive a generator from a seed plus a path of component labels.

    Useful when a component cannot receive a generator object (e.g. it is
    re-created after churn) but must stay deterministic: the same
    ``(seed, components)`` path always yields the same stream.
    """
    material: list[int | Iterable[int]] = [seed]
    for component in components:
        if isinstance(component, str):
            material.append([ord(c) for c in component])
        else:
            material.append(component)
    return np.random.default_rng(np.random.SeedSequence(entropy=seed, spawn_key=tuple(_flatten(material[1:]))))


def _flatten(parts: list) -> list[int]:
    flat: list[int] = []
    for part in parts:
        if isinstance(part, int):
            flat.append(part & 0xFFFFFFFF)
        else:
            flat.extend(int(x) & 0xFFFFFFFF for x in part)
    return flat
