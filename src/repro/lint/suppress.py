"""Inline suppressions: ``# adam2: noqa[ADM012]`` comments.

A violation is suppressed when its source line carries an
``adam2: noqa`` comment naming its rule code (or naming no code at all,
which suppresses every rule on that line).  Suppressions are deliberate,
reviewable exceptions — the lint report keeps them on the side so a run
can still account for every site the rules flagged.
"""

from __future__ import annotations

import re
from typing import Iterable

from repro.lint.violation import Violation

__all__ = ["parse_suppressions", "split_suppressed"]

#: ``# adam2: noqa`` or ``# adam2: noqa[ADM009, ADM012]``
_NOQA = re.compile(
    r"#\s*adam2:\s*noqa(?:\[(?P<codes>[A-Za-z0-9,\s]*)\])?",
)


def parse_suppressions(source: str) -> dict[int, frozenset[str] | None]:
    """Map 1-based line numbers to suppressed codes.

    ``None`` means a blanket ``noqa`` (all codes); a frozenset limits the
    suppression to the listed rule codes.
    """
    suppressions: dict[int, frozenset[str] | None] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        if "adam2" not in line or "noqa" not in line:
            continue
        match = _NOQA.search(line)
        if match is None:
            continue
        raw = match.group("codes")
        if raw is None:
            suppressions[lineno] = None
        else:
            codes = frozenset(
                code.strip().upper() for code in raw.split(",") if code.strip()
            )
            # ``noqa[]`` with nothing inside suppresses nothing.
            suppressions[lineno] = codes if codes else frozenset()
    return suppressions


def split_suppressed(
    violations: Iterable[Violation], source: str
) -> tuple[list[Violation], list[Violation]]:
    """Partition violations into (kept, suppressed) for one file."""
    suppressions = parse_suppressions(source)
    kept: list[Violation] = []
    suppressed: list[Violation] = []
    for violation in violations:
        codes = suppressions.get(violation.line, frozenset())
        if codes is None or violation.code in (codes or ()):
            suppressed.append(violation)
        else:
            kept.append(violation)
    return kept, suppressed
