"""``python -m repro.lint`` — same entry point as ``adam2-lint``."""

from repro.lint.engine import main

raise SystemExit(main())
