"""SARIF 2.1.0 output for ``adam2-lint`` (CI code-scanning ingestion).

Emits one run with the full ADM rule metadata and one result per
finding.  Suppressed findings are included as SARIF-suppressed results
(``kind: "inSource"`` for inline ``# adam2: noqa`` comments,
``kind: "external"`` for baseline matches) so code-scanning UIs show
them as resolved rather than losing them.
"""

from __future__ import annotations

import json
from typing import Any, Sequence

from repro.lint.violation import LintReport, Violation

__all__ = ["SARIF_SCHEMA_URI", "SARIF_VERSION", "to_sarif", "format_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {"error": "error", "warning": "warning"}


def _rule_metadata(rule: Any) -> dict[str, Any]:
    doc = (getattr(rule, "__doc__", "") or "").strip().splitlines()
    short = doc[0] if doc else rule.name
    meta: dict[str, Any] = {
        "id": rule.code,
        "name": rule.name,
        "shortDescription": {"text": short},
        "defaultConfiguration": {"level": _LEVELS.get(rule.severity, "warning")},
    }
    if rule.hint:
        meta["help"] = {"text": rule.hint}
    return meta


def _result(
    violation: Violation,
    rule_indices: dict[str, int],
    suppression_kind: str | None = None,
) -> dict[str, Any]:
    message = violation.message
    if violation.hint:
        message += f" — fix: {violation.hint}"
    result: dict[str, Any] = {
        "ruleId": violation.code,
        "level": _LEVELS.get(violation.severity, "warning"),
        "message": {"text": message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": violation.path.replace("\\", "/")},
                    "region": {
                        "startLine": violation.line,
                        "startColumn": violation.column + 1,
                    },
                }
            }
        ],
    }
    if violation.code in rule_indices:
        result["ruleIndex"] = rule_indices[violation.code]
    if suppression_kind is not None:
        result["suppressions"] = [{"kind": suppression_kind}]
    return result


def to_sarif(report: LintReport, rules: Sequence[Any]) -> dict[str, Any]:
    """The SARIF 2.1.0 document for one lint run, as plain data."""
    ordered_rules = sorted(rules, key=lambda r: r.code)
    rule_indices = {rule.code: i for i, rule in enumerate(ordered_rules)}
    results = [_result(v, rule_indices) for v in report.violations]
    results.extend(
        _result(v, rule_indices, suppression_kind="inSource")
        for v in report.suppressed
    )
    results.extend(
        _result(v, rule_indices, suppression_kind="external")
        for v in report.baselined
    )
    run: dict[str, Any] = {
        "tool": {
            "driver": {
                "name": "adam2-lint",
                "informationUri": "https://example.invalid/adam2-repro",
                "semanticVersion": "2.0.0",
                "rules": [_rule_metadata(rule) for rule in ordered_rules],
            }
        },
        "columnKind": "unicodeCodePoints",
        "results": results,
    }
    if report.parse_errors:
        run["invocations"] = [
            {
                "executionSuccessful": False,
                "toolExecutionNotifications": [
                    {"level": "error", "message": {"text": error}}
                    for error in report.parse_errors
                ],
            }
        ]
    else:
        run["invocations"] = [{"executionSuccessful": True}]
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [run],
    }


def format_sarif(report: LintReport, rules: Sequence[Any]) -> str:
    return json.dumps(to_sarif(report, rules), indent=2)
