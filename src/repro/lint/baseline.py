"""The committed lint baseline: gradual adoption without losing the gate.

A baseline file records findings that predate a rule (or are accepted
with a written justification) so the CI gate can fail on *new* findings
only.  Matching is by fingerprint — ``(code, path, message)`` — rather
than line number, so unrelated edits that shift lines do not churn the
baseline; each entry carries a ``count`` so N identical findings in one
file stay N, and a new (N+1)-th occurrence still fails the gate.

``adam2-lint --update-baseline`` rewrites the file from the current
findings, preserving the ``justification`` text of entries that survive.
Entries no longer matched by any finding are *stale*: they are dropped
on update and reported by ``--verbose`` runs so the file shrinks as debt
is paid down.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Any

from repro.lint.violation import LintReport, Violation

__all__ = ["Baseline", "apply_baseline"]

_FORMAT_VERSION = 1


class Baseline:
    """In-memory view of a baseline file."""

    def __init__(
        self,
        counts: dict[tuple[str, str, str], int] | None = None,
        justifications: dict[tuple[str, str, str], str] | None = None,
    ) -> None:
        self.counts: dict[tuple[str, str, str], int] = dict(counts or {})
        self.justifications: dict[tuple[str, str, str], str] = dict(justifications or {})

    # -- I/O -----------------------------------------------------------

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        file_path = Path(path)
        if not file_path.exists():
            return cls()
        document = json.loads(file_path.read_text(encoding="utf-8"))
        if not isinstance(document, dict) or document.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"{path}: not an adam2-lint baseline "
                f"(expected version {_FORMAT_VERSION})"
            )
        counts: dict[tuple[str, str, str], int] = {}
        justifications: dict[tuple[str, str, str], str] = {}
        for entry in document.get("entries", []):
            key = (
                str(entry["code"]),
                str(entry["path"]).replace("\\", "/"),
                str(entry["message"]),
            )
            counts[key] = counts.get(key, 0) + int(entry.get("count", 1))
            if entry.get("justification"):
                justifications[key] = str(entry["justification"])
        return cls(counts, justifications)

    def save(self, path: str | Path) -> None:
        entries: list[dict[str, Any]] = []
        for key in sorted(self.counts):
            code, file_path, message = key
            entry: dict[str, Any] = {
                "code": code,
                "path": file_path,
                "message": message,
                "count": self.counts[key],
            }
            if key in self.justifications:
                entry["justification"] = self.justifications[key]
            entries.append(entry)
        document = {
            "version": _FORMAT_VERSION,
            "tool": "adam2-lint",
            "entries": entries,
        }
        Path(path).write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")

    # -- construction from findings ------------------------------------

    @classmethod
    def from_violations(
        cls, violations: list[Violation], previous: "Baseline | None" = None
    ) -> "Baseline":
        """Baseline the given findings, carrying over justifications."""
        counts = dict(Counter(v.fingerprint() for v in violations))
        justifications: dict[tuple[str, str, str], str] = {}
        if previous is not None:
            justifications = {
                key: text
                for key, text in previous.justifications.items()
                if key in counts
            }
        return cls(counts, justifications)

    def stale_entries(self, violations: list[Violation]) -> list[str]:
        """Entries no longer matched by any current finding."""
        current = Counter(v.fingerprint() for v in violations)
        stale: list[str] = []
        for key, count in sorted(self.counts.items()):
            missing = count - current.get(key, 0)
            if missing > 0:
                code, path, message = key
                stale.append(f"{path}: {code} {message} (x{missing})")
        return stale


def apply_baseline(report: LintReport, baseline: Baseline) -> None:
    """Split ``report.violations`` into new vs baselined, in place."""
    budget = Counter(baseline.counts)
    kept: list[Violation] = []
    matched: list[Violation] = []
    for violation in report.violations:
        key = violation.fingerprint()
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            matched.append(violation)
        else:
            kept.append(violation)
    report.violations = kept
    report.baselined.extend(matched)
    report.stale_baseline.extend(
        baseline.stale_entries(matched)
    )
