"""ADM007: no wall-clock reads inside simulation/round logic.

Paper invariant: the simulators model time as rounds (synchronous
engines) or as virtual event time (async engine).  Reading the host's
wall clock inside that logic couples simulated behaviour to real
machine speed, destroying determinism and replayability.  Experiment
drivers (``repro.experiments``) may time themselves; the simulation
substrates may not.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.rules.base import ModuleContext, Rule, attribute_chain
from repro.lint.violation import Violation

__all__ = ["NoWallClock"]

#: (root-chain suffix) calls that read the host clock
_CLOCK_CALLS = {
    ("time", "time"),
    ("time", "monotonic"),
    ("time", "perf_counter"),
    ("time", "process_time"),
    ("time", "time_ns"),
    ("time", "monotonic_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
}

#: top-level ``repro`` subpackages exempt from the rule (drivers and
#: offline tooling, not simulated time; ``obs`` measures host wall time
#: by design — its spans profile the simulator, never steer it; ``net``
#: is the real-network runtime, where wall time IS the protocol clock)
_EXEMPT_PACKAGES = {"experiments", "analysis", "lint", "obs", "net"}


def _is_exempt(module: ModuleContext) -> bool:
    parts = module.module_name.split(".")
    return len(parts) >= 2 and parts[0] == "repro" and parts[1] in _EXEMPT_PACKAGES


class NoWallClock(Rule):
    """ADM007: ``time.time()``/``datetime.now()`` etc. in simulation code."""

    code = "ADM007"
    name = "no-wall-clock"
    hint = "use engine rounds or AsyncEngine virtual time (`engine.now`) instead of the host clock"

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        if _is_exempt(module):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = attribute_chain(node.func)
            if chain is None or len(chain) < 2:
                continue
            if (chain[-2], chain[-1]) in _CLOCK_CALLS:
                yield self.violation(
                    module, node,
                    f"wall-clock read {'.'.join(chain)}() inside simulation logic",
                )
