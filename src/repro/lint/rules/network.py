"""ADM008: real networking and real time belong to ``repro.net`` only.

Paper invariant: every simulation substrate is deterministic given its
seed — the same run replays bit-for-bit.  A raw socket, an asyncio
endpoint, or a wall-clock read anywhere else couples protocol behaviour
to the host machine, silently breaking replayability and making the
simulator/network parity test meaningless (the simulators would no
longer be the network's deterministic twin).

The rule flags, outside the ``repro.net`` package:

* importing the ``socket`` or ``selectors`` modules;
* calls that open asyncio transports (``asyncio.open_connection``,
  ``loop.create_datagram_endpoint``, ``asyncio.start_server``, …);
* wall-clock reads (``time.time()``, ``datetime.now()``, …) — the same
  calls ADM007 polices, restated here so the networking rule is
  self-contained about *all* host-environment reads.

The driver/tooling packages exempt from ADM007 keep their wall-clock
exemption, but even they may not open sockets: all real networking goes
through :mod:`repro.net`, the one place with retry, dedup, and fault
machinery.

Durable-file primitives (``os.fsync`` / ``os.fdatasync``) get the same
treatment with a different home: they are allowed only in
:mod:`repro.persist`, the snapshot-log subsystem whose crash-recovery
contract is built on controlled sync points.  An fsync anywhere else is
either dead weight on a hot path or an undeclared durability claim —
and ``repro.persist`` itself stays subject to the socket/endpoint
checks (persistence is local-disk only; it never talks to the
network).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.rules.base import ModuleContext, Rule, attribute_chain
from repro.lint.rules.wallclock import _CLOCK_CALLS, _EXEMPT_PACKAGES
from repro.lint.violation import Violation

__all__ = ["NetOutsideRuntime"]

#: modules whose import means raw networking
_SOCKET_MODULES = {"socket", "selectors"}

#: (chain-suffix) calls that open network endpoints
_ENDPOINT_CALLS = {
    ("asyncio", "open_connection"),
    ("asyncio", "open_unix_connection"),
    ("asyncio", "start_server"),
    ("asyncio", "start_unix_server"),
    ("loop", "create_connection"),
    ("loop", "create_datagram_endpoint"),
    ("loop", "create_server"),
    ("loop", "create_unix_connection"),
    ("loop", "create_unix_server"),
}

#: (chain-suffix) durable-file sync points, fenced to ``repro.persist``
_DURABLE_CALLS = {
    ("os", "fsync"),
    ("os", "fdatasync"),
}


def _in_net_package(module: ModuleContext) -> bool:
    parts = module.module_name.split(".")
    return len(parts) >= 2 and parts[0] == "repro" and parts[1] == "net"


def _in_persist_package(module: ModuleContext) -> bool:
    parts = module.module_name.split(".")
    return len(parts) >= 2 and parts[0] == "repro" and parts[1] == "persist"


def _clock_exempt(module: ModuleContext) -> bool:
    parts = module.module_name.split(".")
    return len(parts) >= 2 and parts[0] == "repro" and parts[1] in _EXEMPT_PACKAGES


class NetOutsideRuntime(Rule):
    """ADM008: sockets/endpoints/wall clocks outside ``repro.net``."""

    code = "ADM008"
    name = "net-outside-runtime"
    hint = (
        "route real networking and real time through repro.net, and "
        "durable-file syncs through repro.persist (the only "
        "host-coupled substrates)"
    )

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        in_persist = _in_persist_package(module)
        if _in_net_package(module):
            # The networking runtime owns sockets and real time, but an
            # fsync there would smuggle a durability claim out of
            # repro.persist — check just that.
            yield from self._check_durable_calls(module)
            return
        clock_exempt = _clock_exempt(module)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in _SOCKET_MODULES:
                        yield self.violation(
                            module, node,
                            f"raw networking import {alias.name!r} outside repro.net",
                        )
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if node.level == 0 and root in _SOCKET_MODULES:
                    yield self.violation(
                        module, node,
                        f"raw networking import {node.module!r} outside repro.net",
                    )
            elif isinstance(node, ast.Call):
                chain = attribute_chain(node.func)
                if chain is None or len(chain) < 2:
                    continue
                suffix = (chain[-2], chain[-1])
                if suffix in _ENDPOINT_CALLS:
                    yield self.violation(
                        module, node,
                        f"network endpoint call {'.'.join(chain)}() outside repro.net",
                    )
                elif suffix in _CLOCK_CALLS and not clock_exempt:
                    yield self.violation(
                        module, node,
                        f"wall-clock read {'.'.join(chain)}() outside repro.net",
                    )
                elif suffix in _DURABLE_CALLS and not in_persist:
                    yield self.violation(
                        module, node,
                        f"durable-file sync {'.'.join(chain)}() outside repro.persist",
                    )

    def _check_durable_calls(self, module: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = attribute_chain(node.func)
            if chain is None or len(chain) < 2:
                continue
            if (chain[-2], chain[-1]) in _DURABLE_CALLS:
                yield self.violation(
                    module, node,
                    f"durable-file sync {'.'.join(chain)}() outside repro.persist",
                )
