"""ADM011: published estimate snapshots are immutable outside the store.

Paper invariant (serving correctness): the continuous service shares one
:class:`~repro.service.store.EstimateSnapshot` between the scheduler
thread, the query engine, and every TCP connection — sharing is free
*because* snapshots never change after publish.  Any mutation outside
:mod:`repro.service.store` (the one module allowed to construct them)
would let a query observe a half-updated estimate, breaking version
pinning, the LRU point-query cache, and the planned multi-worker
endpoint (whose whole design rests on zero-copy snapshot sharing).

The rule tracks which names in a module are snapshot-typed — via
``EstimateSnapshot`` annotations (parameters, variables, returns of
project-resolved functions) and via assignments from store lookups
(``*store*.latest()`` / ``*store*.get(...)`` / ``*store*.pin(...)`` /
``*store*.adopt(...)``) — and flags, outside the store module:

* attribute assignment, augmented assignment, or deletion on a
  snapshot-typed name (``snap.version = ...``);
* the frozen-dataclass escape hatch ``object.__setattr__(snap, ...)``;
* in-place mutation of snapshot payload: subscript assignment or a
  mutating method call (``sort``/``fill``/``append``/...) reached
  through a snapshot-typed root (``snap.estimate.thresholds.sort()``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.project import ProjectIndex
from repro.lint.rules.base import ModuleContext, ProjectRule, attribute_chain
from repro.lint.violation import Violation

__all__ = ["SnapshotImmutability"]

#: the snapshot type name the annotations refer to
_SNAPSHOT_TYPE = "EstimateSnapshot"

#: store-lookup methods that hand out snapshots (``adopt`` is the
#: replica/recovery insertion path — its return is the shared snapshot)
_STORE_LOOKUPS = {"latest", "get", "pin", "adopt"}

#: method names that mutate their receiver in place
_MUTATING_METHODS = {
    "append", "extend", "insert", "remove", "pop", "clear", "sort",
    "reverse", "update", "setdefault", "add", "discard", "fill", "put",
    "resize", "partial_fit",
}


def _is_store_module(module: ModuleContext) -> bool:
    """Only the *publishing* store module may construct/mutate snapshots.

    ``repro.persist.store`` (the durable write-behind wrapper) is named
    ``store`` too but holds no such privilege: it moves immutable
    snapshots between the log and the live store, so it is checked like
    any other module.
    """
    parts = module.module_name.split(".")
    if not parts or parts[-1] != "store":
        return False
    return parts[:2] != ["repro", "persist"]


def _annotation_is_snapshot(annotation: ast.expr | None) -> bool:
    """The annotation names a snapshot *itself*, not a container of them.

    ``EstimateSnapshot`` (quoted or not, optional or not) is a snapshot;
    ``dict[int, EstimateSnapshot]`` is a mapping — rebinding its entries
    replaces which shared snapshot a key points at, it does not mutate
    any snapshot.
    """
    if annotation is None:
        return False
    text = ast.unparse(annotation).replace("'", "").replace('"', "")
    alternatives = {part.strip() for part in text.split("|")}
    alternatives.discard("None")
    return alternatives <= {_SNAPSHOT_TYPE, f"Optional[{_SNAPSHOT_TYPE}]"} and bool(
        alternatives
    )


def _is_store_lookup(value: ast.expr) -> bool:
    """``self._store.latest()`` / ``store.get(v)`` / ``stores[k].pin(v)``."""
    if not (isinstance(value, ast.Call) and isinstance(value.func, ast.Attribute)):
        return False
    if value.func.attr not in _STORE_LOOKUPS:
        return False
    chain = attribute_chain(value.func)
    if chain is None:
        return False
    return any("store" in part.lower() for part in chain[:-1])


class SnapshotImmutability(ProjectRule):
    """ADM011: no mutation of ``EstimateSnapshot`` objects outside the store."""

    code = "ADM011"
    name = "snapshot-immutability"
    hint = (
        "snapshots are shared zero-copy between threads; publish a new "
        "version through EstimateStore.publish() instead of mutating one"
    )

    def check_project(
        self, module: ModuleContext, project: ProjectIndex
    ) -> Iterator[Violation]:
        if _is_store_module(module):
            return
        snapshot_names = self._snapshot_names(module, project)
        if not snapshot_names:
            return
        for node in ast.walk(module.tree):
            yield from self._check_node(module, node, snapshot_names)

    # ------------------------------------------------------------------

    def _snapshot_names(
        self, module: ModuleContext, project: ProjectIndex
    ) -> set[str]:
        names: set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = node.args
                for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
                    if _annotation_is_snapshot(arg.annotation):
                        names.add(arg.arg)
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                if _annotation_is_snapshot(node.annotation):
                    names.add(node.target.id)
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                if _is_store_lookup(node.value):
                    names.add(target.id)
                elif self._returns_snapshot(module, project, node.value):
                    names.add(target.id)
        return names

    @staticmethod
    def _returns_snapshot(
        module: ModuleContext,
        project: ProjectIndex,
        value: ast.expr,
    ) -> bool:
        """Cross-file: assigned from a call whose resolved return
        annotation is ``EstimateSnapshot``."""
        if not isinstance(value, ast.Call):
            return False
        chain = attribute_chain(value.func)
        if chain is None:
            return False
        resolved = None
        module_summary = project.resolve_module(module.module_name)
        if module_summary is not None:
            resolved = project.resolve_import(module_summary, chain)
        if resolved is None and len(chain) == 2 and chain[0] in ("self", "cls"):
            if module_summary is not None:
                for qualname, info in module_summary.functions.items():
                    if qualname.endswith("." + chain[1]):
                        resolved = info
                        break
        return resolved is not None and _SNAPSHOT_TYPE in resolved.return_annotation

    # ------------------------------------------------------------------

    def _check_node(
        self, module: ModuleContext, node: ast.AST, snapshots: set[str]
    ) -> Iterator[Violation]:
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                root = _chain_root(target)
                if root in snapshots and not isinstance(target, ast.Name):
                    yield self.violation(
                        module, node,
                        f"assignment into snapshot {root!r} "
                        f"({ast.unparse(target)}) mutates a published estimate",
                    )
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                root = _chain_root(target)
                if root in snapshots and not isinstance(target, ast.Name):
                    yield self.violation(
                        module, node,
                        f"deletion of {ast.unparse(target)} mutates snapshot {root!r}",
                    )
        elif isinstance(node, ast.Call):
            chain = attribute_chain(node.func)
            if chain is None or len(chain) < 2:
                return
            if chain[:2] == ["object", "__setattr__"] and node.args:
                root = _chain_root(node.args[0])
                if root in snapshots:
                    yield self.violation(
                        module, node,
                        f"object.__setattr__ on snapshot {root!r} defeats the "
                        "frozen dataclass",
                    )
            elif chain[0] in snapshots and len(chain) >= 3 and chain[-1] in _MUTATING_METHODS:
                yield self.violation(
                    module, node,
                    f"mutating call {'.'.join(chain)}() changes the payload of "
                    f"snapshot {chain[0]!r} in place",
                )


def _chain_root(node: ast.expr) -> str | None:
    """Root name of an attribute/subscript chain (``a.b[0].c`` -> ``a``)."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None
