"""ADM005: no bare ``except:`` and no swallowed protocol errors.

Paper invariant: a violated protocol invariant (``SimulationError``,
``ProtocolError``) means the simulated system state is no longer the one
the convergence analysis describes; swallowing it turns a detectable
failure into a silently biased estimate — exactly the failure mode
Spectra/robust-gossip work shows dominates epidemic estimation.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.rules.base import ModuleContext, Rule, attribute_chain
from repro.lint.violation import Violation

__all__ = ["NoSwallowedErrors"]

#: exception names whose silent swallowing hides invariant violations
_CRITICAL = {
    "Exception", "BaseException",
    "ReproError", "SimulationError", "ProtocolError",
}


def _handler_names(handler: ast.ExceptHandler) -> set[str]:
    node = handler.type
    if node is None:
        return set()
    elements = node.elts if isinstance(node, ast.Tuple) else [node]
    names: set[str] = set()
    for element in elements:
        chain = attribute_chain(element)
        if chain:
            names.add(chain[-1])
    return names


def _is_trivial_body(body: list[ast.stmt]) -> bool:
    """Only pass / ``...`` / continue — i.e. the error vanishes."""
    for stmt in body:
        if isinstance(stmt, (ast.Pass, ast.Continue)):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant) and stmt.value.value is Ellipsis:
            continue
        return False
    return True


class NoSwallowedErrors(Rule):
    """ADM005: bare ``except:`` clauses and swallowed invariant errors.

    Flags every bare ``except:`` and every handler that catches
    ``Exception``/``BaseException`` or a protocol-invariant error
    (``ReproError``, ``SimulationError``, ``ProtocolError``) with a body
    that only passes/continues — the violation disappears without a
    trace.
    """

    code = "ADM005"
    name = "no-swallowed-errors"
    hint = "catch the narrowest exception and handle or re-raise it (`raise ... from exc`)"

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.violation(
                    module, node, "bare `except:` catches everything, including invariant errors"
                )
                continue
            caught = _handler_names(node)
            if caught & _CRITICAL and _is_trivial_body(node.body):
                names = ", ".join(sorted(caught & _CRITICAL))
                yield self.violation(
                    module, node,
                    f"handler swallows {names} without handling or re-raising",
                )
