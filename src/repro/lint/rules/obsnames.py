"""ADM013: observability names are literals from the ``repro.obs.events`` registry.

Paper invariant (operability of the reliability claims): dashboards,
CI artifact checks, and the divergence/restart alarms all key on metric
and span names (``rounds_total``, ``query_latency_s``, ``"round"`` …).
A name invented ad hoc at an emission site — or computed at runtime —
silently forks the namespace: the emitting code believes it is observed
while every consumer reads the registered name and sees a flatline.
:mod:`repro.obs.events` is therefore the single registry of emittable
names, and every emission site must use a literal drawn from it.

The rule flags, outside the ``repro.obs`` package itself:

* ``*.counter(...)`` / ``*.gauge(...)`` / ``*.histogram(...)`` and
  ``hub.span(...)``-style calls whose name argument is **not a string
  literal** (a computed name cannot be audited against the registry);
* a literal name that is **not registered** in the
  ``METRIC_NAMES`` / ``SPAN_NAMES`` / ``METRIC_NAME_TEMPLATES`` sets of
  the project's ``obs.events`` module (cross-file: the registry is read
  from the project index, never imported);
* an f-string name whose literal skeleton matches **no registered
  template** (``f"queries_{op}_total"`` is fine because the template
  ``queries_{op}_total`` is registered).

When the linted file set does not contain an ``obs.events`` module (e.g.
linting a single file), only literal-ness is enforced — membership needs
the registry.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.project import ProjectIndex, project_module_name
from repro.lint.rules.base import ModuleContext, ProjectRule, attribute_chain
from repro.lint.violation import Violation

__all__ = ["ObsNameDiscipline"]

#: metric-emitting method names (distinctive enough to match on alone)
_METRIC_METHODS = {"counter", "gauge", "histogram"}

#: receivers through which span() calls are recognised
_SPAN_RECEIVERS = {"hub", "obs", "spans"}

#: the registry module and the set names read from it
_REGISTRY_MODULE = "obs.events"
_REGISTRY_SETS = ("METRIC_NAMES", "SPAN_NAMES", "METRIC_NAME_TEMPLATES", "EVENT_TYPES")


def _in_obs_package(module: ModuleContext) -> bool:
    # Path-derived (not module_name): fixture packages linted out of a
    # temp directory get stem-only module names, but their path still
    # shows the ``obs`` package.
    return "obs" in project_module_name(module.path).split(".")


def _template_skeleton(template: str) -> str:
    """``queries_{op}_total`` -> ``queries_{}_total`` (placeholder-blind)."""
    skeleton: list[str] = []
    depth = 0
    for char in template:
        if char == "{":
            depth += 1
            if depth == 1:
                skeleton.append("{}")
        elif char == "}":
            depth = max(depth - 1, 0)
        elif depth == 0:
            skeleton.append(char)
    return "".join(skeleton)


def _fstring_skeleton(node: ast.JoinedStr) -> str:
    parts: list[str] = []
    for value in node.values:
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            parts.append(value.value)
        else:
            parts.append("{}")
    return "".join(parts)


class ObsNameDiscipline(ProjectRule):
    """ADM013: unregistered or non-literal metric/span names."""

    code = "ADM013"
    name = "obs-name-discipline"
    hint = (
        "use a string literal registered in repro.obs.events "
        "(METRIC_NAMES / SPAN_NAMES / METRIC_NAME_TEMPLATES)"
    )

    def check_project(
        self, module: ModuleContext, project: ProjectIndex
    ) -> Iterator[Violation]:
        if _in_obs_package(module):
            return
        registry = project.registry_strings(_REGISTRY_MODULE, *_REGISTRY_SETS)
        templates: frozenset[str] | None = None
        if registry is not None:
            templates = frozenset(
                _template_skeleton(name) for name in registry if "{" in name
            )
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            kind = self._emission_kind(node)
            if kind is None:
                continue
            yield from self._check_name(module, node, kind, registry, templates)

    # ------------------------------------------------------------------

    @staticmethod
    def _emission_kind(node: ast.Call) -> str | None:
        chain = attribute_chain(node.func)
        if chain is None or len(chain) < 2:
            return None
        method = chain[-1]
        if method in _METRIC_METHODS:
            return "metric"
        if method == "span" and chain[-2] in _SPAN_RECEIVERS:
            return "span"
        return None

    def _check_name(
        self,
        module: ModuleContext,
        node: ast.Call,
        kind: str,
        registry: frozenset[str] | None,
        templates: frozenset[str] | None,
    ) -> Iterator[Violation]:
        if not node.args:
            return
        name_arg = node.args[0]
        display = ast.unparse(node.func)
        if isinstance(name_arg, ast.Constant) and isinstance(name_arg.value, str):
            if registry is not None and name_arg.value not in registry:
                yield self.violation(
                    module, node,
                    f"{kind} name {name_arg.value!r} passed to {display}() is not "
                    "registered in repro.obs.events",
                )
            return
        if isinstance(name_arg, ast.JoinedStr):
            if registry is None:
                return
            skeleton = _fstring_skeleton(name_arg)
            if templates is None or skeleton not in templates:
                yield self.violation(
                    module, node,
                    f"f-string {kind} name {skeleton!r} matches no registered "
                    "template in repro.obs.events",
                )
            return
        yield self.violation(
            module, node,
            f"{kind} name passed to {display}() is computed "
            f"({ast.unparse(name_arg)}); names must be auditable literals",
        )
