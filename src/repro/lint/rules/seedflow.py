"""ADM012: every generator construction derives its seed from a run seed.

Paper invariant (reproducibility): every reported error curve must
replay bit-for-bit from the one integer ``seed`` threaded in through
:func:`repro.api.run` (and the service/scheduler options built on it).
ADM001 already forces generator *construction* through ``repro.rngs``;
this rule polices what flows **into** those constructors.  A hard-coded
seed (``make_rng(0)``) silently couples independent components to the
same stream and pins "random" subsampling across experiments; a missing
seed (``make_rng()``) draws OS entropy and makes the run unreplayable
outright.

The rule runs a small taint analysis over each function that calls
``make_rng`` / ``derive`` / ``default_rng``:

* **sources** — parameters and attributes named like a seed or a
  generator (``seed``, ``run_seed``, ``spec.seed``, ``options["seed"]``,
  ``rng``), and draws from tainted generators (``rng.integers(...)``);
* **propagation** — assignments, arithmetic, ``int()``/``abs()``-style
  conversions, and ``derive``/``spawn`` chains;
* **cross-file flow** — a call to a helper resolved through the import
  graph inherits the helper's return-taint summary from the project
  index: a helper that returns a literal is a hard-coded seed even when
  it lives in another module, and a helper that derives from its own
  seed parameter is only as good as the argument passed at this call
  site.

Violations: a seed argument that classifies as **constant** (hard-coded,
possibly via cross-file constant flow), or a construction with **no**
seed argument at all (OS entropy).  Untraceable expressions are allowed
— the rule prefers silence to false alarms.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.project import (
    CallTaintResolver,
    ProjectIndex,
    classify_seed_expr,
    is_seed_name,
)
from repro.lint.rules.base import ModuleContext, ProjectRule, attribute_chain
from repro.lint.violation import Violation

__all__ = ["SeedTaint"]

#: generator constructors whose seed argument the rule traces
_CONSTRUCTORS = {"make_rng", "derive", "default_rng"}


def _is_rngs_module(module: ModuleContext) -> bool:
    return module.module_name.split(".")[-1] == "rngs"


class SeedTaint(ProjectRule):
    """ADM012: hard-coded or entropy seeds in generator construction."""

    code = "ADM012"
    name = "seed-taint"
    hint = (
        "thread the run seed (repro.api `seed=` option) to this site — "
        "accept a seed/rng parameter and derive from it"
    )

    def check_project(
        self, module: ModuleContext, project: ProjectIndex
    ) -> Iterator[Violation]:
        if _is_rngs_module(module):
            return
        summary = project.resolve_module(module.module_name)

        def resolve_callee_taint(func: ast.expr) -> str:
            chain = attribute_chain(func)
            if chain is None or summary is None:
                return "unknown"
            info = project.resolve_import(summary, chain)
            return info.seed_taint if info is not None else "unknown"

        # Every function scope, with its own parameter taint.
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = node.args
                tainted = {
                    a.arg
                    for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
                    if is_seed_name(a.arg)
                }
                yield from self._scan(
                    module, node.body, tainted, resolve_callee_taint
                )
        # Module- and class-level statements (no parameters to taint from).
        yield from self._scan(module, module.tree.body, set(), resolve_callee_taint)

    # ------------------------------------------------------------------

    def _scan(
        self,
        module: ModuleContext,
        body: list[ast.stmt],
        tainted: set[str],
        resolver: CallTaintResolver,
    ) -> Iterator[Violation]:
        """Source-ordered own-scope scan: track name taint, flag calls."""
        constants: set[str] = set()
        for node in _ordered_own_scope(body):
            if isinstance(node, ast.Assign):
                taint = classify_seed_expr(node.value, tainted, constants, resolver)
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        if taint == "seed":
                            tainted.add(target.id)
                            constants.discard(target.id)
                        elif taint == "constant":
                            constants.add(target.id)
                            tainted.discard(target.id)
            elif isinstance(node, ast.Call):
                yield from self._check_construction(
                    module, node, tainted, constants, resolver
                )

    def _check_construction(
        self,
        module: ModuleContext,
        node: ast.Call,
        tainted: set[str],
        constants: set[str],
        resolver: CallTaintResolver,
    ) -> Iterator[Violation]:
        chain = attribute_chain(node.func)
        if chain is None or chain[-1] not in _CONSTRUCTORS:
            return
        display = ".".join(chain)
        seed_arg: ast.expr | None = None
        if node.args:
            seed_arg = node.args[0]
        else:
            for keyword in node.keywords:
                if keyword.arg == "seed":
                    seed_arg = keyword.value
                    break
        if seed_arg is None:
            yield self.violation(
                module, node,
                f"{display}() without a seed draws OS entropy — the run cannot "
                "be replayed",
            )
            return
        taint = classify_seed_expr(seed_arg, tainted, constants, resolver)
        if taint == "constant":
            yield self.violation(
                module, node,
                f"{display}({ast.unparse(seed_arg)}) uses a hard-coded seed that "
                "does not derive from the run seed",
            )


def _ordered_own_scope(body: list[ast.stmt]) -> Iterator[ast.AST]:
    """Pre-order, source-ordered traversal that does not descend into
    nested function definitions (they are scanned with their own
    parameter taint) but does descend into class bodies."""
    for stmt in body:
        stack: list[ast.AST] = [stmt]
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            yield node
            children = list(ast.iter_child_nodes(node))
            stack.extend(reversed(children))
