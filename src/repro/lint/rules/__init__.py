"""Rule registry for the Adam2 protocol-invariant linter."""

from __future__ import annotations

from repro.lint.rules.asynctasks import OrphanedTasks
from repro.lint.rules.base import ModuleContext, ProjectRule, Rule
from repro.lint.rules.blocking import BlockingInAsync
from repro.lint.rules.defaults import NoMutableDefaults
from repro.lint.rules.exceptions import NoSwallowedErrors
from repro.lint.rules.exchange import ExchangeConservation
from repro.lint.rules.floats import FloatEqualityOnEstimates
from repro.lint.rules.network import NetOutsideRuntime
from repro.lint.rules.obsnames import ObsNameDiscipline
from repro.lint.rules.rng import NoGlobalRng, RngParameter
from repro.lint.rules.seedflow import SeedTaint
from repro.lint.rules.snapshots import SnapshotImmutability
from repro.lint.rules.wallclock import NoWallClock

__all__ = ["ALL_RULES", "get_rules", "ModuleContext", "ProjectRule", "Rule"]

#: every rule class, in code order
ALL_RULES: tuple[type[Rule], ...] = (
    NoGlobalRng,          # ADM001
    RngParameter,         # ADM002
    FloatEqualityOnEstimates,  # ADM003
    ExchangeConservation,      # ADM004
    NoSwallowedErrors,    # ADM005
    NoMutableDefaults,    # ADM006
    NoWallClock,          # ADM007
    NetOutsideRuntime,    # ADM008
    OrphanedTasks,        # ADM009
    BlockingInAsync,      # ADM010
    SnapshotImmutability,  # ADM011
    SeedTaint,            # ADM012
    ObsNameDiscipline,    # ADM013
)


def get_rules(select: set[str] | None = None) -> list[Rule]:
    """Instantiate rules, optionally restricted to a set of codes."""
    rules = [cls() for cls in ALL_RULES]
    if select:
        unknown = select - {r.code for r in rules}
        if unknown:
            raise ValueError(f"unknown rule codes: {sorted(unknown)}")
        rules = [r for r in rules if r.code in select]
    return rules
