"""ADM004: exchange implementations and mass-conservation declarations.

Paper invariant: push–pull exchanges replace both peers' averaged state
by the mean, conserving per-column mass — the property that makes
``f_i`` converge to ``F(t_i)`` and the weight column sum to exactly 1.
Modes that intentionally violate it (the paper's literal Fig. 1 join)
must be *declared* via :func:`repro.core.conservation.register_non_conserving`
in the module that branches on them, so the runtime sanitizer whitelists
them by declaration rather than by silent exemption.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.rules.base import ModuleContext, Rule, attribute_chain
from repro.lint.violation import Violation

__all__ = ["ExchangeConservation"]

_PROTOCOL_BASES = {"Protocol", "AsyncProtocol"}

#: the one mode the symmetric-averaging proof covers; anything else
#: branched on by name needs an explicit registration
_CONSERVING_MODES = {"symmetric"}

_MODE_PARAMS = {"join_mode", "mode"}


def _registered_modes(tree: ast.Module) -> set[str]:
    """Mode strings registered via ``register_non_conserving("<mode>", ...)``."""
    modes: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        chain = attribute_chain(node.func)
        if chain is None or chain[-1] != "register_non_conserving":
            continue
        if node.args and isinstance(node.args[0], ast.Constant):
            value = node.args[0].value
            if isinstance(value, str):
                modes.add(value)
    return modes


def _compared_mode_strings(fn: ast.AST) -> Iterator[tuple[ast.Compare, str]]:
    """(compare-node, string) pairs where a mode parameter is compared."""
    for node in ast.walk(fn):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        names = [o.id for o in operands if isinstance(o, ast.Name)]
        if not any(name in _MODE_PARAMS for name in names):
            continue
        for operand in operands:
            if isinstance(operand, ast.Constant) and isinstance(operand.value, str):
                yield node, operand.value


class ExchangeConservation(Rule):
    """ADM004: exchange payloads and registered non-conserving modes.

    Two checks:

    1. An ``exchange`` method on a class deriving from ``Protocol`` (or
       ``AsyncProtocol``) must return a payload tuple from every return
       statement — returning ``None`` (or a bare scalar) silently drops
       network accounting and hides the exchange from observers.
    2. A function taking a ``join_mode``/``mode`` parameter may only
       compare it against ``"symmetric"`` or against mode strings the
       same module registers with ``register_non_conserving(...)``.
    """

    code = "ADM004"
    name = "exchange-conservation"
    hint = (
        "return a (request_bytes, response_bytes) tuple; register non-conserving "
        "modes via repro.core.conservation.register_non_conserving"
    )

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        registered = _registered_modes(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_protocol_class(module, node)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_mode_branches(module, node, registered)

    # -- check 1: exchange return shape --------------------------------

    def _check_protocol_class(
        self, module: ModuleContext, cls: ast.ClassDef
    ) -> Iterator[Violation]:
        base_names = set()
        for base in cls.bases:
            chain = attribute_chain(base)
            if chain:
                base_names.add(chain[-1])
        if not base_names & _PROTOCOL_BASES:
            return
        for item in cls.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)) and item.name == "exchange":
                yield from self._check_exchange_returns(module, item)

    def _check_exchange_returns(
        self, module: ModuleContext, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Violation]:
        returns = [
            node for node in ast.walk(fn)
            if isinstance(node, ast.Return)
        ]
        if not returns:
            yield self.violation(
                module, fn,
                f"{fn.name}() on a Protocol never returns a payload tuple",
            )
            return
        for ret in returns:
            value = ret.value
            if value is None or (
                isinstance(value, ast.Constant) and not isinstance(value.value, tuple)
            ):
                yield self.violation(
                    module, ret,
                    "Protocol.exchange must return a (request_bytes, response_bytes) "
                    "tuple, not a bare constant or None",
                )

    # -- check 2: mode registration ------------------------------------

    def _check_mode_branches(
        self,
        module: ModuleContext,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        registered: set[str],
    ) -> Iterator[Violation]:
        param_names = {a.arg for a in fn.args.posonlyargs + fn.args.args + fn.args.kwonlyargs}
        if not param_names & _MODE_PARAMS:
            return
        for compare, mode in _compared_mode_strings(fn):
            if mode in _CONSERVING_MODES or mode in registered:
                continue
            yield self.violation(
                module, compare,
                f"exchange mode {mode!r} is branched on but never registered as "
                "non-mass-conserving in this module",
            )
