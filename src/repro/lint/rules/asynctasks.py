"""ADM009: no un-awaited coroutines or fire-and-forget tasks.

Paper invariant (serving reliability): the continuous estimation service
answers queries from a single asyncio loop per process.  A coroutine
that is called but never awaited silently does nothing; a task spawned
with ``create_task``/``ensure_future`` whose reference is dropped can be
garbage-collected mid-flight, and one whose exception is never retrieved
turns a protocol failure into an invisible "Task exception was never
retrieved" log line at interpreter exit.  Either way the service keeps
serving *stale* estimates while believing it is healthy — exactly the
failure mode the reliability claims exclude.

The rule flags, in any module:

* a **bare expression statement** calling a function the project index
  resolves to an ``async def`` (cross-file: the callee may live in
  another module) — the coroutine object is created and dropped;
* ``create_task(...)`` / ``ensure_future(...)`` whose result is
  **discarded** (bare statement) or assigned to a name that is **never
  used again** in the enclosing scope — an orphaned task;
* a task whose only done-callback is a bare container unbinding
  (``tasks.discard`` / ``tasks.remove``): the reference bookkeeping is
  right but the callback never calls ``task.exception()``, so failures
  are still swallowed.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.project import ProjectIndex
from repro.lint.rules.base import (
    ModuleContext,
    ProjectRule,
    attribute_chain,
    build_parent_map,
)
from repro.lint.violation import Violation

__all__ = ["OrphanedTasks"]

#: call-chain tails that spawn a task from a coroutine
_SPAWN_CALLS = {"create_task", "ensure_future"}

#: done-callback attribute names that only unbind, never retrieve
_UNBIND_ONLY = {"discard", "remove"}


class OrphanedTasks(ProjectRule):
    """ADM009: un-awaited coroutines / unreferenced or unobserved tasks."""

    code = "ADM009"
    name = "orphaned-tasks"
    hint = (
        "await the coroutine, or hold the task and attach a done-callback "
        "that retrieves task.exception()"
    )

    def check_project(
        self, module: ModuleContext, project: ProjectIndex
    ) -> Iterator[Violation]:
        parents = build_parent_map(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield from self._check_scope(module, project, node, parents)

    # ------------------------------------------------------------------

    def _check_scope(
        self,
        module: ModuleContext,
        project: ProjectIndex,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        parents: dict[int, ast.AST],
    ) -> Iterator[Violation]:
        enclosing_class = self._enclosing_class(fn, parents)
        for stmt in _own_scope_statements(fn):
            # -- dropped coroutine: a bare `f(...)` where f is async ----
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
                call = stmt.value
                spawn = _spawn_name(call)
                if spawn is not None:
                    yield self.violation(
                        module, call,
                        f"task from {spawn}() is discarded immediately "
                        "(fire-and-forget; it can be garbage-collected mid-flight)",
                    )
                    continue
                chain = attribute_chain(call.func)
                callee = self._resolve_async(module, project, chain, enclosing_class)
                if callee is not None:
                    yield self.violation(
                        module, call,
                        f"coroutine {callee}() is called but never awaited",
                    )
            # -- spawned task: must be held and observed ----------------
            elif isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Call):
                if _spawn_name(stmt.value) is None:
                    continue
                if len(stmt.targets) != 1 or not isinstance(stmt.targets[0], ast.Name):
                    continue
                yield from self._check_task_binding(
                    module, fn, stmt, stmt.targets[0].id
                )

    def _check_task_binding(
        self,
        module: ModuleContext,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        assign: ast.Assign,
        task_name: str,
    ) -> Iterator[Violation]:
        used = False
        # The binding's own target Name must not count as a "use".
        skip = {id(assign)} | {id(target) for target in assign.targets}
        for node in ast.walk(fn):
            if id(node) in skip:
                continue
            if isinstance(node, ast.Name) and node.id == task_name:
                used = True
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            receiver = node.func.value
            if not (isinstance(receiver, ast.Name) and receiver.id == task_name):
                continue
            if node.func.attr == "add_done_callback" and node.args:
                callback_chain = attribute_chain(node.args[0])
                if callback_chain is not None and callback_chain[-1] in _UNBIND_ONLY:
                    yield self.violation(
                        module, node,
                        f"done-callback {'.'.join(callback_chain)} only unbinds the "
                        f"task; its exception is never retrieved",
                        hint="use a callback that calls task.exception() "
                        "(and then unbinds the reference)",
                    )
        if not used:
            yield self.violation(
                module, assign.value,
                f"task bound to {task_name!r} is never stored, awaited, or given "
                "a done-callback (orphaned task)",
            )

    # ------------------------------------------------------------------

    def _resolve_async(
        self,
        module: ModuleContext,
        project: ProjectIndex,
        chain: list[str] | None,
        enclosing_class: str | None,
    ) -> str | None:
        """Resolve a call chain to an ``async def``'s display name, if any."""
        if chain is None:
            return None
        summary = project.resolve_module(module.module_name)
        # self.method() -> a method of the enclosing class
        if len(chain) == 2 and chain[0] in ("self", "cls") and enclosing_class:
            if summary is not None:
                info = summary.functions.get(f"{enclosing_class}.{chain[1]}")
                if info is not None and info.is_async:
                    return f"self.{chain[1]}"
            return None
        # helper() -> a module-local function, or an imported symbol
        if len(chain) == 1:
            if summary is not None:
                info = summary.functions.get(chain[0])
                if info is not None and info.is_async:
                    return chain[0]
                imported = project.resolve_import(summary, chain)
                if imported is not None and imported.is_async:
                    return chain[0]
            return None
        # mod.func() -> through the import graph (cross-file)
        if summary is not None:
            info = project.resolve_import(summary, chain)
            if info is not None and info.is_async:
                return ".".join(chain)
        return None

    @staticmethod
    def _enclosing_class(
        fn: ast.AST, parents: dict[int, ast.AST]
    ) -> str | None:
        node = parents.get(id(fn))
        while node is not None:
            if isinstance(node, ast.ClassDef):
                return node.name
            node = parents.get(id(node))
        return None


def _spawn_name(call: ast.Call) -> str | None:
    """Display name when ``call`` spawns a task, else None.

    Matches any receiver shape — ``asyncio.create_task(...)``,
    ``loop.create_task(...)``, and the chained
    ``asyncio.get_running_loop().create_task(...)`` (whose receiver is a
    call, so no pure attribute chain exists).
    """
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr in _SPAWN_CALLS:
        chain = attribute_chain(func)
        return ".".join(chain) if chain is not None else func.attr
    if isinstance(func, ast.Name) and func.id in _SPAWN_CALLS:
        return func.id
    return None


def _own_scope_statements(fn: ast.AST) -> Iterator[ast.stmt]:
    """Statements of a function body, not descending into nested defs."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.stmt):
            yield node
        stack.extend(ast.iter_child_nodes(node))
