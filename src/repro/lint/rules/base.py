"""Rule interface and the module context rules operate on."""

from __future__ import annotations

import ast
from abc import ABC, abstractmethod
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.lint.project import ProjectIndex
from repro.lint.violation import Violation

__all__ = ["ModuleContext", "ProjectRule", "Rule", "build_parent_map"]


@dataclass(slots=True)
class ModuleContext:
    """A parsed source module handed to every rule.

    Attributes:
        path: display path of the file (as given on the command line).
        source: full source text.
        tree: the parsed AST.
        module_name: best-effort dotted module name (``repro.fastsim.exchange``
            for files under a ``repro`` package root, else the stem).
    """

    path: str
    source: str
    tree: ast.Module
    module_name: str

    @classmethod
    def from_source(cls, source: str, path: str = "<string>") -> "ModuleContext":
        return cls(
            path=path,
            source=source,
            tree=ast.parse(source, filename=path),
            module_name=_module_name(path),
        )

    def stdlib_random_aliases(self) -> set[str]:
        """Names bound to the stdlib ``random`` module in this file."""
        aliases: set[str] = set()
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        aliases.add(alias.asname or "random")
        return aliases

    def numpy_aliases(self) -> set[str]:
        """Names bound to the ``numpy`` module (``np`` conventionally)."""
        aliases: set[str] = set()
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy":
                        aliases.add(alias.asname or "numpy")
        return aliases


def _module_name(path: str) -> str:
    parts = Path(path).with_suffix("").parts
    if "repro" in parts:
        return ".".join(parts[parts.index("repro"):])
    return Path(path).stem


class Rule(ABC):
    """One protocol-invariant lint rule.

    Subclasses define ``code`` and ``name``, document the protected
    invariant in their docstring, and provide a generic ``hint`` used
    when a site-specific one is not built.
    """

    #: stable rule code, ``ADM0xx``
    code: str = "ADM000"
    #: short kebab-case rule name
    name: str = "base-rule"
    #: generic autofix hint
    hint: str = ""
    #: ``"error"`` gates the exit code; ``"warning"`` is advisory
    severity: str = "error"

    @abstractmethod
    def check(self, module: ModuleContext) -> Iterator[Violation]:
        """Yield every violation of this rule in ``module``."""

    def violation(
        self, module: ModuleContext, node: ast.AST, message: str, hint: str | None = None
    ) -> Violation:
        return Violation(
            code=self.code,
            message=message,
            path=module.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            hint=self.hint if hint is None else hint,
            severity=self.severity,
        )


class ProjectRule(Rule):
    """A rule that needs the cross-file :class:`ProjectIndex`.

    The engine calls :meth:`check_project` with the index built over the
    whole lint invocation; :meth:`check` (the per-file interface) runs
    against an index of just the one module, so single-file uses such as
    ``lint_source`` still work — they simply cannot see other files.
    """

    @abstractmethod
    def check_project(
        self, module: ModuleContext, project: ProjectIndex
    ) -> Iterator[Violation]:
        """Yield every violation of this rule in ``module``, with the
        whole-project ``project`` index available for resolution."""

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        from repro.lint.project import build_project_index

        yield from self.check_project(module, build_project_index([module]))


def build_parent_map(tree: ast.AST) -> dict[int, ast.AST]:
    """``id(child) -> parent`` for every node (rules that need statement
    context — e.g. "is this call a bare expression statement")."""
    parents: dict[int, ast.AST] = {}
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            parents[id(child)] = parent
    return parents


def attribute_chain(node: ast.expr) -> list[str] | None:
    """``a.b.c`` -> ``["a", "b", "c"]``; None if not a pure name chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None
