"""ADM003: no exact float equality between estimate expressions.

Paper invariant: per-node fractions, weights and CDF estimates converge
*towards* their fixed points exponentially but never reach them exactly;
exact ``==``/``!=`` on such quantities encodes a convergence assumption
the protocol does not make (nodes agree to ~1e-5, not bit-exactly).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.rules.base import ModuleContext, Rule
from repro.lint.violation import Violation

__all__ = ["FloatEqualityOnEstimates"]

#: identifier substrings marking an expression as an estimate quantity
ESTIMATE_TOKENS = ("fraction", "weight", "estimate", "cdf", "mass")

#: exact sentinel values a state machine may legitimately compare against
#: (initial weight 0, initiator weight 1)
_SENTINELS = (0.0, 1.0)


def _terminal_identifier(node: ast.expr) -> str | None:
    """The rightmost identifier of an expression, if any."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):
        return _terminal_identifier(node.value)
    if isinstance(node, ast.Call):
        return _terminal_identifier(node.func)
    return None


def _is_estimate_expr(node: ast.expr) -> bool:
    ident = _terminal_identifier(node)
    if ident is None:
        return False
    lowered = ident.lower()
    return any(token in lowered for token in ESTIMATE_TOKENS)


def _is_nonsentinel_float(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return node.value not in _SENTINELS
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        return _is_nonsentinel_float(node.operand)
    return False


class FloatEqualityOnEstimates(Rule):
    """ADM003: ``==``/``!=`` between float estimate expressions.

    Flags an equality comparison when both sides are estimate
    expressions (identifier mentions fraction/weight/estimate/cdf/mass),
    or one side is an estimate expression and the other a non-sentinel
    float literal.  Self-comparison (``x == x``, the NaN-guard idiom) and
    comparisons against the exact sentinels 0.0/1.0 (initial/initiator
    state checks) are allowed.
    """

    code = "ADM003"
    name = "float-equality-on-estimates"
    hint = "compare with a tolerance: math.isclose / np.isclose / np.allclose"

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for i, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[i], operands[i + 1]
                if ast.dump(left) == ast.dump(right):
                    continue  # NaN-guard idiom
                left_est = _is_estimate_expr(left)
                right_est = _is_estimate_expr(right)
                flagged = (left_est and right_est) or (
                    (left_est and _is_nonsentinel_float(right))
                    or (right_est and _is_nonsentinel_float(left))
                )
                if flagged:
                    yield self.violation(
                        module, node,
                        "exact float equality between estimate expressions "
                        "(estimates converge, they never match exactly)",
                    )
