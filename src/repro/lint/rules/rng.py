"""RNG discipline rules: ADM001 (no global RNG), ADM002 (thread the rng).

Paper invariant: every experiment must be reproducible from one integer
seed (`rngs.py` is the single entry point for generator construction).
Global or ad-hoc RNG state breaks replayability of gossip schedules and
therefore of every reported error curve.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.rules.base import ModuleContext, Rule, attribute_chain
from repro.lint.violation import Violation

__all__ = ["NoGlobalRng", "RngParameter"]

#: numpy legacy global-state drawing/seeding functions (``np.random.<fn>``)
_NP_GLOBAL_FNS = {
    "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "seed", "uniform",
    "normal", "standard_normal", "lognormal", "exponential", "poisson",
    "binomial", "beta", "gamma", "bytes", "get_state", "set_state",
}

#: generator-construction callables allowed only inside ``repro/rngs.py``
_NP_CONSTRUCTORS = {"default_rng"}

#: non-drawing attributes of ``np.random`` that are fine anywhere
_NP_ALLOWED = {"Generator", "SeedSequence", "BitGenerator", "PCG64", "Philox", "SFC64", "MT19937"}

#: methods of ``np.random.Generator`` that draw randomness
DRAW_METHODS = {
    "integers", "random", "choice", "permutation", "permuted", "shuffle",
    "uniform", "normal", "standard_normal", "lognormal", "exponential",
    "poisson", "binomial", "beta", "gamma", "pareto", "zipf", "weibull",
    "triangular", "laplace", "logistic", "geometric", "multinomial",
    "dirichlet", "bytes", "spawn",
}

#: stdlib ``random`` module functions that use the hidden global state
_STDLIB_FNS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "lognormvariate",
    "expovariate", "betavariate", "gammavariate", "paretovariate",
    "weibullvariate", "triangular", "vonmisesvariate", "seed",
    "getrandbits", "randbytes", "binomialvariate",
}


def _is_rngs_module(module: ModuleContext) -> bool:
    return module.module_name == "repro.rngs" or module.path.endswith("rngs.py")


class NoGlobalRng(Rule):
    """ADM001: no global or ad-hoc RNG construction outside ``repro.rngs``.

    Flags calls through the stdlib ``random`` module's hidden global
    state, calls through NumPy's legacy global state
    (``np.random.<fn>``), and any ``default_rng(...)`` construction
    outside ``repro/rngs.py`` — seedless construction is irreproducible
    outright, and ad-hoc seeded construction (e.g. from ``hash()``, which
    is salted per process) bypasses the seed-tree that makes experiments
    replayable.
    """

    code = "ADM001"
    name = "no-global-rng"
    hint = (
        "construct generators only via repro.rngs (make_rng / spawn / derive) "
        "and thread the np.random.Generator to the call site"
    )

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        if _is_rngs_module(module):
            return
        stdlib = module.stdlib_random_aliases()
        numpy = module.numpy_aliases()
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = attribute_chain(node.func)
            if chain is None:
                continue
            yield from self._check_chain(module, node, chain, stdlib, numpy)

    def _check_chain(
        self,
        module: ModuleContext,
        node: ast.Call,
        chain: list[str],
        stdlib: set[str],
        numpy: set[str],
    ) -> Iterator[Violation]:
        root, attrs = chain[0], chain[1:]
        if root in stdlib and len(attrs) == 1 and attrs[0] in _STDLIB_FNS:
            yield self.violation(
                module, node,
                f"call to stdlib global RNG random.{attrs[0]}() — hidden global state",
            )
        elif root in numpy and len(attrs) == 2 and attrs[0] == "random":
            fn = attrs[1]
            if fn in _NP_CONSTRUCTORS:
                kind = "seedless" if not node.args and not node.keywords else "ad-hoc"
                yield self.violation(
                    module, node,
                    f"{kind} np.random.default_rng(...) outside repro.rngs",
                )
            elif fn in _NP_GLOBAL_FNS:
                yield self.violation(
                    module, node,
                    f"call to NumPy legacy global RNG np.random.{fn}()",
                )
        elif len(chain) == 1 and chain[0] in _NP_CONSTRUCTORS:
            # `from numpy.random import default_rng; default_rng()`
            yield self.violation(
                module, node, "default_rng(...) construction outside repro.rngs"
            )


class RngParameter(Rule):
    """ADM002: public functions drawing randomness must accept an ``rng``.

    A public function whose body draws randomness (calls a
    ``np.random.Generator`` drawing method) on a receiver that is not a
    parameter, not reached through ``self``/``cls``, and not a local
    binding must declare an ``rng: np.random.Generator`` parameter —
    otherwise it is drawing from module-level state and the call site
    cannot control determinism.
    """

    code = "ADM002"
    name = "rng-parameter"
    hint = "add an `rng: np.random.Generator` parameter and draw from it"

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name.startswith("_"):
                    continue
                yield from self._check_function(module, node)

    def _check_function(
        self, module: ModuleContext, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Violation]:
        params = _parameter_names(fn)
        if any(p == "rng" or p.endswith("_rng") for p in params):
            return
        local_bindings = _local_bindings(fn)
        for node in _own_scope_walk(fn):
            if not isinstance(node, ast.Call):
                continue
            chain = attribute_chain(node.func)
            if chain is None or len(chain) < 2 or chain[-1] not in DRAW_METHODS:
                continue
            root = chain[0]
            if root in ("self", "cls") or root in params or root in local_bindings:
                continue
            yield self.violation(
                module, node,
                f"public function {fn.name}() draws randomness via "
                f"{'.'.join(chain)}() but has no rng parameter",
            )


def _own_scope_walk(fn: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested scopes.

    Nested ``def``s are linted on their own; lambdas receive their own
    parameters (the usual way workloads thread an ``rng``), so calls
    inside them are not draws from the enclosing function's scope.
    """
    stack: list[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _parameter_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    args = fn.args
    names = {a.arg for a in args.posonlyargs + args.args + args.kwonlyargs}
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    return names


def _local_bindings(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    bound: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                bound.update(_target_names(target))
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            bound.update(_target_names(node.target))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            bound.update(_target_names(node.target))
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    bound.update(_target_names(item.optional_vars))
        elif isinstance(node, ast.comprehension):
            bound.update(_target_names(node.target))
        elif isinstance(node, ast.NamedExpr):
            bound.update(_target_names(node.target))
    return bound


def _target_names(target: ast.expr) -> set[str]:
    if isinstance(target, ast.Name):
        return {target.id}
    if isinstance(target, (ast.Tuple, ast.List)):
        names: set[str] = set()
        for element in target.elts:
            names.update(_target_names(element))
        return names
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    return set()
