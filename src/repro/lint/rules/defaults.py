"""ADM006: no mutable default arguments.

Paper invariant (indirectly): per-node state must be private to the
node.  A mutable default is module-level shared state — two nodes
handed the same default list/dict/array alias each other's state, the
decentralised analogue of mass duplication.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.rules.base import ModuleContext, Rule, attribute_chain
from repro.lint.violation import Violation

__all__ = ["NoMutableDefaults"]

_MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict", "array", "zeros", "ones", "empty"}


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        chain = attribute_chain(node.func)
        return chain is not None and chain[-1] in _MUTABLE_CALLS
    return False


class NoMutableDefaults(Rule):
    """ADM006: list/dict/set/array literals (or constructors) as defaults."""

    code = "ADM006"
    name = "no-mutable-defaults"
    hint = "default to None (or use dataclasses.field(default_factory=...)) and construct inside the function"

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            args = node.args
            for default in [*args.defaults, *[d for d in args.kw_defaults if d is not None]]:
                if _is_mutable_default(default):
                    name = getattr(node, "name", "<lambda>")
                    yield self.violation(
                        module, default,
                        f"mutable default argument in {name}() is shared across all calls",
                    )
