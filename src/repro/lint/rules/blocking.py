"""ADM010: no blocking calls inside ``async def`` bodies.

Paper invariant (serving scalability): the TCP query endpoint and the
node daemons multiplex every client and every peer over one asyncio
loop.  A single ``time.sleep``, synchronous file read, or subprocess
call on that loop stalls *every* connection for its duration — the exact
mechanism behind the BENCH_service.json concurrency cliff (10.4k qps at
one client collapsing to 1.0k at sixteen).  Blocking work belongs in an
executor (``loop.run_in_executor`` / ``asyncio.to_thread``) or behind
the async APIs (``asyncio.sleep``, streams).

Flagged inside any ``async def`` (own scope only — nested synchronous
``def``s are commonly shipped *to* executors, so they are not the loop's
problem):

* ``time.sleep(...)`` — the canonical loop stall;
* subprocess spawns (``subprocess.run/call/check_*/Popen``,
  ``os.system``, ``os.popen``);
* synchronous socket/DNS work (``socket.create_connection``,
  ``socket.getaddrinfo``, ``socket.socket``, ``urllib.request.urlopen``);
* synchronous file I/O: builtin ``open()``, ``input()``, and the
  ``Path.read_text/read_bytes/write_text/write_bytes`` family.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.rules.base import ModuleContext, Rule, attribute_chain
from repro.lint.violation import Violation

__all__ = ["BlockingInAsync"]

#: (chain-suffix) module-level calls that block the loop
_BLOCKING_SUFFIXES = {
    ("time", "sleep"),
    ("subprocess", "run"),
    ("subprocess", "call"),
    ("subprocess", "check_call"),
    ("subprocess", "check_output"),
    ("subprocess", "Popen"),
    ("subprocess", "getoutput"),
    ("subprocess", "getstatusoutput"),
    ("os", "system"),
    ("os", "popen"),
    ("socket", "create_connection"),
    ("socket", "getaddrinfo"),
    ("socket", "gethostbyname"),
    ("socket", "socket"),
    ("request", "urlopen"),
}

#: bare-name builtins that block the loop
_BLOCKING_BUILTINS = {"open", "input"}

#: path-object methods that hit the filesystem synchronously
_BLOCKING_METHODS = {"read_text", "read_bytes", "write_text", "write_bytes"}


class BlockingInAsync(Rule):
    """ADM010: ``time.sleep``/sync IO/subprocess on the event loop."""

    code = "ADM010"
    name = "blocking-in-async"
    hint = (
        "use the async API (asyncio.sleep, streams) or move the call off "
        "the loop via loop.run_in_executor / asyncio.to_thread"
    )

    def check(self, module: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_async_body(module, node)

    def _check_async_body(
        self, module: ModuleContext, fn: ast.AsyncFunctionDef
    ) -> Iterator[Violation]:
        for node in _own_scope_walk(fn):
            if not isinstance(node, ast.Call):
                continue
            chain = attribute_chain(node.func)
            if chain is None:
                continue
            described = self._blocking_call(chain)
            if described is not None:
                yield self.violation(
                    module, node,
                    f"blocking call {described} inside async def {fn.name}() "
                    "stalls the event loop",
                )

    @staticmethod
    def _blocking_call(chain: list[str]) -> str | None:
        if len(chain) == 1 and chain[0] in _BLOCKING_BUILTINS:
            return f"{chain[0]}()"
        if len(chain) >= 2:
            if (chain[-2], chain[-1]) in _BLOCKING_SUFFIXES:
                return f"{'.'.join(chain)}()"
            if chain[-1] in _BLOCKING_METHODS:
                return f"{'.'.join(chain)}()"
        return None


def _own_scope_walk(fn: ast.AsyncFunctionDef) -> Iterator[ast.AST]:
    """Walk the async body without descending into nested function defs."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))
