"""Runtime mass-conservation sanitizer for all three simulation backends.

Opt-in instrumentation (set ``ADAM2_SANITIZE=1`` or pass
``sanitize=True`` to an engine) that asserts, as the simulation runs,
the invariants Adam2's convergence argument rests on:

* **mass conservation** — per-column sums of all averaged quantities
  (interpolation fractions, verification fractions, the size weight)
  are invariant under symmetric push–pull exchanges; joins add exactly
  the joiner's initial indicator contribution.  Exchange modes that
  intentionally break this must be registered in
  :mod:`repro.core.conservation` — the sanitizer whitelists them *by
  declaration*, never silently.
* **weight sanity** — size weights stay in ``[0, 1]`` and the weight
  column keeps total mass 1 (one initiator).
* **fraction range** — per-node (normalised) fractions stay in
  ``[0, 1]``.
* **monotone interpolation points** — each node's fraction vector is
  non-decreasing over its sorted thresholds, so every intermediate CDF
  estimate is a valid CDF.

Violations raise :class:`InvariantViolation` carrying backend, round,
instance and node context.
"""

from __future__ import annotations

import os
from typing import Any

import numpy as np

from repro.errors import ReproError
from repro.core.conservation import is_mass_conserving, non_conserving_reason
from repro.core.instance import InstanceState
from repro.core.node import Adam2Node

__all__ = [
    "InvariantViolation",
    "sanitize_enabled",
    "FastsimSanitizer",
    "SanitizedProtocol",
    "SanitizedAsyncProtocol",
    "capture_instance_masses",
    "check_delivery_merge",
    "check_mass_totals",
    "check_node_invariants",
    "check_shard_invariants",
    "mass_tolerances",
]

#: env var switching the sanitizer on globally
ENV_FLAG = "ADAM2_SANITIZE"

_TRUTHY = {"1", "true", "yes", "on"}

#: tolerance for column-mass comparisons (rtol scales with population mass)
MASS_RTOL = 1e-9
MASS_ATOL = 1e-7
#: tolerance for per-node range and monotonicity checks
RANGE_TOL = 1e-9


def mass_tolerances(dtype: Any = None) -> tuple[float, float]:
    """Mass-comparison ``(rtol, atol)`` scaled to the state dtype.

    The module defaults suit float64, where per-exchange rounding is far
    below the fixed tolerances.  A float32 state genuinely rounds every
    averaging operation at ``eps ≈ 1.2e-7``, so over many rounds the
    column sums random-walk by multiples of eps — the tolerances scale
    with the dtype's epsilon to stay an invariant check rather than a
    precision check.
    """
    if dtype is None or np.dtype(dtype) == np.dtype(np.float64):
        return MASS_RTOL, MASS_ATOL
    eps = float(np.finfo(np.dtype(dtype)).eps)
    return max(MASS_RTOL, 512.0 * eps), max(MASS_ATOL, 8192.0 * eps)


def sanitize_enabled(flag: bool | None = None) -> bool:
    """Resolve an explicit engine flag against the ``ADAM2_SANITIZE`` env var."""
    if flag is not None:
        return flag
    return os.environ.get(ENV_FLAG, "").strip().lower() in _TRUTHY


class InvariantViolation(ReproError):
    """A protocol invariant was violated at runtime.

    Attributes:
        invariant: which invariant failed (``mass-conservation``,
            ``weight-sum``, ``fraction-range``, ``monotone-cdf``,
            ``exchange-payload``).
        backend: ``simulation`` / ``fastsim`` / ``asyncsim``.
        round_index: round (or event) at which the violation surfaced.
        instance: instance identifier/index, when known.
        node: node identifier/index, when known.
        detail: human-readable numeric context.
    """

    def __init__(
        self,
        invariant: str,
        detail: str,
        *,
        backend: str,
        round_index: int | float | None = None,
        instance: Any = None,
        node: Any = None,
    ):
        self.invariant = invariant
        self.backend = backend
        self.round_index = round_index
        self.instance = instance
        self.node = node
        self.detail = detail
        context = [f"backend={backend}"]
        if round_index is not None:
            context.append(f"round={round_index}")
        if instance is not None:
            context.append(f"instance={instance}")
        if node is not None:
            context.append(f"node={node}")
        super().__init__(f"[{invariant}] {detail} ({', '.join(context)})")


# ---------------------------------------------------------------------
# Shared checks
# ---------------------------------------------------------------------


def _check_mass(
    actual: np.ndarray,
    expected: np.ndarray,
    *,
    backend: str,
    round_index: int | float | None,
    instance: Any,
    rtol: float = MASS_RTOL,
    atol: float = MASS_ATOL,
) -> None:
    actual = np.atleast_1d(np.asarray(actual, dtype=float))
    expected = np.atleast_1d(np.asarray(expected, dtype=float))
    tolerance = atol + rtol * np.abs(expected)
    deviation = np.abs(actual - expected)
    if np.any(deviation > tolerance):
        column = int(np.argmax(deviation - tolerance))
        raise InvariantViolation(
            "mass-conservation",
            f"column {column} mass drifted from {expected[column]!r} to "
            f"{actual[column]!r} (|Δ|={deviation[column]:.3e})",
            backend=backend,
            round_index=round_index,
            instance=instance,
        )


def _check_fraction_rows(
    fractions: np.ndarray,
    *,
    backend: str,
    round_index: int | float | None,
    instance: Any,
    node: Any = None,
) -> None:
    """Range [0, 1] and row-wise monotonicity of interpolation fractions."""
    fractions = np.atleast_2d(np.asarray(fractions, dtype=float))
    if fractions.size == 0:
        return
    low = fractions.min()
    high = fractions.max()
    if low < -RANGE_TOL or high > 1.0 + RANGE_TOL:
        rows, cols = np.where((fractions < -RANGE_TOL) | (fractions > 1.0 + RANGE_TOL))
        raise InvariantViolation(
            "fraction-range",
            f"fraction {fractions[rows[0], cols[0]]!r} outside [0, 1] "
            f"at point {int(cols[0])}",
            backend=backend,
            round_index=round_index,
            instance=instance,
            node=node if node is not None else int(rows[0]),
        )
    if fractions.shape[1] > 1:
        steps = np.diff(fractions, axis=1)
        if np.any(steps < -RANGE_TOL):
            rows, cols = np.where(steps < -RANGE_TOL)
            raise InvariantViolation(
                "monotone-cdf",
                f"interpolation points decrease by {-float(steps[rows[0], cols[0]]):.3e} "
                f"between points {int(cols[0])} and {int(cols[0]) + 1}",
                backend=backend,
                round_index=round_index,
                instance=instance,
                node=node if node is not None else int(rows[0]),
            )


def _check_weights(
    weights: np.ndarray,
    *,
    backend: str,
    round_index: int | float | None,
    instance: Any,
) -> None:
    weights = np.atleast_1d(np.asarray(weights, dtype=float))
    if np.any(weights < -RANGE_TOL) or np.any(weights > 1.0 + RANGE_TOL):
        bad = int(np.argmax((weights < -RANGE_TOL) | (weights > 1.0 + RANGE_TOL)))
        raise InvariantViolation(
            "weight-sum",
            f"size weight {weights[bad]!r} outside [0, 1]",
            backend=backend,
            round_index=round_index,
            instance=instance,
            node=bad,
        )


# ---------------------------------------------------------------------
# Fastsim backend
# ---------------------------------------------------------------------


class FastsimSanitizer:
    """Per-instance invariant checks over the dense fastsim arrays.

    Usage (see :class:`repro.fastsim.adam2.Adam2Simulation`): call
    :meth:`begin_instance` once the instance arrays are initialised,
    :meth:`rebaseline` after any *legitimate* external mutation of the
    averaged matrix (churn resets, drift re-evaluation), and
    :meth:`after_round` after every gossip round.
    """

    backend = "fastsim"

    def __init__(self) -> None:
        self._expected: np.ndarray | None = None
        self._conserving: bool = True
        self._mode: str = "symmetric"
        self._instance: Any = None
        self._rtol: float = MASS_RTOL
        self._atol: float = MASS_ATOL

    def begin_instance(self, averaged: np.ndarray, join_mode: str, instance: Any = None) -> None:
        self._mode = join_mode
        self._conserving = is_mass_conserving(join_mode)
        self._instance = instance
        self._rtol, self._atol = mass_tolerances(averaged.dtype)
        # Sum in float64 regardless of state dtype so the *check's own*
        # accumulation error never eats into the tolerance budget.
        self._expected = averaged.sum(axis=0, dtype=np.float64)

    def rebaseline(self, averaged: np.ndarray) -> None:
        """Accept the current mass as the new baseline (churn/drift)."""
        self._expected = averaged.sum(axis=0, dtype=np.float64)

    def after_round(self, averaged: np.ndarray, k: int, round_index: int) -> None:
        if self._expected is None:
            raise InvariantViolation(
                "mass-conservation",
                "after_round() called before begin_instance()",
                backend=self.backend,
                round_index=round_index,
            )
        if self._conserving:
            _check_mass(
                averaged.sum(axis=0, dtype=np.float64),
                self._expected,
                backend=self.backend,
                round_index=round_index,
                instance=self._instance,
                rtol=self._rtol,
                atol=self._atol,
            )
        _check_weights(
            averaged[:, -1],
            backend=self.backend,
            round_index=round_index,
            instance=self._instance,
        )
        _check_fraction_rows(
            averaged[:, :k],
            backend=self.backend,
            round_index=round_index,
            instance=self._instance,
        )

    @property
    def whitelisted_reason(self) -> str | None:
        """Why mass checks are off, when the mode is registered non-conserving."""
        return non_conserving_reason(self._mode)


# ---------------------------------------------------------------------
# Round-based engine backend
# ---------------------------------------------------------------------


def _instance_masses(adam2: Adam2Node) -> dict[Any, dict[str, Any]]:
    return {
        iid: {
            "fractions": state.h.fractions.copy(),
            "v_fractions": state.v_fractions.copy(),
            "weight": state.weight,
            "count": state.count_average,
            "thresholds": state.h.thresholds,
            "v_thresholds": state.v_thresholds,
        }
        for iid, state in adam2.instances.items()
    }


def _initial_contribution(values: np.ndarray, snapshot: dict[str, Any]) -> dict[str, Any]:
    """Mass a fresh joiner adds: its indicator counts, weight 0."""
    values = np.atleast_1d(np.asarray(values, dtype=float))
    thresholds = snapshot["thresholds"]
    v_thresholds = snapshot["v_thresholds"]
    return {
        "fractions": (values[None, :] <= thresholds[:, None]).sum(axis=1).astype(float),
        "v_fractions": (values[None, :] <= v_thresholds[:, None]).sum(axis=1).astype(float),
        "weight": 0.0,
        "count": float(values.size),
    }


def _pair_mass(parts: list[dict[str, Any]]) -> np.ndarray:
    """Flatten the summed averaged quantities of a set of per-node states."""
    fractions = np.sum([p["fractions"] for p in parts], axis=0)
    v_fractions = np.sum([p["v_fractions"] for p in parts], axis=0)
    weight = float(np.sum([p["weight"] for p in parts]))
    count = float(np.sum([p["count"] for p in parts]))
    return np.concatenate((np.atleast_1d(fractions), np.atleast_1d(v_fractions), [weight, count]))


def _check_node_states(
    adam2: Adam2Node, *, backend: str, round_index: int | float | None, node: Any
) -> None:
    for iid, state in adam2.instances.items():
        if state.count_average > 0:
            _check_fraction_rows(
                state.h.fractions[None, :] / state.count_average,
                backend=backend,
                round_index=round_index,
                instance=iid,
                node=node,
            )
        _check_weights(
            np.asarray([state.weight]),
            backend=backend,
            round_index=round_index,
            instance=iid,
        )


class SanitizedProtocol:
    """Wraps a round-based :class:`repro.simulation.engine.Protocol`.

    Every ``exchange`` is bracketed: the per-instance averaged masses of
    the two peers must be identical before and after (modulo the exact
    initial contribution of a node joining an instance mid-exchange),
    and the exchange must return a payload tuple.  Per-node range and
    monotonicity checks run on both peers afterwards.  Exchange modes
    registered non-conserving skip only the mass equality, never the
    per-node checks.
    """

    backend = "simulation"

    def __init__(self, inner: Any):
        self.inner = inner
        self.name = inner.name

    # -- delegation ----------------------------------------------------

    def __getattr__(self, attr: str) -> Any:
        return getattr(self.inner, attr)

    def on_node_added(self, node: Any, engine: Any) -> None:
        self.inner.on_node_added(node, engine)

    def on_node_removed(self, node: Any, engine: Any) -> None:
        self.inner.on_node_removed(node, engine)

    def before_round(self, engine: Any) -> None:
        self.inner.before_round(engine)

    def after_node_round(self, node: Any, engine: Any) -> None:
        self.inner.after_node_round(node, engine)

    def after_round(self, engine: Any) -> None:
        self.inner.after_round(engine)

    # -- the instrumented hook -----------------------------------------

    def exchange(self, initiator: Any, responder: Any, engine: Any) -> tuple[int, int]:
        a = initiator.state.get(self.name)
        b = responder.state.get(self.name)
        checkable = isinstance(a, Adam2Node) and isinstance(b, Adam2Node)
        if checkable:
            pre_a = _instance_masses(a)
            pre_b = _instance_masses(b)

        result = self.inner.exchange(initiator, responder, engine)

        if not (isinstance(result, tuple) and len(result) == 2):
            raise InvariantViolation(
                "exchange-payload",
                f"exchange returned {result!r}, not a (request_bytes, response_bytes) tuple",
                backend=self.backend,
                round_index=getattr(engine, "round", None),
                node=initiator.node_id,
            )
        if not checkable:
            return result

        round_index = getattr(engine, "round", None)
        join_mode = getattr(getattr(self.inner, "config", None), "join_mode", "symmetric")
        post_a = _instance_masses(a)
        post_b = _instance_masses(b)
        for iid in set(post_a) | set(post_b):
            before: list[dict[str, Any]] = []
            joined_fresh = False
            for node, pre, post in ((initiator, pre_a, post_a), (responder, pre_b, post_b)):
                if iid in pre:
                    before.append(pre[iid])
                elif iid in post:
                    joined_fresh = True
                    before.append(_initial_contribution(node.values, post[iid]))
            if joined_fresh and not is_mass_conserving(join_mode):
                continue  # declared non-conserving join (e.g. "literal")
            after = [post[iid] for post in (post_a, post_b) if iid in post]
            if not before or not after:
                continue
            _check_mass(
                _pair_mass(after),
                _pair_mass(before),
                backend=self.backend,
                round_index=round_index,
                instance=iid,
            )
        for node, adam2 in ((initiator, a), (responder, b)):
            _check_node_states(
                adam2, backend=self.backend, round_index=round_index, node=node.node_id
            )
        return result


# ---------------------------------------------------------------------
# Async engine backend
# ---------------------------------------------------------------------


class SanitizedAsyncProtocol:
    """Wraps an :class:`repro.asyncsim.engine.AsyncProtocol`.

    The atomic unit under asynchrony is one message delivery: merging a
    received instance snapshot must replace the local state by the exact
    mean of (local-or-initial, remote) — the half of the push–pull pair
    that executes locally.  The wrapper verifies this averaging property
    for every instance carried by a delivered request or response, plus
    the per-node range/monotonicity checks.
    """

    backend = "asyncsim"

    def __init__(self, inner: Any):
        self.inner = inner
        self.name = inner.name

    def __getattr__(self, attr: str) -> Any:
        return getattr(self.inner, attr)

    def on_node_added(self, node: Any, engine: Any) -> None:
        self.inner.on_node_added(node, engine)

    def on_timer(self, node: Any, engine: Any) -> Any | None:
        payload = self.inner.on_timer(node, engine)
        self._check_node(node, engine)
        return payload

    def on_request(self, node: Any, payload: Any, engine: Any) -> Any | None:
        response = self._bracket_merge(node, payload, engine, self.inner.on_request)
        return response

    def on_response(self, node: Any, payload: Any, engine: Any) -> None:
        def handler(n: Any, p: Any, e: Any) -> None:
            self.inner.on_response(n, p, e)

        self._bracket_merge(node, payload, engine, handler)

    def payload_bytes(self, payload: Any) -> int:
        return self.inner.payload_bytes(payload)

    # -- internals -----------------------------------------------------

    def _bracket_merge(self, node: Any, payload: Any, engine: Any, handler: Any) -> Any:
        adam2 = node.state.get(self.name)
        checkable = isinstance(adam2, Adam2Node) and isinstance(payload, dict)
        if checkable:
            pre = _instance_masses(adam2)

        result = handler(node, payload, engine)

        if not checkable:
            return result
        check_delivery_merge(
            adam2, pre, payload,
            backend=self.backend,
            round_index=getattr(engine, "now", None),
        )
        self._check_node(node, engine)
        return result

    def _check_node(self, node: Any, engine: Any) -> None:
        adam2 = node.state.get(self.name)
        if isinstance(adam2, Adam2Node):
            _check_node_states(
                adam2,
                backend=self.backend,
                round_index=getattr(engine, "now", None),
                node=node.node_id,
            )


def _masses_of(state: InstanceState) -> dict[str, Any]:
    return {
        "fractions": state.h.fractions,
        "v_fractions": state.v_fractions,
        "weight": state.weight,
        "count": state.count_average,
        "thresholds": state.h.thresholds,
        "v_thresholds": state.v_thresholds,
    }


# ---------------------------------------------------------------------
# Delivery-merge checks shared with the real-network runtime
# ---------------------------------------------------------------------


def capture_instance_masses(adam2: Adam2Node) -> dict[Any, dict[str, Any]]:
    """Snapshot a node's per-instance averaged masses before a merge."""
    return _instance_masses(adam2)


def check_delivery_merge(
    adam2: Adam2Node,
    pre: dict[Any, dict[str, Any]],
    payload: dict[Any, InstanceState],
    *,
    backend: str,
    round_index: int | float | None = None,
) -> None:
    """Assert one delivered payload merged as an exact pairwise mean.

    ``pre`` is the :func:`capture_instance_masses` snapshot taken before
    the merge.  For every instance carried by the payload, the node's
    post-merge state must equal the mean of (local-or-initial, remote) —
    the locally-executed half of a push–pull exchange.  This invariant
    holds per delivery even when the network loses the other half, which
    is what makes it checkable in a real-network runtime.
    """
    post = _instance_masses(adam2)
    for iid, remote in payload.items():
        if not isinstance(remote, InstanceState) or iid not in post:
            continue
        if iid in pre:
            local_before = pre[iid]
        else:
            local_before = _initial_contribution(adam2.values, post[iid])
        expected = 0.5 * (_pair_mass([local_before]) + _pair_mass([_masses_of(remote)]))
        _check_mass(
            _pair_mass([post[iid]]),
            expected,
            backend=backend,
            round_index=round_index,
            instance=iid,
        )


def check_mass_totals(
    actual: np.ndarray,
    expected: np.ndarray,
    *,
    backend: str,
    round_index: int | float | None = None,
    instance: Any = None,
    dtype: Any = None,
) -> None:
    """Assert two column-mass vectors agree within dtype-scaled tolerance.

    This is the *global* mass-conservation check of the shard driver:
    per-shard mass is legitimately not conserved (cross-shard pairs move
    mass between shards every round), but the sum over all shards must
    be invariant.  Pass the state ``dtype`` so float32 runs get
    eps-scaled tolerances (:func:`mass_tolerances`).
    """
    rtol, atol = mass_tolerances(dtype)
    _check_mass(
        actual,
        expected,
        backend=backend,
        round_index=round_index,
        instance=instance,
        rtol=rtol,
        atol=atol,
    )


def check_shard_invariants(
    averaged: np.ndarray,
    k: int,
    *,
    backend: str = "fastsim.shard",
    round_index: int | float | None = None,
    instance: Any = None,
) -> None:
    """Per-shard range/weight/monotonicity checks (never mass).

    A shard worker can verify every *local* invariant after its round —
    weights in [0, 1], fractions in range, rows monotone — but must not
    check mass conservation: its column sums change whenever a
    cross-shard pair lands on it.  The coordinator owns the global
    mass check via :func:`check_mass_totals`.
    """
    _check_weights(
        averaged[:, -1],
        backend=backend,
        round_index=round_index,
        instance=instance,
    )
    _check_fraction_rows(
        averaged[:, :k],
        backend=backend,
        round_index=round_index,
        instance=instance,
    )


def check_node_invariants(
    adam2: Adam2Node,
    *,
    backend: str,
    round_index: int | float | None = None,
    node: Any = None,
) -> None:
    """Per-node range/monotonicity/weight checks over all live instances."""
    _check_node_states(
        adam2,
        backend=backend,
        round_index=round_index,
        node=node if node is not None else adam2.node_id,
    )
