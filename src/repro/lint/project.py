"""Project-wide analysis: import graph, symbol index, and seed-taint summaries.

The per-file rules (ADM001–ADM008) see one module at a time.  The
concurrency/determinism rules (ADM009–ADM013) need facts that live in
*other* files: whether a called function is ``async def``, what the
:mod:`repro.obs.events` name registry contains, whether a helper's return
value derives from a run seed.  This module builds that cross-file view
once per lint run.

The index is deliberately **plain data** (dataclasses of strings and
tuples): it is computed in the parent process and shipped to the
parallel per-file workers, so it must pickle cheaply and must not hold
AST nodes.

Resolution is *suffix-based*: an import of ``repro.net.node`` matches the
indexed module whose dotted name ends with ``repro.net.node`` (or, at
worst, ``node``).  That makes the same machinery work for the real
``src/repro`` tree and for the self-contained fixture packages the test
suite lints out of a temp directory.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable

if TYPE_CHECKING:
    from repro.lint.rules.base import ModuleContext

__all__ = [
    "FunctionInfo",
    "ModuleSummary",
    "ProjectIndex",
    "build_project_index",
    "classify_seed_expr",
    "is_seed_name",
]

#: parameter/attribute names accepted as run-seed (or generator) sources
_SEED_SUFFIXES = ("seed", "rng")


def is_seed_name(name: str) -> bool:
    """Whether ``name`` reads as a run-seed or generator binding.

    ``seed``, ``run_seed``, ``_seed``, ``rng``, ``node_rng`` all qualify;
    ``node_id`` or ``count`` do not.
    """
    lowered = name.lower().lstrip("_")
    return any(
        lowered == suffix or lowered.endswith("_" + suffix) or lowered.startswith(suffix + "_")
        for suffix in _SEED_SUFFIXES
    )


@dataclass(frozen=True, slots=True)
class FunctionInfo:
    """One function (or method) as the cross-file rules see it.

    Attributes:
        name: module-local qualified name (``func`` or ``Class.func``).
        is_async: whether it is an ``async def``.
        params: positional + keyword parameter names, in order.
        seed_taint: taint class of the function's return value —
            ``"seed"`` (derives from a seed-ish parameter), ``"constant"``
            (hard-coded), or ``"unknown"``.
        return_annotation: source text of the return annotation, ``""``
            when absent.
    """

    name: str
    is_async: bool
    params: tuple[str, ...]
    seed_taint: str
    return_annotation: str


@dataclass(slots=True)
class ModuleSummary:
    """Cross-file-relevant facts about one module."""

    name: str
    path: str
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    string_sets: dict[str, tuple[str, ...]] = field(default_factory=dict)
    classes: tuple[str, ...] = ()


@dataclass(slots=True)
class ProjectIndex:
    """The merged project view handed to :class:`ProjectRule` rules."""

    modules: dict[str, ModuleSummary] = field(default_factory=dict)

    # -- module / symbol resolution ------------------------------------

    def resolve_module(self, dotted: str) -> ModuleSummary | None:
        """Find the indexed module named ``dotted`` (suffix match)."""
        if dotted in self.modules:
            return self.modules[dotted]
        suffix = "." + dotted
        candidates = [m for name, m in self.modules.items() if name.endswith(suffix)]
        if len(candidates) == 1:
            return candidates[0]
        return None

    def resolve_function(self, dotted: str) -> FunctionInfo | None:
        """Resolve ``pkg.mod.func`` (or ``mod.Class.func``) to its info."""
        if "." not in dotted:
            return None
        for split in range(len(dotted.split(".")) - 1, 0, -1):
            parts = dotted.split(".")
            module_name, local = ".".join(parts[:split]), ".".join(parts[split:])
            module = self.resolve_module(module_name)
            if module is not None and local in module.functions:
                return module.functions[local]
        return None

    def resolve_import(self, module: ModuleSummary, chain: list[str]) -> FunctionInfo | None:
        """Resolve a call chain like ``["helpers", "fixed_seed"]`` seen in
        ``module`` through its imports to a :class:`FunctionInfo`."""
        if not chain:
            return None
        root = chain[0]
        target = module.imports.get(root)
        if target is None:
            # A module-local call: ``helper()``.
            if len(chain) == 1:
                return module.functions.get(root)
            return None
        return self.resolve_function(".".join([target, *chain[1:]]))

    def registry_strings(self, module_suffix: str, *set_names: str) -> frozenset[str] | None:
        """The union of literal string sets from the module ending with
        ``module_suffix`` (e.g. ``"obs.events"``); ``None`` when that
        module is not part of this project."""
        module = self.resolve_module(module_suffix)
        if module is None:
            return None
        names: set[str] = set()
        for set_name in set_names:
            names.update(module.string_sets.get(set_name, ()))
        return frozenset(names)


# ---------------------------------------------------------------------
# Seed-taint classification (shared by the index pass and ADM012)
# ---------------------------------------------------------------------

#: builtins through which taint flows unchanged
_TAINT_TRANSPARENT_CALLS = {"int", "abs", "float", "min", "max", "hash", "len"}
#: repro.rngs helpers whose output inherits their first argument's taint
_RNG_DERIVERS = {"derive", "spawn", "make_rng", "default_rng"}

#: cross-file hook: maps a called expression to its return-taint class
CallTaintResolver = Callable[[ast.expr], str]


def classify_seed_expr(
    node: ast.expr,
    tainted: set[str],
    constants: set[str] | None = None,
    resolver: CallTaintResolver | None = None,
    _depth: int = 0,
) -> str:
    """Classify a seed expression as ``"seed"``, ``"constant"`` or ``"unknown"``.

    ``tainted`` holds names known to carry run-seed taint; ``constants``
    holds names known to be bound to hard-coded literals.  ``resolver``
    (optional) maps a called name chain to the taint class of the
    callee's return value — the cross-file hook ADM012 plugs in.
    """
    if _depth > 12:
        return "unknown"

    def recurse(child: ast.expr) -> str:
        return classify_seed_expr(child, tainted, constants, resolver, _depth + 1)

    if isinstance(node, ast.Constant):
        return "constant"
    if isinstance(node, ast.Name):
        if node.id in tainted:
            return "seed"
        if constants is not None and node.id in constants:
            return "constant"
        return "unknown"
    if isinstance(node, ast.Attribute):
        return "seed" if is_seed_name(node.attr) else "unknown"
    if isinstance(node, ast.Subscript):
        key = node.slice
        if isinstance(key, ast.Constant) and isinstance(key.value, str) and is_seed_name(key.value):
            return "seed"
        return "unknown"
    if isinstance(node, ast.BinOp):
        return _combine([recurse(node.left), recurse(node.right)])
    if isinstance(node, ast.UnaryOp):
        return recurse(node.operand)
    if isinstance(node, ast.BoolOp):
        return _combine([recurse(value) for value in node.values])
    if isinstance(node, ast.IfExp):
        return _combine([recurse(node.body), recurse(node.orelse)])
    if isinstance(node, (ast.Tuple, ast.List)):
        return _combine([recurse(element) for element in node.elts])
    if isinstance(node, ast.Call):
        return _classify_call(node, tainted, constants, resolver, _depth)
    return "unknown"


def _classify_call(
    node: ast.Call,
    tainted: set[str],
    constants: set[str] | None,
    resolver: CallTaintResolver | None,
    depth: int,
) -> str:
    def recurse(child: ast.expr) -> str:
        return classify_seed_expr(child, tainted, constants, resolver, depth + 1)

    func = node.func
    # A draw from a tainted generator is itself seed-derived:
    # ``rng.integers(...)`` / ``spec.rng.random()``.
    if isinstance(func, ast.Attribute):
        receiver = func.value
        if isinstance(receiver, ast.Name) and receiver.id in tainted:
            return "seed"
        if isinstance(receiver, ast.Attribute) and is_seed_name(receiver.attr):
            return "seed"
    name = func.id if isinstance(func, ast.Name) else (func.attr if isinstance(func, ast.Attribute) else "")
    arg_classes = [recurse(arg) for arg in node.args]
    if name in _TAINT_TRANSPARENT_CALLS or name in _RNG_DERIVERS:
        return _combine(arg_classes) if arg_classes else "unknown"
    if resolver is not None:
        callee_taint = resolver(func)
        if callee_taint == "constant":
            return "constant"
        if callee_taint == "seed":
            # Seed-deriving callee: the result is only as good as the
            # arguments the seed flows in from.
            return _combine(arg_classes) if arg_classes else "seed"
    return "unknown"


def _combine(classes: list[str]) -> str:
    """Merge operand taints: any seed wins; all-constant stays constant."""
    if any(c == "seed" for c in classes):
        return "seed"
    if classes and all(c == "constant" for c in classes):
        return "constant"
    return "unknown"


# ---------------------------------------------------------------------
# Index construction
# ---------------------------------------------------------------------


def project_module_name(path: str) -> str:
    """Dotted module name for indexing: strips the ``src`` root and the
    ``__init__`` tail, keeps every remaining path component."""
    parts = list(Path(path).with_suffix("").parts)
    for anchor in ("src", "site-packages"):
        if anchor in parts:
            parts = parts[parts.index(anchor) + 1:]
    parts = [p for p in parts if p not in ("/", "\\", "..", ".")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    # Temp-dir prefixes would make suffix resolution ambiguous across
    # runs; keep at most the last 6 components.
    return ".".join(parts[-6:]) if parts else Path(path).stem


def _function_info(
    fn: ast.FunctionDef | ast.AsyncFunctionDef, qualname: str
) -> FunctionInfo:
    args = fn.args
    params = tuple(
        a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
    )
    seed_params = {p for p in params if is_seed_name(p)}
    returns: list[str] = []
    for node in ast.walk(fn):
        if isinstance(node, ast.Return) and node.value is not None:
            returns.append(classify_seed_expr(node.value, set(seed_params)))
    if returns and all(r == "constant" for r in returns):
        taint = "constant"
    elif returns and all(r == "seed" for r in returns):
        taint = "seed"
    else:
        taint = "unknown"
    annotation = ast.unparse(fn.returns) if fn.returns is not None else ""
    return FunctionInfo(
        name=qualname,
        is_async=isinstance(fn, ast.AsyncFunctionDef),
        params=params,
        seed_taint=taint,
        return_annotation=annotation,
    )


def _literal_string_set(value: ast.expr) -> tuple[str, ...] | None:
    """``frozenset({"a", "b"})`` / ``{"a", "b"}`` -> ``("a", "b")``."""
    if (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Name)
        and value.func.id in ("frozenset", "set", "tuple")
        and len(value.args) == 1
    ):
        value = value.args[0]
    if not isinstance(value, (ast.Set, ast.Tuple, ast.List)):
        return None
    strings: list[str] = []
    for element in value.elts:
        if not (isinstance(element, ast.Constant) and isinstance(element.value, str)):
            return None
        strings.append(element.value)
    return tuple(sorted(strings))


def summarise_module(tree: ast.Module, name: str, path: str) -> ModuleSummary:
    """Extract the cross-file-relevant facts from one parsed module."""
    summary = ModuleSummary(name=name, path=path)
    classes: list[str] = []
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                summary.imports[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                summary.imports[alias.asname or alias.name] = f"{node.module}.{alias.name}"
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            summary.functions[node.name] = _function_info(node, node.name)
        elif isinstance(node, ast.ClassDef):
            classes.append(node.name)
            for member in node.body:
                if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = f"{node.name}.{member.name}"
                    summary.functions[qualname] = _function_info(member, qualname)
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                strings = _literal_string_set(node.value)
                if strings is not None:
                    summary.string_sets[target.id] = strings
    summary.classes = tuple(classes)
    return summary


def build_project_index(modules: Iterable["ModuleContext"]) -> ProjectIndex:
    """One pass over every parsed module -> the merged project index."""
    index = ProjectIndex()
    for module in modules:
        name = project_module_name(module.path)
        index.modules[name] = summarise_module(module.tree, name, module.path)
    return index
