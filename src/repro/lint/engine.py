"""The lint engine and the ``adam2-lint`` command-line entry point.

Walks Python files, parses each into a :class:`ModuleContext`, runs
every registered ADM rule, and reports violations as human-readable
text or machine-readable JSON (for CI).  Exit status is 0 when clean,
1 when violations were found, 2 on usage/parse errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.rules import ALL_RULES, ModuleContext, Rule, get_rules
from repro.lint.violation import LintReport, Violation

__all__ = ["LintEngine", "lint_paths", "lint_source", "main"]

#: directories never descended into
_SKIP_DIRS = {"__pycache__", ".git", ".pytest_cache", ".mypy_cache", ".ruff_cache", "build", "dist"}


class LintEngine:
    """Runs a set of rules over files or source strings."""

    def __init__(self, rules: Sequence[Rule] | None = None):
        self.rules: list[Rule] = list(rules) if rules is not None else get_rules()

    # -- discovery -----------------------------------------------------

    @staticmethod
    def discover(paths: Iterable[str]) -> list[Path]:
        """Expand files/directories into a sorted list of ``.py`` files."""
        files: set[Path] = set()
        for raw in paths:
            path = Path(raw)
            if path.is_dir():
                for candidate in path.rglob("*.py"):
                    if not _SKIP_DIRS & set(candidate.parts):
                        files.add(candidate)
            elif path.suffix == ".py":
                files.add(path)
        return sorted(files)

    # -- execution -----------------------------------------------------

    def check_source(self, source: str, path: str = "<string>") -> list[Violation]:
        """Lint one source string (exposed for tests and tooling)."""
        module = ModuleContext.from_source(source, path=path)
        return self.check_module(module)

    def check_module(self, module: ModuleContext) -> list[Violation]:
        violations: list[Violation] = []
        for rule in self.rules:
            violations.extend(rule.check(module))
        violations.sort(key=lambda v: (v.path, v.line, v.column, v.code))
        return violations

    def run(self, paths: Iterable[str]) -> LintReport:
        report = LintReport()
        paths = list(paths)
        # A typo'd path must not silently pass the lint gate.
        for raw in paths:
            if not Path(raw).exists():
                report.parse_errors.append(f"{raw}: no such file or directory")
        for path in self.discover(paths):
            try:
                source = path.read_text(encoding="utf-8")
                module = ModuleContext.from_source(source, path=str(path))
            except (OSError, SyntaxError, ValueError) as exc:
                report.parse_errors.append(f"{path}: {exc}")
                continue
            report.files_checked += 1
            report.violations.extend(self.check_module(module))
        report.violations.sort(key=lambda v: (v.path, v.line, v.column, v.code))
        return report


def lint_paths(paths: Iterable[str], select: set[str] | None = None) -> LintReport:
    """Convenience wrapper: lint files/directories with (a subset of) rules."""
    return LintEngine(get_rules(select)).run(paths)


def lint_source(source: str, path: str = "<string>", select: set[str] | None = None) -> list[Violation]:
    """Convenience wrapper: lint one source string."""
    return LintEngine(get_rules(select)).check_source(source, path=path)


# ---------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------


def _format_json(report: LintReport) -> str:
    return json.dumps(
        {
            "files_checked": report.files_checked,
            "violations": [v.to_json() for v in report.violations],
            "codes": report.codes(),
            "parse_errors": report.parse_errors,
            "ok": report.ok,
        },
        indent=2,
    )


def _format_text(report: LintReport) -> str:
    lines = [v.format_text() for v in report.violations]
    lines.extend(f"parse error: {err}" for err in report.parse_errors)
    summary = (
        f"{report.files_checked} file(s) checked, "
        f"{len(report.violations)} violation(s)"
    )
    if report.codes():
        summary += f" [{', '.join(report.codes())}]"
    lines.append(summary)
    return "\n".join(lines)


def _list_rules() -> str:
    lines = []
    for cls in ALL_RULES:
        doc = (cls.__doc__ or "").strip().splitlines()[0]
        lines.append(f"{cls.code}  {cls.name}: {doc}")
        if cls.hint:
            lines.append(f"        fix: {cls.hint}")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="adam2-lint",
        description="Protocol-invariant linter for the Adam2 reproduction (rules ADM001-ADM008).",
    )
    parser.add_argument("paths", nargs="*", default=["src"], help="files or directories to lint")
    parser.add_argument("--format", choices=("text", "json"), default="text", dest="fmt")
    parser.add_argument(
        "--select", default="", help="comma-separated rule codes to run (default: all)"
    )
    parser.add_argument("--list-rules", action="store_true", help="describe every rule and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    select = {code.strip().upper() for code in args.select.split(",") if code.strip()} or None
    try:
        report = lint_paths(args.paths, select=select)
    except ValueError as exc:
        print(f"adam2-lint: {exc}", file=sys.stderr)
        return 2

    print(_format_json(report) if args.fmt == "json" else _format_text(report))
    if report.parse_errors:
        return 2
    return 0 if not report.violations else 1


if __name__ == "__main__":
    raise SystemExit(main())
